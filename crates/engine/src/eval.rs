//! Scalar expression evaluation, row-at-a-time **and** vectorized.
//!
//! [`eval`] is the row engine's evaluator: one expression against one row,
//! with correlated-subquery support and uncorrelated-subquery caching.
//! [`eval_batch`] is the columnar engine's evaluator: the same expression
//! against a whole [`ColumnBatch`] at once, producing a typed [`Column`].
//! The two must charge the *same total* [`crate::CostCounter`] on every
//! successful evaluation — per-row short-circuiting (AND/OR, CASE
//! branches, IN-list early exit) is reproduced with shrinking row
//! subsets, so exactly the same (row, subexpression) pairs are evaluated,
//! merely in column order instead of row order.

use std::collections::HashSet;
use std::sync::Arc;

use sqlan_sql::{Expr, Literal, Op, UnaryOp};

use crate::catalog::ColumnVec;
use crate::error::RuntimeError;
use crate::exec::{CachedSubquery as SubqueryCacheEntry, ExecCtx, Scope};
use crate::relation::{gather, ColumnBatch, Relation};
use crate::value::{Column, ColumnBuilder, Value};

/// Evaluate `expr` for `row` of `rel`; `outer` carries enclosing scopes for
/// correlated references (innermost last). Sets `used_outer` when an outer
/// scope actually supplied a column.
pub fn eval(
    ctx: &mut ExecCtx<'_>,
    expr: &Expr,
    rel: &Relation,
    row: &[Value],
    outer: &[Scope<'_>],
    used_outer: &mut bool,
) -> Result<Value, RuntimeError> {
    match expr {
        Expr::Literal(l) => Ok(literal_value(l)),
        // Plan-cache templates rebind every Param to a Literal before
        // execution; if one slips through, its carried value is still the
        // literal the template was built from.
        Expr::Param { value, .. } => Ok(literal_value(value)),
        Expr::Column(name) => {
            // Current row first, then outer scopes from innermost out.
            if let Some(i) = rel.resolve(&name.parts)? {
                return Ok(row.get(i).cloned().unwrap_or(Value::Null));
            }
            for scope in outer.iter().rev() {
                if let Some(i) = scope.rel.resolve(&name.parts)? {
                    *used_outer = true;
                    return Ok(scope.row.get(i).cloned().unwrap_or(Value::Null));
                }
            }
            Err(RuntimeError::UnknownColumn(name.canonical()))
        }
        Expr::Wildcard(_) => Err(RuntimeError::TypeError(
            "wildcard is not a scalar expression".into(),
        )),
        Expr::Unary { op, expr } => {
            let v = eval(ctx, expr, rel, row, outer, used_outer)?;
            match op {
                UnaryOp::Neg => v.neg(),
                UnaryOp::Plus => Ok(v),
                UnaryOp::Not => Ok(Value::Bool(!v.is_truthy())),
            }
        }
        Expr::Binary { left, op, right } => {
            let l = eval(ctx, left, rel, row, outer, used_outer)?;
            let r = eval(ctx, right, rel, row, outer, used_outer)?;
            apply_binary(&l, *op, &r)
        }
        Expr::Logical { left, and, right } => {
            let l = eval(ctx, left, rel, row, outer, used_outer)?;
            // Short-circuit, charging only what we evaluate.
            if *and && !l.is_truthy() {
                return Ok(Value::Bool(false));
            }
            if !*and && l.is_truthy() {
                return Ok(Value::Bool(true));
            }
            let r = eval(ctx, right, rel, row, outer, used_outer)?;
            Ok(Value::Bool(r.is_truthy()))
        }
        Expr::Between {
            expr,
            negated,
            low,
            high,
        } => {
            let v = eval(ctx, expr, rel, row, outer, used_outer)?;
            let lo = eval(ctx, low, rel, row, outer, used_outer)?;
            let hi = eval(ctx, high, rel, row, outer, used_outer)?;
            let inside = matches!(
                v.sql_cmp(&lo),
                Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
            ) && matches!(
                v.sql_cmp(&hi),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            );
            Ok(Value::Bool(inside != *negated))
        }
        Expr::InList {
            expr,
            negated,
            list,
        } => {
            let v = eval(ctx, expr, rel, row, outer, used_outer)?;
            let mut found = false;
            for item in list {
                let w = eval(ctx, item, rel, row, outer, used_outer)?;
                if matches!(v.sql_cmp(&w), Some(std::cmp::Ordering::Equal)) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Bool(found != *negated))
        }
        Expr::Like {
            expr,
            negated,
            pattern,
        } => {
            let v = eval(ctx, expr, rel, row, outer, used_outer)?;
            let p = eval(ctx, pattern, rel, row, outer, used_outer)?;
            ctx.counter.eval_units += 1;
            let m = v.like(&p)?;
            Ok(Value::Bool(m.is_truthy() != *negated))
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(ctx, expr, rel, row, outer, used_outer)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Function(f) => {
            let mut args = Vec::with_capacity(f.args.len());
            for a in &f.args {
                args.push(eval(ctx, a, rel, row, outer, used_outer)?);
            }
            if f.aggregate.is_some() {
                // Aggregate outside GROUP BY context (e.g. in WHERE):
                // T-SQL rejects this; we surface it as a type error, which
                // maps to a non-severe execution failure.
                return Err(RuntimeError::TypeError(format!(
                    "aggregate {}() not allowed here",
                    f.name.base()
                )));
            }
            let (v, cost) = ctx.fns.call(&f.name.canonical(), &args)?;
            ctx.counter.fn_units += cost;
            Ok(v)
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            let op_val = match operand {
                Some(o) => Some(eval(ctx, o, rel, row, outer, used_outer)?),
                None => None,
            };
            for (cond, result) in branches {
                let c = eval(ctx, cond, rel, row, outer, used_outer)?;
                let hit = match &op_val {
                    Some(v) => matches!(v.sql_cmp(&c), Some(std::cmp::Ordering::Equal)),
                    None => c.is_truthy(),
                };
                if hit {
                    return eval(ctx, result, rel, row, outer, used_outer);
                }
            }
            match else_expr {
                Some(e) => eval(ctx, e, rel, row, outer, used_outer),
                None => Ok(Value::Null),
            }
        }
        Expr::Cast { expr, ty } => {
            let v = eval(ctx, expr, rel, row, outer, used_outer)?;
            cast_value(v, ty)
        }
        Expr::Subquery(q) => {
            let key = (&**q) as *const _ as usize;
            if let Some(SubqueryCacheEntry::Scalar(v)) = ctx.cached_subquery(key) {
                return Ok(v.clone());
            }
            ctx.counter.subquery_execs += 1;
            let scope = Scope { rel, row };
            let mut scopes: Vec<Scope<'_>> = outer.to_vec();
            scopes.push(scope);
            let (result, sub_used_outer) = ctx.exec_query(q, &scopes)?;
            let v = scalar_from_relation(&result)?;
            if !sub_used_outer {
                ctx.cache_scalar(key, v.clone());
            } else {
                *used_outer = true;
            }
            Ok(v)
        }
        Expr::InSubquery {
            expr,
            negated,
            subquery,
        } => {
            let v = eval(ctx, expr, rel, row, outer, used_outer)?;
            let key = (&**subquery) as *const _ as usize;
            let set = match ctx.cached_subquery(key) {
                Some(SubqueryCacheEntry::Set(s)) => s.clone(),
                _ => {
                    ctx.counter.subquery_execs += 1;
                    let scope = Scope { rel, row };
                    let mut scopes: Vec<Scope<'_>> = outer.to_vec();
                    scopes.push(scope);
                    let (result, sub_used_outer) = ctx.exec_query(subquery, &scopes)?;
                    let mut s: HashSet<Vec<u8>> = HashSet::with_capacity(result.len());
                    for r in &result.rows {
                        if let Some(first) = r.first() {
                            if !first.is_null() {
                                let mut k = Vec::new();
                                first.group_key(&mut k);
                                s.insert(k);
                            }
                        }
                    }
                    if !sub_used_outer {
                        ctx.cache_set(key, s.clone());
                    } else {
                        *used_outer = true;
                    }
                    s
                }
            };
            let found = if v.is_null() {
                false
            } else {
                let mut k = Vec::new();
                v.group_key(&mut k);
                set.contains(&k)
            };
            Ok(Value::Bool(found != *negated))
        }
        Expr::Exists { negated, subquery } => {
            let key = (&**subquery) as *const _ as usize;
            let nonempty = match ctx.cached_subquery(key) {
                Some(SubqueryCacheEntry::NonEmpty(b)) => *b,
                _ => {
                    ctx.counter.subquery_execs += 1;
                    let scope = Scope { rel, row };
                    let mut scopes: Vec<Scope<'_>> = outer.to_vec();
                    scopes.push(scope);
                    let (result, sub_used_outer) = ctx.exec_query(subquery, &scopes)?;
                    let b = !result.is_empty();
                    if !sub_used_outer {
                        ctx.cache_nonempty(key, b);
                    } else {
                        *used_outer = true;
                    }
                    b
                }
            };
            Ok(Value::Bool(nonempty != *negated))
        }
    }
}

/// Apply a binary operator to already-evaluated operands.
pub fn apply_binary(l: &Value, op: Op, r: &Value) -> Result<Value, RuntimeError> {
    match op {
        Op::Plus => l.add(r),
        Op::Minus => l.sub(r),
        Op::Star => l.mul(r),
        Op::Slash => l.div(r),
        Op::Percent => l.rem(r),
        Op::BitAnd => l.bit_and(r),
        Op::BitOr => l.bit_or(r),
        Op::BitXor => l.bit_xor(r),
        Op::Concat => l.concat(r),
        Op::Eq => Ok(Value::Bool(matches!(
            l.sql_cmp(r),
            Some(std::cmp::Ordering::Equal)
        ))),
        Op::Neq => Ok(Value::Bool(matches!(
            l.sql_cmp(r),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Greater)
        ))),
        Op::Lt => Ok(Value::Bool(matches!(
            l.sql_cmp(r),
            Some(std::cmp::Ordering::Less)
        ))),
        Op::Lte => Ok(Value::Bool(matches!(
            l.sql_cmp(r),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        ))),
        Op::Gt => Ok(Value::Bool(matches!(
            l.sql_cmp(r),
            Some(std::cmp::Ordering::Greater)
        ))),
        Op::Gte => Ok(Value::Bool(matches!(
            l.sql_cmp(r),
            Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
        ))),
    }
}

pub(crate) fn literal_value(l: &Literal) -> Value {
    match l {
        Literal::Number(v, text) => {
            // Integers stay integers.
            if !text.contains('.') && !text.contains('e') && !text.contains('E') {
                if let Ok(i) = text.parse::<i64>() {
                    return Value::Int(i);
                }
            }
            Value::Float(*v)
        }
        Literal::Hex(v, _) => Value::Int(*v as i64),
        Literal::String(s) => Value::Str(s.clone()),
        Literal::Null => Value::Null,
    }
}

fn cast_value(v: Value, ty: &str) -> Result<Value, RuntimeError> {
    let base = ty
        .split('(')
        .next()
        .unwrap_or(ty)
        .trim()
        .to_ascii_lowercase();
    match base.as_str() {
        "int" | "bigint" | "smallint" | "tinyint" => match &v {
            Value::Null => Ok(Value::Null),
            Value::Str(s) => s
                .trim()
                .parse::<f64>()
                .map(|f| Value::Int(f as i64))
                .map_err(|_| RuntimeError::TypeError(format!("cannot cast '{s}' to {base}"))),
            other => other
                .as_i64()
                .map(Value::Int)
                .ok_or_else(|| RuntimeError::TypeError(format!("cannot cast to {base}"))),
        },
        "float" | "real" | "decimal" | "numeric" => match &v {
            Value::Null => Ok(Value::Null),
            Value::Str(s) => s
                .trim()
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| RuntimeError::TypeError(format!("cannot cast '{s}' to {base}"))),
            other => other
                .as_f64()
                .map(Value::Float)
                .ok_or_else(|| RuntimeError::TypeError(format!("cannot cast to {base}"))),
        },
        "varchar" | "char" | "nvarchar" | "nchar" | "text" => match &v {
            Value::Null => Ok(Value::Null),
            other => Ok(Value::Str(other.display())),
        },
        _ => Err(RuntimeError::TypeError(format!(
            "unknown cast target `{ty}`"
        ))),
    }
}

fn scalar_from_relation(rel: &Relation) -> Result<Value, RuntimeError> {
    match rel.len() {
        0 => Ok(Value::Null),
        1 => Ok(rel.rows[0].first().cloned().unwrap_or(Value::Null)),
        _ => Err(RuntimeError::ScalarSubqueryCardinality),
    }
}

// =====================================================================
// Vectorized evaluation over column batches
// =====================================================================

/// The set of logical batch rows an evaluation covers. Short-circuiting
/// constructs shrink this set instead of branching per row.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RowSet<'a> {
    /// All logical rows `0..n`.
    All(usize),
    /// An explicit subset of logical row indices, in increasing order of
    /// original position (so float reductions and charge totals match the
    /// row engine's row order).
    Subset(&'a [usize]),
}

impl RowSet<'_> {
    pub fn len(&self) -> usize {
        match self {
            RowSet::All(n) => *n,
            RowSet::Subset(s) => s.len(),
        }
    }

    /// The logical batch row at position `i` of this set.
    #[inline]
    pub fn get(&self, i: usize) -> usize {
        match self {
            RowSet::All(_) => i,
            RowSet::Subset(s) => s[i],
        }
    }
}

/// Dense column of `batch` column `ci` over `rows` — zero-copy when the
/// request is the whole unselected batch.
fn column_ref(batch: &ColumnBatch, ci: usize, rows: &RowSet<'_>) -> Arc<Column> {
    if matches!(rows, RowSet::All(_)) && batch.sel.is_none() {
        return Arc::clone(&batch.columns[ci]);
    }
    let phys: Vec<usize> = (0..rows.len()).map(|i| batch.phys(rows.get(i))).collect();
    Arc::new(gather(&batch.columns[ci], &phys))
}

/// One row of `batch`, materialized for correlated-subquery scopes.
fn materialize_row(batch: &ColumnBatch, logical: usize) -> Vec<Value> {
    let p = batch.phys(logical);
    batch.columns.iter().map(|c| c.get(p)).collect()
}

/// Scalar result of a subquery executed columnar-side.
fn scalar_from_batch(b: &ColumnBatch) -> Result<Value, RuntimeError> {
    match b.len() {
        0 => Ok(Value::Null),
        1 => Ok(if b.width() == 0 {
            Value::Null
        } else {
            b.value(0, 0)
        }),
        _ => Err(RuntimeError::ScalarSubqueryCardinality),
    }
}

/// First-column membership set of a subquery result (IN semantics),
/// byte-identical to the row engine's key set.
fn set_from_batch(b: &ColumnBatch) -> HashSet<Vec<u8>> {
    let mut s: HashSet<Vec<u8>> = HashSet::with_capacity(b.len());
    if b.width() == 0 {
        return s;
    }
    let col = &b.columns[0];
    for i in 0..b.len() {
        let p = b.phys(i);
        if !col.is_null_at(p) {
            let mut k = Vec::new();
            col.group_key_at(p, &mut k);
            s.insert(k);
        }
    }
    s
}

/// Evaluate `expr` over the rows of `batch` named by `rows`, producing a
/// dense column aligned with the positions of `rows`.
///
/// Success-path contract: identical [`crate::CostCounter`] totals and
/// identical per-row values to running the row-engine [`eval`] on every
/// row of `rows` in order. Error paths may charge in a different order —
/// the caller (the `Database` layer) replays errors through the row
/// engine, whose charge order is the label contract.
pub(crate) fn eval_batch(
    ctx: &mut ExecCtx<'_>,
    expr: &Expr,
    batch: &ColumnBatch,
    rows: &RowSet<'_>,
    outer: &[Scope<'_>],
    used_outer: &mut bool,
) -> Result<Arc<Column>, RuntimeError> {
    let n = rows.len();
    if n == 0 {
        // The row engine evaluates nothing over zero rows — not even name
        // resolution — so neither do we.
        return Ok(Arc::new(Column::Values(Vec::new())));
    }
    match expr {
        Expr::Literal(l) => Ok(Arc::new(Column::Const(literal_value(l), n))),
        Expr::Param { value, .. } => Ok(Arc::new(Column::Const(literal_value(value), n))),
        Expr::Column(name) => {
            if let Some(ci) = batch.resolve(&name.parts)? {
                return Ok(column_ref(batch, ci, rows));
            }
            for scope in outer.iter().rev() {
                if let Some(i) = scope.rel.resolve(&name.parts)? {
                    *used_outer = true;
                    let v = scope.row.get(i).cloned().unwrap_or(Value::Null);
                    return Ok(Arc::new(Column::Const(v, n)));
                }
            }
            Err(RuntimeError::UnknownColumn(name.canonical()))
        }
        Expr::Wildcard(_) => Err(RuntimeError::TypeError(
            "wildcard is not a scalar expression".into(),
        )),
        Expr::Unary { op, expr } => {
            let v = eval_batch(ctx, expr, batch, rows, outer, used_outer)?;
            match op {
                UnaryOp::Plus => Ok(v),
                UnaryOp::Not => {
                    let out: Vec<bool> = (0..n).map(|i| !v.is_truthy_at(i)).collect();
                    Ok(Arc::new(Column::Bool(out)))
                }
                UnaryOp::Neg => Ok(Arc::new(neg_column(&v, n)?)),
            }
        }
        Expr::Binary { left, op, right } => {
            let l = eval_batch(ctx, left, batch, rows, outer, used_outer)?;
            let r = eval_batch(ctx, right, batch, rows, outer, used_outer)?;
            Ok(Arc::new(apply_binary_batch(&l, *op, &r, n)?))
        }
        Expr::Logical { left, and, right } => {
            let l = eval_batch(ctx, left, batch, rows, outer, used_outer)?;
            // Short-circuit per row: only rows whose result is still open
            // evaluate the right side (same charges as the row engine).
            let mut out = vec![false; n];
            let mut open_pos: Vec<usize> = Vec::new();
            let mut open_rows: Vec<usize> = Vec::new();
            for (i, slot) in out.iter_mut().enumerate() {
                let lt = l.is_truthy_at(i);
                if *and {
                    if lt {
                        open_pos.push(i);
                        open_rows.push(rows.get(i));
                    } // else stays false
                } else if lt {
                    *slot = true;
                } else {
                    open_pos.push(i);
                    open_rows.push(rows.get(i));
                }
            }
            let r = eval_batch(
                ctx,
                right,
                batch,
                &RowSet::Subset(&open_rows),
                outer,
                used_outer,
            )?;
            for (j, &p) in open_pos.iter().enumerate() {
                out[p] = r.is_truthy_at(j);
            }
            Ok(Arc::new(Column::Bool(out)))
        }
        Expr::Between {
            expr,
            negated,
            low,
            high,
        } => {
            let v = eval_batch(ctx, expr, batch, rows, outer, used_outer)?;
            let lo = eval_batch(ctx, low, batch, rows, outer, used_outer)?;
            let hi = eval_batch(ctx, high, batch, rows, outer, used_outer)?;
            if let (Some(a), Some(b), Some(c)) = (f64_view(&v), f64_view(&lo), f64_view(&hi)) {
                let mut out = vec![false; n];
                sqlan_simd::between_f64(a.as_arg(), b.as_arg(), c.as_arg(), *negated, &mut out);
                return Ok(Arc::new(Column::Bool(out)));
            }
            let mut out = Vec::with_capacity(n);
            {
                for i in 0..n {
                    let x = v.get(i);
                    let inside = matches!(
                        x.sql_cmp(&lo.get(i)),
                        Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
                    ) && matches!(
                        x.sql_cmp(&hi.get(i)),
                        Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
                    );
                    out.push(inside != *negated);
                }
            }
            Ok(Arc::new(Column::Bool(out)))
        }
        Expr::InList {
            expr,
            negated,
            list,
        } => {
            let v = eval_batch(ctx, expr, batch, rows, outer, used_outer)?;
            let mut found = vec![false; n];
            let mut remaining: Vec<usize> = (0..n).collect(); // positions
            for item in list {
                if remaining.is_empty() {
                    break;
                }
                let logical: Vec<usize> = remaining.iter().map(|&p| rows.get(p)).collect();
                let w = eval_batch(
                    ctx,
                    item,
                    batch,
                    &RowSet::Subset(&logical),
                    outer,
                    used_outer,
                )?;
                let mut still = Vec::with_capacity(remaining.len());
                for (j, &p) in remaining.iter().enumerate() {
                    if matches!(v.get(p).sql_cmp(&w.get(j)), Some(std::cmp::Ordering::Equal)) {
                        found[p] = true;
                    } else {
                        still.push(p);
                    }
                }
                remaining = still;
            }
            let out: Vec<bool> = found.into_iter().map(|f| f != *negated).collect();
            Ok(Arc::new(Column::Bool(out)))
        }
        Expr::Like {
            expr,
            negated,
            pattern,
        } => {
            let v = eval_batch(ctx, expr, batch, rows, outer, used_outer)?;
            let p = eval_batch(ctx, pattern, batch, rows, outer, used_outer)?;
            ctx.counter.eval_units += n as u64;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let m = v.get(i).like(&p.get(i))?;
                out.push(m.is_truthy() != *negated);
            }
            Ok(Arc::new(Column::Bool(out)))
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_batch(ctx, expr, batch, rows, outer, used_outer)?;
            let out: Vec<bool> = (0..n).map(|i| v.is_null_at(i) != *negated).collect();
            Ok(Arc::new(Column::Bool(out)))
        }
        Expr::Function(f) => {
            let mut arg_cols = Vec::with_capacity(f.args.len());
            for a in &f.args {
                arg_cols.push(eval_batch(ctx, a, batch, rows, outer, used_outer)?);
            }
            if f.aggregate.is_some() {
                return Err(RuntimeError::TypeError(format!(
                    "aggregate {}() not allowed here",
                    f.name.base()
                )));
            }
            let name = f.name.canonical();
            let mut b = ColumnBuilder::with_capacity(n);
            let mut args: Vec<Value> = Vec::with_capacity(arg_cols.len());
            for i in 0..n {
                args.clear();
                args.extend(arg_cols.iter().map(|c| c.get(i)));
                let (v, cost) = ctx.fns.call(&name, &args)?;
                ctx.counter.fn_units += cost;
                b.push(v);
            }
            Ok(Arc::new(b.finish()))
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            let op_col = match operand {
                Some(o) => Some(eval_batch(ctx, o, batch, rows, outer, used_outer)?),
                None => None,
            };
            let mut out: Vec<Value> = vec![Value::Null; n];
            let mut remaining: Vec<usize> = (0..n).collect(); // positions
            for (cond, result) in branches {
                if remaining.is_empty() {
                    break;
                }
                let logical: Vec<usize> = remaining.iter().map(|&p| rows.get(p)).collect();
                let c = eval_batch(
                    ctx,
                    cond,
                    batch,
                    &RowSet::Subset(&logical),
                    outer,
                    used_outer,
                )?;
                let mut hit_pos = Vec::new();
                let mut still = Vec::new();
                for (j, &p) in remaining.iter().enumerate() {
                    let hit = match &op_col {
                        Some(oc) => matches!(
                            oc.get(p).sql_cmp(&c.get(j)),
                            Some(std::cmp::Ordering::Equal)
                        ),
                        None => c.is_truthy_at(j),
                    };
                    if hit {
                        hit_pos.push(p);
                    } else {
                        still.push(p);
                    }
                }
                if !hit_pos.is_empty() {
                    let logical_hit: Vec<usize> = hit_pos.iter().map(|&p| rows.get(p)).collect();
                    let r = eval_batch(
                        ctx,
                        result,
                        batch,
                        &RowSet::Subset(&logical_hit),
                        outer,
                        used_outer,
                    )?;
                    for (j, &p) in hit_pos.iter().enumerate() {
                        out[p] = r.get(j);
                    }
                }
                remaining = still;
            }
            if let Some(e) = else_expr {
                if !remaining.is_empty() {
                    let logical: Vec<usize> = remaining.iter().map(|&p| rows.get(p)).collect();
                    let r =
                        eval_batch(ctx, e, batch, &RowSet::Subset(&logical), outer, used_outer)?;
                    for (j, &p) in remaining.iter().enumerate() {
                        out[p] = r.get(j);
                    }
                }
            }
            // Unmatched rows without ELSE stay NULL, as in the row engine.
            Ok(Arc::new(Column::from_values(out)))
        }
        Expr::Cast { expr, ty } => {
            let v = eval_batch(ctx, expr, batch, rows, outer, used_outer)?;
            let mut b = ColumnBuilder::with_capacity(n);
            for i in 0..n {
                b.push(cast_value(v.get(i), ty)?);
            }
            Ok(Arc::new(b.finish()))
        }
        Expr::Subquery(q) => {
            let key = (&**q) as *const _ as usize;
            if let Some(SubqueryCacheEntry::Scalar(v)) = ctx.cached_subquery(key) {
                return Ok(Arc::new(Column::Const(v.clone(), n)));
            }
            let scope_rel = Relation {
                cols: batch.cols.clone(),
                rows: Vec::new(),
            };
            // First row decides correlation (`used_outer` cannot vary by
            // outer row: the first outer-value-dependent branch point in
            // the subquery itself consults the outer scope).
            ctx.counter.subquery_execs += 1;
            let row0 = materialize_row(batch, rows.get(0));
            let (first, sub_used_outer) = {
                let mut scopes: Vec<Scope<'_>> = outer.to_vec();
                scopes.push(Scope {
                    rel: &scope_rel,
                    row: &row0,
                });
                ctx.exec_query_batch(q, &scopes)?
            };
            let v0 = scalar_from_batch(&first)?;
            if !sub_used_outer {
                ctx.cache_scalar(key, v0.clone());
                return Ok(Arc::new(Column::Const(v0, n)));
            }
            *used_outer = true;
            let mut b = ColumnBuilder::with_capacity(n);
            b.push(v0);
            for i in 1..n {
                ctx.counter.subquery_execs += 1;
                let row = materialize_row(batch, rows.get(i));
                let (result, _) = {
                    let mut scopes: Vec<Scope<'_>> = outer.to_vec();
                    scopes.push(Scope {
                        rel: &scope_rel,
                        row: &row,
                    });
                    ctx.exec_query_batch(q, &scopes)?
                };
                b.push(scalar_from_batch(&result)?);
            }
            Ok(Arc::new(b.finish()))
        }
        Expr::InSubquery {
            expr,
            negated,
            subquery,
        } => {
            let v = eval_batch(ctx, expr, batch, rows, outer, used_outer)?;
            let key = (&**subquery) as *const _ as usize;
            let contains = |set: &HashSet<Vec<u8>>, col: &Column, i: usize| {
                if col.is_null_at(i) {
                    false
                } else {
                    let mut k = Vec::new();
                    col.group_key_at(i, &mut k);
                    set.contains(&k)
                }
            };
            let shared_set: Option<HashSet<Vec<u8>>> = match ctx.cached_subquery(key) {
                Some(SubqueryCacheEntry::Set(s)) => Some(s.clone()),
                _ => None,
            };
            let out: Vec<bool> = if let Some(set) = shared_set {
                (0..n).map(|i| contains(&set, &v, i) != *negated).collect()
            } else {
                let scope_rel = Relation {
                    cols: batch.cols.clone(),
                    rows: Vec::new(),
                };
                ctx.counter.subquery_execs += 1;
                let row0 = materialize_row(batch, rows.get(0));
                let (first, sub_used_outer) = {
                    let mut scopes: Vec<Scope<'_>> = outer.to_vec();
                    scopes.push(Scope {
                        rel: &scope_rel,
                        row: &row0,
                    });
                    ctx.exec_query_batch(subquery, &scopes)?
                };
                let set0 = set_from_batch(&first);
                if !sub_used_outer {
                    ctx.cache_set(key, set0.clone());
                    (0..n).map(|i| contains(&set0, &v, i) != *negated).collect()
                } else {
                    *used_outer = true;
                    let mut out = Vec::with_capacity(n);
                    out.push(contains(&set0, &v, 0) != *negated);
                    for i in 1..n {
                        ctx.counter.subquery_execs += 1;
                        let row = materialize_row(batch, rows.get(i));
                        let (result, _) = {
                            let mut scopes: Vec<Scope<'_>> = outer.to_vec();
                            scopes.push(Scope {
                                rel: &scope_rel,
                                row: &row,
                            });
                            ctx.exec_query_batch(subquery, &scopes)?
                        };
                        let set = set_from_batch(&result);
                        out.push(contains(&set, &v, i) != *negated);
                    }
                    out
                }
            };
            Ok(Arc::new(Column::Bool(out)))
        }
        Expr::Exists { negated, subquery } => {
            let key = (&**subquery) as *const _ as usize;
            let cached = match ctx.cached_subquery(key) {
                Some(SubqueryCacheEntry::NonEmpty(b)) => Some(*b),
                _ => None,
            };
            let out: Vec<bool> = if let Some(b) = cached {
                vec![b != *negated; n]
            } else {
                let scope_rel = Relation {
                    cols: batch.cols.clone(),
                    rows: Vec::new(),
                };
                ctx.counter.subquery_execs += 1;
                let row0 = materialize_row(batch, rows.get(0));
                let (first, sub_used_outer) = {
                    let mut scopes: Vec<Scope<'_>> = outer.to_vec();
                    scopes.push(Scope {
                        rel: &scope_rel,
                        row: &row0,
                    });
                    ctx.exec_query_batch(subquery, &scopes)?
                };
                let b0 = !first.is_empty();
                if !sub_used_outer {
                    ctx.cache_nonempty(key, b0);
                    vec![b0 != *negated; n]
                } else {
                    *used_outer = true;
                    let mut out = Vec::with_capacity(n);
                    out.push(b0 != *negated);
                    for i in 1..n {
                        ctx.counter.subquery_execs += 1;
                        let row = materialize_row(batch, rows.get(i));
                        let (result, _) = {
                            let mut scopes: Vec<Scope<'_>> = outer.to_vec();
                            scopes.push(Scope {
                                rel: &scope_rel,
                                row: &row,
                            });
                            ctx.exec_query_batch(subquery, &scopes)?
                        };
                        out.push(result.is_empty() == *negated);
                    }
                    out
                }
            };
            Ok(Arc::new(Column::Bool(out)))
        }
    }
}

// ---- vectorized kernels ----------------------------------------------

/// Borrowed numeric view of a column, for monomorphic f64 loops. `None`
/// when the column may hold non-numeric or NULL values (generic path).
enum F64View<'a> {
    I(&'a [i64]),
    F(&'a [f64]),
    Const(f64),
}

impl<'a> F64View<'a> {
    /// The kernel-side mirror of this view (`sqlan-simd` runs the
    /// tiered loops; the truth tables are the engine's — see the crate
    /// docs there).
    #[inline]
    fn as_arg(&self) -> sqlan_simd::ArgF64<'a> {
        match self {
            F64View::I(v) => sqlan_simd::ArgF64::I(v),
            F64View::F(v) => sqlan_simd::ArgF64::F(v),
            F64View::Const(x) => sqlan_simd::ArgF64::C(*x),
        }
    }
}

fn f64_view(c: &Column) -> Option<F64View<'_>> {
    match c {
        Column::Int(v) => Some(F64View::I(v)),
        Column::Float(v) => Some(F64View::F(v)),
        Column::Shared(cv) => match &**cv {
            ColumnVec::Int(v) => Some(F64View::I(v)),
            ColumnVec::Float(v) => Some(F64View::F(v)),
            ColumnVec::Str(_) => None,
        },
        Column::Const(Value::Int(i), _) => Some(F64View::Const(*i as f64)),
        Column::Const(Value::Float(f), _) => Some(F64View::Const(*f)),
        _ => None,
    }
}

/// Borrowed integer view (pure `i64` data only).
enum I64View<'a> {
    I(&'a [i64]),
    Const(i64),
}

impl<'a> I64View<'a> {
    #[inline]
    fn get(&self, i: usize) -> i64 {
        match self {
            I64View::I(v) => v[i],
            I64View::Const(x) => *x,
        }
    }

    #[inline]
    fn as_arg(&self) -> sqlan_simd::ArgI64<'a> {
        match self {
            I64View::I(v) => sqlan_simd::ArgI64::I(v),
            I64View::Const(x) => sqlan_simd::ArgI64::C(*x),
        }
    }
}

fn i64_view(c: &Column) -> Option<I64View<'_>> {
    match c {
        Column::Int(v) => Some(I64View::I(v)),
        Column::Shared(cv) => match &**cv {
            ColumnVec::Int(v) => Some(I64View::I(v)),
            _ => None,
        },
        Column::Const(Value::Int(i), _) => Some(I64View::Const(*i)),
        _ => None,
    }
}

/// The kernel-side comparison operator. `sqlan_simd::CmpOp`'s truth
/// table is `matches!(partial_cmp, ...)`'s (NaN false everywhere,
/// including `Neq`) — the differential tests in `sqlan-simd` pin that
/// equivalence against [`Value::sql_cmp`]'s numeric arm.
#[inline]
fn cmp_kernel_op(op: Op) -> sqlan_simd::CmpOp {
    match op {
        Op::Eq => sqlan_simd::CmpOp::Eq,
        Op::Neq => sqlan_simd::CmpOp::Neq,
        Op::Lt => sqlan_simd::CmpOp::Lt,
        Op::Lte => sqlan_simd::CmpOp::Lte,
        Op::Gt => sqlan_simd::CmpOp::Gt,
        Op::Gte => sqlan_simd::CmpOp::Gte,
        _ => unreachable!("cmp_kernel_op on non-comparison"),
    }
}

/// Element-wise binary operator over two dense columns of length `n`.
/// Typed fast paths replicate [`apply_binary`]'s semantics exactly
/// (numeric comparison through `f64`, checked integer arithmetic widening
/// to float on overflow); everything else goes through [`apply_binary`]
/// per element.
pub(crate) fn apply_binary_batch(
    l: &Column,
    op: Op,
    r: &Column,
    n: usize,
) -> Result<Column, RuntimeError> {
    if matches!(op, Op::Eq | Op::Neq | Op::Lt | Op::Lte | Op::Gt | Op::Gte) {
        if let (Some(a), Some(b)) = (f64_view(l), f64_view(r)) {
            let mut out = vec![false; n];
            sqlan_simd::cmp_f64(cmp_kernel_op(op), a.as_arg(), b.as_arg(), &mut out);
            return Ok(Column::Bool(out));
        }
    }
    if matches!(op, Op::Plus | Op::Minus | Op::Star) {
        if let (Some(a), Some(b)) = (i64_view(l), i64_view(r)) {
            // Both pure ints: checked op, widening to float on overflow.
            let mut bld = ColumnBuilder::with_capacity(n);
            for i in 0..n {
                let (x, y) = (a.get(i), b.get(i));
                let checked = match op {
                    Op::Plus => x.checked_add(y),
                    Op::Minus => x.checked_sub(y),
                    _ => x.checked_mul(y),
                };
                bld.push(match checked {
                    Some(v) => Value::Int(v),
                    None => Value::Float(match op {
                        Op::Plus => x as f64 + y as f64,
                        Op::Minus => x as f64 - y as f64,
                        _ => x as f64 * y as f64,
                    }),
                });
            }
            return Ok(bld.finish());
        }
        if let (Some(a), Some(b)) = (f64_view(l), f64_view(r)) {
            let kop = match op {
                Op::Plus => sqlan_simd::ArithOp::Add,
                Op::Minus => sqlan_simd::ArithOp::Sub,
                _ => sqlan_simd::ArithOp::Mul,
            };
            let mut out = vec![0.0f64; n];
            sqlan_simd::arith_f64(kop, a.as_arg(), b.as_arg(), &mut out);
            return Ok(Column::Float(out));
        }
    }
    if matches!(op, Op::BitAnd | Op::BitOr | Op::BitXor) {
        if let (Some(a), Some(b)) = (i64_view(l), i64_view(r)) {
            let kop = match op {
                Op::BitAnd => sqlan_simd::BitOp::And,
                Op::BitOr => sqlan_simd::BitOp::Or,
                _ => sqlan_simd::BitOp::Xor,
            };
            let mut out = vec![0i64; n];
            sqlan_simd::bit_i64(kop, a.as_arg(), b.as_arg(), &mut out);
            return Ok(Column::Int(out));
        }
    }
    let mut b = ColumnBuilder::with_capacity(n);
    for i in 0..n {
        b.push(apply_binary(&l.get(i), op, &r.get(i))?);
    }
    Ok(b.finish())
}

/// Element-wise negation matching [`Value::neg`].
fn neg_column(v: &Column, n: usize) -> Result<Column, RuntimeError> {
    if let Some(a) = i64_view(v) {
        return Ok(Column::Int(
            (0..n).map(|i| a.get(i).wrapping_neg()).collect(),
        ));
    }
    if let Some(F64View::F(f)) = f64_view(v) {
        return Ok(Column::Float(f.iter().map(|x| -x).collect()));
    }
    let mut b = ColumnBuilder::with_capacity(n);
    for i in 0..n {
        b.push(v.get(i).neg()?);
    }
    Ok(b.finish())
}
