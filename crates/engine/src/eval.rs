//! Scalar expression evaluation against one row, with correlated-subquery
//! support and uncorrelated-subquery caching.

use std::collections::HashSet;

use sqlan_sql::{Expr, Literal, Op, UnaryOp};

use crate::error::RuntimeError;
use crate::exec::{CachedSubquery as SubqueryCacheEntry, ExecCtx, Scope};
use crate::relation::Relation;
use crate::value::Value;

/// Evaluate `expr` for `row` of `rel`; `outer` carries enclosing scopes for
/// correlated references (innermost last). Sets `used_outer` when an outer
/// scope actually supplied a column.
pub fn eval(
    ctx: &mut ExecCtx<'_>,
    expr: &Expr,
    rel: &Relation,
    row: &[Value],
    outer: &[Scope<'_>],
    used_outer: &mut bool,
) -> Result<Value, RuntimeError> {
    match expr {
        Expr::Literal(l) => Ok(literal_value(l)),
        Expr::Column(name) => {
            // Current row first, then outer scopes from innermost out.
            if let Some(i) = rel.resolve(&name.parts)? {
                return Ok(row.get(i).cloned().unwrap_or(Value::Null));
            }
            for scope in outer.iter().rev() {
                if let Some(i) = scope.rel.resolve(&name.parts)? {
                    *used_outer = true;
                    return Ok(scope.row.get(i).cloned().unwrap_or(Value::Null));
                }
            }
            Err(RuntimeError::UnknownColumn(name.canonical()))
        }
        Expr::Wildcard(_) => Err(RuntimeError::TypeError(
            "wildcard is not a scalar expression".into(),
        )),
        Expr::Unary { op, expr } => {
            let v = eval(ctx, expr, rel, row, outer, used_outer)?;
            match op {
                UnaryOp::Neg => v.neg(),
                UnaryOp::Plus => Ok(v),
                UnaryOp::Not => Ok(Value::Bool(!v.is_truthy())),
            }
        }
        Expr::Binary { left, op, right } => {
            let l = eval(ctx, left, rel, row, outer, used_outer)?;
            let r = eval(ctx, right, rel, row, outer, used_outer)?;
            apply_binary(&l, *op, &r)
        }
        Expr::Logical { left, and, right } => {
            let l = eval(ctx, left, rel, row, outer, used_outer)?;
            // Short-circuit, charging only what we evaluate.
            if *and && !l.is_truthy() {
                return Ok(Value::Bool(false));
            }
            if !*and && l.is_truthy() {
                return Ok(Value::Bool(true));
            }
            let r = eval(ctx, right, rel, row, outer, used_outer)?;
            Ok(Value::Bool(r.is_truthy()))
        }
        Expr::Between {
            expr,
            negated,
            low,
            high,
        } => {
            let v = eval(ctx, expr, rel, row, outer, used_outer)?;
            let lo = eval(ctx, low, rel, row, outer, used_outer)?;
            let hi = eval(ctx, high, rel, row, outer, used_outer)?;
            let inside = matches!(
                v.sql_cmp(&lo),
                Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
            ) && matches!(
                v.sql_cmp(&hi),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            );
            Ok(Value::Bool(inside != *negated))
        }
        Expr::InList {
            expr,
            negated,
            list,
        } => {
            let v = eval(ctx, expr, rel, row, outer, used_outer)?;
            let mut found = false;
            for item in list {
                let w = eval(ctx, item, rel, row, outer, used_outer)?;
                if matches!(v.sql_cmp(&w), Some(std::cmp::Ordering::Equal)) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Bool(found != *negated))
        }
        Expr::Like {
            expr,
            negated,
            pattern,
        } => {
            let v = eval(ctx, expr, rel, row, outer, used_outer)?;
            let p = eval(ctx, pattern, rel, row, outer, used_outer)?;
            ctx.counter.eval_units += 1;
            let m = v.like(&p)?;
            Ok(Value::Bool(m.is_truthy() != *negated))
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(ctx, expr, rel, row, outer, used_outer)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Function(f) => {
            let mut args = Vec::with_capacity(f.args.len());
            for a in &f.args {
                args.push(eval(ctx, a, rel, row, outer, used_outer)?);
            }
            if f.aggregate.is_some() {
                // Aggregate outside GROUP BY context (e.g. in WHERE):
                // T-SQL rejects this; we surface it as a type error, which
                // maps to a non-severe execution failure.
                return Err(RuntimeError::TypeError(format!(
                    "aggregate {}() not allowed here",
                    f.name.base()
                )));
            }
            let (v, cost) = ctx.fns.call(&f.name.canonical(), &args)?;
            ctx.counter.fn_units += cost;
            Ok(v)
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            let op_val = match operand {
                Some(o) => Some(eval(ctx, o, rel, row, outer, used_outer)?),
                None => None,
            };
            for (cond, result) in branches {
                let c = eval(ctx, cond, rel, row, outer, used_outer)?;
                let hit = match &op_val {
                    Some(v) => matches!(v.sql_cmp(&c), Some(std::cmp::Ordering::Equal)),
                    None => c.is_truthy(),
                };
                if hit {
                    return eval(ctx, result, rel, row, outer, used_outer);
                }
            }
            match else_expr {
                Some(e) => eval(ctx, e, rel, row, outer, used_outer),
                None => Ok(Value::Null),
            }
        }
        Expr::Cast { expr, ty } => {
            let v = eval(ctx, expr, rel, row, outer, used_outer)?;
            cast_value(v, ty)
        }
        Expr::Subquery(q) => {
            let key = (&**q) as *const _ as usize;
            if let Some(SubqueryCacheEntry::Scalar(v)) = ctx.cached_subquery(key) {
                return Ok(v.clone());
            }
            ctx.counter.subquery_execs += 1;
            let scope = Scope { rel, row };
            let mut scopes: Vec<Scope<'_>> = outer.to_vec();
            scopes.push(scope);
            let (result, sub_used_outer) = ctx.exec_query(q, &scopes)?;
            let v = scalar_from_relation(&result)?;
            if !sub_used_outer {
                ctx.cache_scalar(key, v.clone());
            } else {
                *used_outer = true;
            }
            Ok(v)
        }
        Expr::InSubquery {
            expr,
            negated,
            subquery,
        } => {
            let v = eval(ctx, expr, rel, row, outer, used_outer)?;
            let key = (&**subquery) as *const _ as usize;
            let set = match ctx.cached_subquery(key) {
                Some(SubqueryCacheEntry::Set(s)) => s.clone(),
                _ => {
                    ctx.counter.subquery_execs += 1;
                    let scope = Scope { rel, row };
                    let mut scopes: Vec<Scope<'_>> = outer.to_vec();
                    scopes.push(scope);
                    let (result, sub_used_outer) = ctx.exec_query(subquery, &scopes)?;
                    let mut s: HashSet<Vec<u8>> = HashSet::with_capacity(result.len());
                    for r in &result.rows {
                        if let Some(first) = r.first() {
                            if !first.is_null() {
                                let mut k = Vec::new();
                                first.group_key(&mut k);
                                s.insert(k);
                            }
                        }
                    }
                    if !sub_used_outer {
                        ctx.cache_set(key, s.clone());
                    } else {
                        *used_outer = true;
                    }
                    s
                }
            };
            let found = if v.is_null() {
                false
            } else {
                let mut k = Vec::new();
                v.group_key(&mut k);
                set.contains(&k)
            };
            Ok(Value::Bool(found != *negated))
        }
        Expr::Exists { negated, subquery } => {
            let key = (&**subquery) as *const _ as usize;
            let nonempty = match ctx.cached_subquery(key) {
                Some(SubqueryCacheEntry::NonEmpty(b)) => *b,
                _ => {
                    ctx.counter.subquery_execs += 1;
                    let scope = Scope { rel, row };
                    let mut scopes: Vec<Scope<'_>> = outer.to_vec();
                    scopes.push(scope);
                    let (result, sub_used_outer) = ctx.exec_query(subquery, &scopes)?;
                    let b = !result.is_empty();
                    if !sub_used_outer {
                        ctx.cache_nonempty(key, b);
                    } else {
                        *used_outer = true;
                    }
                    b
                }
            };
            Ok(Value::Bool(nonempty != *negated))
        }
    }
}

/// Apply a binary operator to already-evaluated operands.
pub fn apply_binary(l: &Value, op: Op, r: &Value) -> Result<Value, RuntimeError> {
    match op {
        Op::Plus => l.add(r),
        Op::Minus => l.sub(r),
        Op::Star => l.mul(r),
        Op::Slash => l.div(r),
        Op::Percent => l.rem(r),
        Op::BitAnd => l.bit_and(r),
        Op::BitOr => l.bit_or(r),
        Op::BitXor => l.bit_xor(r),
        Op::Concat => l.concat(r),
        Op::Eq => Ok(Value::Bool(matches!(
            l.sql_cmp(r),
            Some(std::cmp::Ordering::Equal)
        ))),
        Op::Neq => Ok(Value::Bool(matches!(
            l.sql_cmp(r),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Greater)
        ))),
        Op::Lt => Ok(Value::Bool(matches!(
            l.sql_cmp(r),
            Some(std::cmp::Ordering::Less)
        ))),
        Op::Lte => Ok(Value::Bool(matches!(
            l.sql_cmp(r),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        ))),
        Op::Gt => Ok(Value::Bool(matches!(
            l.sql_cmp(r),
            Some(std::cmp::Ordering::Greater)
        ))),
        Op::Gte => Ok(Value::Bool(matches!(
            l.sql_cmp(r),
            Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
        ))),
    }
}

pub(crate) fn literal_value(l: &Literal) -> Value {
    match l {
        Literal::Number(v, text) => {
            // Integers stay integers.
            if !text.contains('.') && !text.contains('e') && !text.contains('E') {
                if let Ok(i) = text.parse::<i64>() {
                    return Value::Int(i);
                }
            }
            Value::Float(*v)
        }
        Literal::Hex(v, _) => Value::Int(*v as i64),
        Literal::String(s) => Value::Str(s.clone()),
        Literal::Null => Value::Null,
    }
}

fn cast_value(v: Value, ty: &str) -> Result<Value, RuntimeError> {
    let base = ty
        .split('(')
        .next()
        .unwrap_or(ty)
        .trim()
        .to_ascii_lowercase();
    match base.as_str() {
        "int" | "bigint" | "smallint" | "tinyint" => match &v {
            Value::Null => Ok(Value::Null),
            Value::Str(s) => s
                .trim()
                .parse::<f64>()
                .map(|f| Value::Int(f as i64))
                .map_err(|_| RuntimeError::TypeError(format!("cannot cast '{s}' to {base}"))),
            other => other
                .as_i64()
                .map(Value::Int)
                .ok_or_else(|| RuntimeError::TypeError(format!("cannot cast to {base}"))),
        },
        "float" | "real" | "decimal" | "numeric" => match &v {
            Value::Null => Ok(Value::Null),
            Value::Str(s) => s
                .trim()
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| RuntimeError::TypeError(format!("cannot cast '{s}' to {base}"))),
            other => other
                .as_f64()
                .map(Value::Float)
                .ok_or_else(|| RuntimeError::TypeError(format!("cannot cast to {base}"))),
        },
        "varchar" | "char" | "nvarchar" | "nchar" | "text" => match &v {
            Value::Null => Ok(Value::Null),
            other => Ok(Value::Str(other.display())),
        },
        _ => Err(RuntimeError::TypeError(format!(
            "unknown cast target `{ty}`"
        ))),
    }
}

fn scalar_from_relation(rel: &Relation) -> Result<Value, RuntimeError> {
    match rel.len() {
        0 => Ok(Value::Null),
        1 => Ok(rel.rows[0].first().cloned().unwrap_or(Value::Null)),
        _ => Err(RuntimeError::ScalarSubqueryCardinality),
    }
}
