//! Logical query plans: the IR between the parsed AST and physical
//! execution.
//!
//! [`lower`] translates a [`Query`] into a naive [`QueryPlan`] — scans and
//! explicit joins exactly as written, every WHERE conjunct left as a
//! residual filter, every comma-join folded as a cross product. The
//! [`crate::optimizer`] passes then rewrite the plan (predicate pushdown,
//! equi-join detection, constant folding, projection pruning), and
//! [`crate::physical`] executes the result against the catalog.
//!
//! The plan deliberately keeps the *phase structure* of query execution
//! explicit — FROM items, pushed filters (in original conjunct order),
//! item folds, residual filters, then select/distinct/sort/limit — rather
//! than dissolving everything into one operator tree. Execution order is
//! part of the engine's contract: the deterministic [`crate::CostCounter`]
//! charges are workload labels, so two plans that differ only in charge
//! *order* can still differ observably when a query aborts on a resource
//! budget. Phases pin that order. An operator-tree *view* for humans is
//! still available through [`QueryPlan::render`] (EXPLAIN).

use sqlan_sql::{Expr, JoinKind, OrderByItem, QualifiedName, Query, SelectItem, TableFactor};

use crate::catalog::Catalog;
use crate::error::RuntimeError;
use crate::relation::{ColRef, Relation};

/// A relational operator tree for one FROM item (or a nested subquery).
#[derive(Debug, Clone)]
pub enum LogicalPlan {
    /// Scan a base table. `columns` restricts the materialized columns
    /// (projection pruning); `None` keeps the full schema.
    Scan {
        table: QualifiedName,
        alias: Option<String>,
        columns: Option<Vec<usize>>,
    },
    /// A derived table: a fully planned subquery bound under an alias.
    Subquery {
        plan: Box<QueryPlan>,
        alias: Option<String>,
    },
    /// Filter rows of `input` by `predicate`.
    Filter {
        input: Box<LogicalPlan>,
        predicate: Expr,
    },
    /// An explicit `JOIN`. `strategy` is chosen by the equi-join
    /// detection pass; the naive plan always uses [`JoinStrategy::NestedLoop`].
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        kind: JoinKind,
        on: Option<Expr>,
        strategy: JoinStrategy,
    },
}

/// Physical algorithm annotation for a join node.
#[derive(Debug, Clone)]
pub enum JoinStrategy {
    /// Pairwise evaluation of the full `ON` condition.
    NestedLoop,
    /// Build a hash table on `right_key`, probe with `left_key`, then
    /// re-check the full `ON` condition on candidates.
    Hash {
        left_key: Box<Expr>,
        right_key: Box<Expr>,
    },
}

/// How two adjacent comma-list items are combined.
#[derive(Debug, Clone)]
pub enum FoldStep {
    /// Cartesian product (no usable equality found).
    Cross,
    /// Single-key hash join; `condition` is the conjunction of every
    /// WHERE conjunct consumed by this fold (re-checked per candidate).
    Hash {
        left_key: Expr,
        right_key: Expr,
        condition: Expr,
    },
}

/// The projection/aggregation head of a query.
#[derive(Debug, Clone)]
pub enum SelectOp {
    Project {
        items: Vec<SelectItem>,
    },
    Aggregate {
        items: Vec<SelectItem>,
        group_by: Vec<Expr>,
        having: Option<Expr>,
    },
}

/// A fully lowered SELECT: FROM-item subtrees plus the explicitly phased
/// steps around them.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// One operator tree per comma-separated FROM item.
    pub items: Vec<LogicalPlan>,
    /// Single-item WHERE conjuncts pushed down by the optimizer:
    /// `(item index, predicate)`, preserving original conjunct order
    /// (which is the charge order of the cost counter).
    pub pushed: Vec<(usize, Expr)>,
    /// `folds[k]` combines the accumulated join of items `0..=k` with
    /// item `k + 1`.
    pub folds: Vec<FoldStep>,
    /// Filters applied after all items are combined.
    pub residual: Vec<Expr>,
    pub select: SelectOp,
    pub distinct: bool,
    pub order_by: Vec<OrderByItem>,
    pub top: Option<u64>,
}

// ================= lowering =================

/// Lower a parsed query into the naive plan: no pushdown, no equi-join
/// detection, cross-product folds, conjunct-split residual filters.
pub fn lower(q: &Query) -> QueryPlan {
    let items: Vec<LogicalPlan> = q.from.iter().map(lower_item).collect();
    let folds = vec![FoldStep::Cross; items.len().saturating_sub(1)];
    let residual: Vec<Expr> = q
        .where_clause
        .as_ref()
        .map(|w| split_conjuncts(w).into_iter().cloned().collect())
        .unwrap_or_default();
    let select = if !q.group_by.is_empty() || query_has_aggregate(q) {
        SelectOp::Aggregate {
            items: q.select.clone(),
            group_by: q.group_by.clone(),
            having: q.having.clone(),
        }
    } else {
        SelectOp::Project {
            items: q.select.clone(),
        }
    };
    QueryPlan {
        items,
        pushed: Vec::new(),
        folds,
        residual,
        select,
        distinct: q.distinct,
        order_by: q.order_by.clone(),
        top: q.top,
    }
}

fn lower_item(item: &sqlan_sql::FromItem) -> LogicalPlan {
    let mut node = lower_factor(&item.factor);
    for join in &item.joins {
        node = LogicalPlan::Join {
            left: Box::new(node),
            right: Box::new(lower_factor(&join.factor)),
            kind: join.kind,
            on: join.on.clone(),
            strategy: JoinStrategy::NestedLoop,
        };
    }
    node
}

fn lower_factor(factor: &TableFactor) -> LogicalPlan {
    match factor {
        TableFactor::Table { name, alias } => LogicalPlan::Scan {
            table: name.clone(),
            alias: alias.clone(),
            columns: None,
        },
        TableFactor::Derived { subquery, alias } => LogicalPlan::Subquery {
            plan: Box::new(lower(subquery)),
            alias: alias.clone(),
        },
    }
}

// ================= conjunct / aggregate analysis =================

/// Split a boolean expression into AND-connected conjuncts.
pub fn split_conjuncts(e: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn rec<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        match e {
            Expr::Logical {
                left,
                and: true,
                right,
            } => {
                rec(left, out);
                rec(right, out);
            }
            other => out.push(other),
        }
    }
    rec(e, &mut out);
    out
}

/// Does any select item or HAVING clause contain an aggregate call?
pub fn query_has_aggregate(q: &Query) -> bool {
    let mut found = false;
    let mut check = |e: &Expr| {
        sqlan_sql::visit::walk_expr(e, &mut |x| {
            if let Expr::Function(f) = x {
                if f.aggregate.is_some() {
                    found = true;
                }
            }
        });
    };
    for item in &q.select {
        check(&item.expr);
    }
    if let Some(h) = &q.having {
        check(h);
    }
    found
}

// ================= static schemas =================

/// A rows-free [`Relation`] carrying only column metadata, used for
/// plan-time name resolution (the same `Relation::resolve` rules the
/// executor applies at runtime, so optimizer decisions match execution).
pub fn schema_relation(cols: Vec<ColRef>) -> Relation {
    Relation {
        cols,
        rows: Vec::new(),
    }
}

/// The output columns a plan node will materialize. Unknown tables yield
/// an empty schema — planning never fails; the corresponding scan raises
/// the error at execution time, preserving the engine's error ordering.
pub fn node_schema(node: &LogicalPlan, catalog: &Catalog) -> Vec<ColRef> {
    match node {
        LogicalPlan::Scan {
            table,
            alias,
            columns,
        } => {
            let Some(t) = catalog.get(&table.canonical()) else {
                return Vec::new();
            };
            let qualifier = alias.as_ref().map(|a| a.to_ascii_lowercase());
            let tname = t.name.to_ascii_lowercase();
            let all: Vec<ColRef> = t
                .columns
                .iter()
                .map(|c| ColRef {
                    qualifier: qualifier.clone(),
                    table: Some(tname.clone()),
                    name: c.name.clone(),
                })
                .collect();
            match columns {
                None => all,
                Some(keep) => keep.iter().filter_map(|&i| all.get(i).cloned()).collect(),
            }
        }
        LogicalPlan::Subquery { plan, alias } => {
            let qualifier = alias.as_ref().map(|a| a.to_ascii_lowercase());
            plan.output_schema(catalog)
                .into_iter()
                .map(|mut c| {
                    c.qualifier = qualifier.clone();
                    c.table = None;
                    c
                })
                .collect()
        }
        LogicalPlan::Filter { input, .. } => node_schema(input, catalog),
        LogicalPlan::Join { left, right, .. } => {
            let mut cols = node_schema(left, catalog);
            cols.extend(node_schema(right, catalog));
            cols
        }
    }
}

impl QueryPlan {
    /// Schema of the combined FROM source (all items side by side).
    pub fn source_schema(&self, catalog: &Catalog) -> Vec<ColRef> {
        let mut cols = Vec::new();
        for item in &self.items {
            cols.extend(node_schema(item, catalog));
        }
        cols
    }

    /// Schema of the query's output rows (after projection/aggregation).
    pub fn output_schema(&self, catalog: &Catalog) -> Vec<ColRef> {
        let source = schema_relation(self.source_schema(catalog));
        match &self.select {
            SelectOp::Project { items } => match projection_plan(items, &source) {
                Ok((cols, _)) => cols,
                // Unknown `alias.*` — execution will raise the error; the
                // best-effort schema just omits it.
                Err(_) => Vec::new(),
            },
            SelectOp::Aggregate { items, .. } => aggregate_output_cols(items),
        }
    }
}

/// One step of a projection: either copy a source column through or
/// evaluate an expression.
#[derive(Debug)]
pub(crate) enum ProjStep<'q> {
    Passthrough(usize),
    Eval(&'q Expr),
}

/// Expand wildcards and name output columns for a projection — shared by
/// plan-time schema computation and physical execution so they can never
/// disagree.
pub(crate) fn projection_plan<'q>(
    select: &'q [SelectItem],
    source: &Relation,
) -> Result<(Vec<ColRef>, Vec<ProjStep<'q>>), RuntimeError> {
    let mut cols = Vec::new();
    let mut plan = Vec::new();
    for (k, item) in select.iter().enumerate() {
        match &item.expr {
            Expr::Wildcard(qual) => {
                let idxs = source.wildcard_columns(qual.as_deref());
                if idxs.is_empty() && qual.is_some() {
                    return Err(RuntimeError::UnknownColumn(format!(
                        "{}.*",
                        qual.clone().unwrap_or_default()
                    )));
                }
                for i in idxs {
                    cols.push(source.cols[i].clone());
                    plan.push(ProjStep::Passthrough(i));
                }
            }
            e => {
                let name = item
                    .alias
                    .clone()
                    .or_else(|| match e {
                        Expr::Column(c) => Some(c.base().to_string()),
                        _ => None,
                    })
                    .unwrap_or_else(|| format!("col{}", k + 1));
                cols.push(ColRef {
                    qualifier: None,
                    table: None,
                    name,
                });
                plan.push(ProjStep::Eval(e));
            }
        }
    }
    Ok((cols, plan))
}

/// Output column names of an aggregate head (aliases, bare column names,
/// function names, `colN` fallbacks).
pub(crate) fn aggregate_output_cols(select: &[SelectItem]) -> Vec<ColRef> {
    select
        .iter()
        .enumerate()
        .map(|(k, item)| {
            let name = item
                .alias
                .clone()
                .or_else(|| match &item.expr {
                    Expr::Column(c) => Some(c.base().to_string()),
                    Expr::Function(f) => Some(f.name.base().to_string()),
                    _ => None,
                })
                .unwrap_or_else(|| format!("col{}", k + 1));
            ColRef {
                qualifier: None,
                table: None,
                name,
            }
        })
        .collect()
}

// ================= EXPLAIN rendering =================

impl QueryPlan {
    /// Render the plan as an operator tree (EXPLAIN). The phased parts of
    /// the plan are shown as the operator pipeline they execute as.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut lines: Vec<(usize, String)> = Vec::new();
        self.render_into(0, &mut lines);
        for (depth, text) in lines {
            for _ in 0..depth {
                out.push_str("  ");
            }
            out.push_str(&text);
            out.push('\n');
        }
        out
    }

    fn render_into(&self, depth: usize, lines: &mut Vec<(usize, String)>) {
        let mut d = depth;
        if let Some(n) = self.top {
            lines.push((d, format!("Limit {n}")));
            d += 1;
        }
        if !self.order_by.is_empty() {
            let keys: Vec<String> = self
                .order_by
                .iter()
                .map(|o| format!("{}{}", o.expr, if o.desc { " DESC" } else { "" }))
                .collect();
            lines.push((d, format!("Sort [{}]", keys.join(", "))));
            d += 1;
        }
        if self.distinct {
            lines.push((d, "Distinct".to_string()));
            d += 1;
        }
        match &self.select {
            SelectOp::Project { items } => {
                let cols: Vec<String> = items.iter().map(|i| i.expr.to_string()).collect();
                lines.push((d, format!("Project [{}]", cols.join(", "))));
            }
            SelectOp::Aggregate {
                items,
                group_by,
                having,
            } => {
                let cols: Vec<String> = items.iter().map(|i| i.expr.to_string()).collect();
                let mut text = format!("Aggregate [{}]", cols.join(", "));
                if !group_by.is_empty() {
                    let keys: Vec<String> = group_by.iter().map(|g| g.to_string()).collect();
                    text.push_str(&format!(" group by [{}]", keys.join(", ")));
                }
                if let Some(h) = having {
                    text.push_str(&format!(" having ({h})"));
                }
                lines.push((d, text));
            }
        }
        d += 1;
        for pred in self.residual.iter().rev() {
            lines.push((d, format!("Filter ({pred})")));
            d += 1;
        }
        self.render_source(d, lines);
    }

    fn render_source(&self, depth: usize, lines: &mut Vec<(usize, String)>) {
        if self.items.is_empty() {
            lines.push((depth, "UnitRow".to_string()));
            return;
        }
        // Left-deep fold tree: render the last fold at the top.
        self.render_fold(self.items.len() - 1, depth, lines);
    }

    fn render_fold(&self, upto: usize, depth: usize, lines: &mut Vec<(usize, String)>) {
        if upto == 0 {
            self.render_item(0, depth, lines);
            return;
        }
        match &self.folds.get(upto - 1) {
            Some(FoldStep::Hash { condition, .. }) => {
                lines.push((depth, format!("HashJoin ({condition})")));
            }
            _ => lines.push((depth, "CrossJoin".to_string())),
        }
        self.render_fold(upto - 1, depth + 1, lines);
        self.render_item(upto, depth + 1, lines);
    }

    fn render_item(&self, index: usize, depth: usize, lines: &mut Vec<(usize, String)>) {
        // Pushed filters wrap the item; the last-applied filter prints
        // outermost.
        let mut d = depth;
        for (_, pred) in self.pushed.iter().filter(|(i, _)| *i == index).rev() {
            lines.push((d, format!("Filter ({pred})")));
            d += 1;
        }
        render_node(&self.items[index], d, lines);
    }
}

fn render_node(node: &LogicalPlan, depth: usize, lines: &mut Vec<(usize, String)>) {
    match node {
        LogicalPlan::Scan {
            table,
            alias,
            columns,
        } => {
            let mut text = format!("Scan {}", table.canonical());
            if let Some(a) = alias {
                text.push_str(&format!(" AS {a}"));
            }
            if let Some(keep) = columns {
                text.push_str(&format!(" [{} cols]", keep.len()));
            }
            lines.push((depth, text));
        }
        LogicalPlan::Subquery { plan, alias } => {
            lines.push((
                depth,
                format!(
                    "Subquery{}",
                    alias
                        .as_ref()
                        .map(|a| format!(" AS {a}"))
                        .unwrap_or_default()
                ),
            ));
            plan.render_into(depth + 1, lines);
        }
        LogicalPlan::Filter { input, predicate } => {
            lines.push((depth, format!("Filter ({predicate})")));
            render_node(input, depth + 1, lines);
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            strategy,
        } => {
            let head = match strategy {
                JoinStrategy::Hash { .. } => "HashJoin",
                JoinStrategy::NestedLoop => "NestedLoopJoin",
            };
            let mut text = format!("{head} {kind:?}");
            if let Some(c) = on {
                text.push_str(&format!(" on ({c})"));
            }
            lines.push((depth, text));
            render_node(left, depth + 1, lines);
            render_node(right, depth + 1, lines);
        }
    }
}

impl std::fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}
