//! Engine error taxonomy and its mapping to the paper's error classes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised while *executing* a query that reached the engine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuntimeError {
    /// A referenced table does not exist in the catalog.
    UnknownTable(String),
    /// A referenced column does not resolve in scope.
    UnknownColumn(String),
    /// A column reference matches more than one table in scope.
    AmbiguousColumn(String),
    /// A called function is not in the registry.
    UnknownFunction(String),
    /// Wrong number of arguments for a registered function.
    BadArity {
        function: String,
        expected: usize,
        got: usize,
    },
    /// Operand types don't fit the operator.
    TypeError(String),
    /// Integer or float division by zero.
    DivideByZero,
    /// The query exceeded the executor's row/probe budget (a stand-in for
    /// the server-side timeouts SDSS enforces on the web portal).
    ResourceExhausted,
    /// A scalar subquery returned more than one row.
    ScalarSubqueryCardinality,
    /// Statement kind the engine does not execute (DDL against system
    /// tables, procedural statements, ...).
    Unsupported(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            RuntimeError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            RuntimeError::AmbiguousColumn(c) => write!(f, "ambiguous column `{c}`"),
            RuntimeError::UnknownFunction(x) => write!(f, "unknown function `{x}`"),
            RuntimeError::BadArity {
                function,
                expected,
                got,
            } => {
                write!(
                    f,
                    "function `{function}` expects {expected} args, got {got}"
                )
            }
            RuntimeError::TypeError(m) => write!(f, "type error: {m}"),
            RuntimeError::DivideByZero => write!(f, "division by zero"),
            RuntimeError::ResourceExhausted => write!(f, "query exceeded resource limits"),
            RuntimeError::ScalarSubqueryCardinality => {
                write!(f, "scalar subquery returned more than one row")
            }
            RuntimeError::Unsupported(m) => write!(f, "unsupported statement: {m}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// The three error classes of the SDSS workload (§4.1):
///
/// * `Success` — "the numeric value 0 means that the query successfully
///   executed".
/// * `NonSevere` — "the numeric value 1": the statement reached the
///   database server and failed there (semantic errors, runtime errors,
///   resource limits).
/// * `Severe` — "the numeric value −1, indicates an invalid query that was
///   rejected by the web portal and was not submitted to the database
///   server": lexical/syntactic rejection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ErrorClass {
    Severe,
    Success,
    NonSevere,
}

impl ErrorClass {
    /// Numeric encoding used in the SDSS logs.
    pub fn code(self) -> i32 {
        match self {
            ErrorClass::Success => 0,
            ErrorClass::NonSevere => 1,
            ErrorClass::Severe => -1,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            ErrorClass::Severe => "severe",
            ErrorClass::Success => "success",
            ErrorClass::NonSevere => "non_severe",
        }
    }

    /// All classes in the order the paper's Table 2 reports them.
    pub const ALL: [ErrorClass; 3] = [
        ErrorClass::Severe,
        ErrorClass::Success,
        ErrorClass::NonSevere,
    ];

    /// Class index used as the training label.
    pub fn index(self) -> usize {
        match self {
            ErrorClass::Severe => 0,
            ErrorClass::Success => 1,
            ErrorClass::NonSevere => 2,
        }
    }

    pub fn from_index(i: usize) -> Option<ErrorClass> {
        Self::ALL.get(i).copied()
    }
}

impl fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_class_codes_match_sdss_convention() {
        assert_eq!(ErrorClass::Success.code(), 0);
        assert_eq!(ErrorClass::NonSevere.code(), 1);
        assert_eq!(ErrorClass::Severe.code(), -1);
    }

    #[test]
    fn index_roundtrip() {
        for c in ErrorClass::ALL {
            assert_eq!(ErrorClass::from_index(c.index()), Some(c));
        }
        assert_eq!(ErrorClass::from_index(3), None);
    }

    #[test]
    fn errors_display() {
        let e = RuntimeError::UnknownTable("PhotoObj".into());
        assert!(e.to_string().contains("PhotoObj"));
    }
}
