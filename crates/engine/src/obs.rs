//! Bridge from engine internals to the process-global [`sqlan_obs`]
//! registry.
//!
//! The engine is a library — it owns no registry of its own.  Everything
//! it reports lands in [`sqlan_obs::global()`], where the serving layer's
//! `/metrics?format=prom` endpoint merges it with the per-server
//! registry.  All handles are resolved once through `OnceLock` so the
//! hot paths (plan-cache probes, per-operator timing) pay one atomic
//! load, never a registry lookup.  Every recording site is additionally
//! gated on [`sqlan_obs::enabled()`]: with `SQLAN_OBS=off` the engine
//! performs no metric work at all, which is what makes the pure-observer
//! contract (`submit` outcomes byte-identical with obs on or off) easy
//! to audit — no counter here is ever read back by execution code.

use std::sync::{Arc, OnceLock};

use sqlan_obs::{Counter, Histogram};

/// Plan-cache probe counters: template found / template absent /
/// statement fell back to the uncached path (unclean lex, parse error,
/// fingerprint slot mismatch).
pub(crate) struct PlanCacheCounters {
    pub hits: Arc<Counter>,
    pub misses: Arc<Counter>,
    pub bypass: Arc<Counter>,
}

pub(crate) fn plan_cache_counters() -> &'static PlanCacheCounters {
    static C: OnceLock<PlanCacheCounters> = OnceLock::new();
    C.get_or_init(|| {
        let r = sqlan_obs::global();
        PlanCacheCounters {
            hits: r.counter(
                "sqlan_plan_cache_hits_total",
                "Template plan cache probes that found a cached skeleton",
            ),
            misses: r.counter(
                "sqlan_plan_cache_misses_total",
                "Template plan cache probes that found no cached skeleton",
            ),
            bypass: r.counter(
                "sqlan_plan_cache_bypass_total",
                "Statements that bypassed the template plan cache (unclean lex, parse error, or slot mismatch)",
            ),
        }
    })
}

/// Per-operator wall time observed by `EXPLAIN ANALYZE`, seconds.
pub(crate) fn op_wall_hist() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        sqlan_obs::global().histogram(
            "sqlan_engine_op_wall_seconds",
            "Observed wall time per physical operator under EXPLAIN ANALYZE",
            1e-9,
        )
    })
}

/// Statements submitted through [`Database::submit`], by outcome class.
///
/// [`Database::submit`]: crate::Database::submit
pub(crate) struct SubmitCounters {
    pub success: Arc<Counter>,
    pub non_severe: Arc<Counter>,
    pub severe: Arc<Counter>,
}

pub(crate) fn submit_counters() -> &'static SubmitCounters {
    static C: OnceLock<SubmitCounters> = OnceLock::new();
    C.get_or_init(|| {
        let r = sqlan_obs::global();
        SubmitCounters {
            success: r.counter_with(
                "sqlan_engine_submits_total",
                "Statements submitted to the engine, by outcome error class",
                &[("class", "success")],
            ),
            non_severe: r.counter_with(
                "sqlan_engine_submits_total",
                "Statements submitted to the engine, by outcome error class",
                &[("class", "non_severe")],
            ),
            severe: r.counter_with(
                "sqlan_engine_submits_total",
                "Statements submitted to the engine, by outcome error class",
                &[("class", "severe")],
            ),
        }
    })
}
