//! Scalar function registry.
//!
//! SDSS exposes hundreds of `dbo.f*` functions; we implement deterministic
//! stand-ins for the ones our workload templates use, plus the generic
//! T-SQL scalar functions. Each function carries a *cost weight* — the
//! executor charges it per invocation, which is exactly how the paper's
//! motivating example (Figure 1b) becomes expensive: a function in the
//! WHERE clause is called once per scanned row.

use std::collections::HashMap;

use crate::error::RuntimeError;
use crate::value::Value;

type FnImpl = fn(&[Value]) -> Result<Value, RuntimeError>;

/// A registered scalar function.
#[derive(Clone)]
pub struct ScalarFn {
    pub name: &'static str,
    /// `None` = variadic.
    pub arity: Option<usize>,
    /// Cost units charged per call (see `CostModel`).
    pub cost: u64,
    pub imp: FnImpl,
}

impl std::fmt::Debug for ScalarFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScalarFn")
            .field("name", &self.name)
            .field("arity", &self.arity)
            .field("cost", &self.cost)
            .finish()
    }
}

/// Function registry with case-insensitive, qualifier-insensitive lookup.
#[derive(Debug, Clone)]
pub struct FnRegistry {
    fns: HashMap<&'static str, ScalarFn>,
}

impl Default for FnRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

impl FnRegistry {
    /// The full standard registry (generic T-SQL + SDSS stand-ins).
    pub fn standard() -> Self {
        let mut fns: HashMap<&'static str, ScalarFn> = HashMap::new();
        let mut add = |f: ScalarFn| {
            fns.insert(f.name, f);
        };

        // ---- generic scalar functions ----------------------------------
        add(ScalarFn {
            name: "abs",
            arity: Some(1),
            cost: 1,
            imp: f_abs,
        });
        add(ScalarFn {
            name: "sqrt",
            arity: Some(1),
            cost: 2,
            imp: f_sqrt,
        });
        add(ScalarFn {
            name: "floor",
            arity: Some(1),
            cost: 1,
            imp: f_floor,
        });
        add(ScalarFn {
            name: "ceiling",
            arity: Some(1),
            cost: 1,
            imp: f_ceiling,
        });
        add(ScalarFn {
            name: "round",
            arity: Some(2),
            cost: 1,
            imp: f_round,
        });
        add(ScalarFn {
            name: "power",
            arity: Some(2),
            cost: 4,
            imp: f_power,
        });
        add(ScalarFn {
            name: "log",
            arity: Some(1),
            cost: 4,
            imp: f_log,
        });
        add(ScalarFn {
            name: "log10",
            arity: Some(1),
            cost: 4,
            imp: f_log10,
        });
        add(ScalarFn {
            name: "exp",
            arity: Some(1),
            cost: 4,
            imp: f_exp,
        });
        add(ScalarFn {
            name: "sign",
            arity: Some(1),
            cost: 1,
            imp: f_sign,
        });
        add(ScalarFn {
            name: "sin",
            arity: Some(1),
            cost: 4,
            imp: f_sin,
        });
        add(ScalarFn {
            name: "cos",
            arity: Some(1),
            cost: 4,
            imp: f_cos,
        });
        add(ScalarFn {
            name: "radians",
            arity: Some(1),
            cost: 1,
            imp: f_radians,
        });
        add(ScalarFn {
            name: "str",
            arity: Some(1),
            cost: 2,
            imp: f_str,
        });
        add(ScalarFn {
            name: "len",
            arity: Some(1),
            cost: 1,
            imp: f_len,
        });
        add(ScalarFn {
            name: "datalength",
            arity: Some(1),
            cost: 1,
            imp: f_len,
        });
        add(ScalarFn {
            name: "upper",
            arity: Some(1),
            cost: 2,
            imp: f_upper,
        });
        add(ScalarFn {
            name: "lower",
            arity: Some(1),
            cost: 2,
            imp: f_lower,
        });
        add(ScalarFn {
            name: "substring",
            arity: Some(3),
            cost: 2,
            imp: f_substring,
        });
        add(ScalarFn {
            name: "isnull",
            arity: Some(2),
            cost: 1,
            imp: f_isnull,
        });
        add(ScalarFn {
            name: "coalesce",
            arity: None,
            cost: 1,
            imp: f_coalesce,
        });
        add(ScalarFn {
            name: "nullif",
            arity: Some(2),
            cost: 1,
            imp: f_nullif,
        });

        // ---- SDSS stand-ins ---------------------------------------------
        // Flag-name → bitmask, deterministic via FNV hash of the name.
        add(ScalarFn {
            name: "fphotoflags",
            arity: Some(1),
            cost: 8,
            imp: f_photoflags,
        });
        // Angular separation in arcminutes between two (ra, dec) pairs.
        add(ScalarFn {
            name: "fdistancearcmineq",
            arity: Some(4),
            cost: 24,
            imp: f_distance_arcmin_eq,
        });
        // Object id → archive URL.
        add(ScalarFn {
            name: "fgeturlexpid",
            arity: Some(1),
            cost: 16,
            imp: f_get_url_expid,
        });
        // Magnitude → flux conversion (heavy math stand-in).
        add(ScalarFn {
            name: "fmagtoflux",
            arity: Some(1),
            cost: 12,
            imp: f_mag_to_flux,
        });
        // Type-name → type code.
        add(ScalarFn {
            name: "fphototype",
            arity: Some(1),
            cost: 8,
            imp: f_phototype,
        });
        // Spectral class name → code.
        add(ScalarFn {
            name: "fspecclass",
            arity: Some(1),
            cost: 8,
            imp: f_phototype,
        });

        FnRegistry { fns }
    }

    /// Look up by possibly-qualified, case-insensitive name.
    pub fn get(&self, name: &str) -> Option<&ScalarFn> {
        let base = name.rsplit('.').next().unwrap_or(name);
        let lower = base.to_ascii_lowercase();
        self.fns.get(lower.as_str())
    }

    /// Invoke with arity checking.
    pub fn call(&self, name: &str, args: &[Value]) -> Result<(Value, u64), RuntimeError> {
        let f = self
            .get(name)
            .ok_or_else(|| RuntimeError::UnknownFunction(name.to_string()))?;
        if let Some(expected) = f.arity {
            if args.len() != expected {
                return Err(RuntimeError::BadArity {
                    function: f.name.to_string(),
                    expected,
                    got: args.len(),
                });
            }
        }
        let v = (f.imp)(args)?;
        Ok((v, f.cost))
    }
}

// ---- implementations ----------------------------------------------------

fn num1(args: &[Value], f: impl Fn(f64) -> f64) -> Result<Value, RuntimeError> {
    match &args[0] {
        Value::Null => Ok(Value::Null),
        v => {
            let x = v
                .as_f64()
                .ok_or_else(|| RuntimeError::TypeError("expected numeric argument".into()))?;
            Ok(Value::Float(f(x)))
        }
    }
}

fn f_abs(a: &[Value]) -> Result<Value, RuntimeError> {
    match &a[0] {
        Value::Int(i) => Ok(Value::Int(i.wrapping_abs())),
        other => num1(std::slice::from_ref(other), f64::abs),
    }
}

fn f_sqrt(a: &[Value]) -> Result<Value, RuntimeError> {
    num1(a, |x| if x < 0.0 { f64::NAN } else { x.sqrt() })
}

fn f_floor(a: &[Value]) -> Result<Value, RuntimeError> {
    num1(a, f64::floor)
}

fn f_ceiling(a: &[Value]) -> Result<Value, RuntimeError> {
    num1(a, f64::ceil)
}

fn f_round(a: &[Value]) -> Result<Value, RuntimeError> {
    let digits = a[1].as_i64().unwrap_or(0);
    let scale = 10f64.powi(digits.clamp(-12, 12) as i32);
    num1(&a[..1], move |x| (x * scale).round() / scale)
}

fn f_power(a: &[Value]) -> Result<Value, RuntimeError> {
    if a[0].is_null() || a[1].is_null() {
        return Ok(Value::Null);
    }
    let x = a[0]
        .as_f64()
        .ok_or_else(|| RuntimeError::TypeError("power: base".into()))?;
    let y = a[1]
        .as_f64()
        .ok_or_else(|| RuntimeError::TypeError("power: exp".into()))?;
    Ok(Value::Float(x.powf(y)))
}

fn f_log(a: &[Value]) -> Result<Value, RuntimeError> {
    num1(a, |x| if x <= 0.0 { f64::NAN } else { x.ln() })
}

fn f_log10(a: &[Value]) -> Result<Value, RuntimeError> {
    num1(a, |x| if x <= 0.0 { f64::NAN } else { x.log10() })
}

fn f_exp(a: &[Value]) -> Result<Value, RuntimeError> {
    num1(a, f64::exp)
}

fn f_sign(a: &[Value]) -> Result<Value, RuntimeError> {
    num1(a, |x| {
        if x > 0.0 {
            1.0
        } else if x < 0.0 {
            -1.0
        } else {
            0.0
        }
    })
}

fn f_sin(a: &[Value]) -> Result<Value, RuntimeError> {
    num1(a, f64::sin)
}

fn f_cos(a: &[Value]) -> Result<Value, RuntimeError> {
    num1(a, f64::cos)
}

fn f_radians(a: &[Value]) -> Result<Value, RuntimeError> {
    num1(a, f64::to_radians)
}

fn f_str(a: &[Value]) -> Result<Value, RuntimeError> {
    Ok(Value::Str(a[0].display()))
}

fn f_len(a: &[Value]) -> Result<Value, RuntimeError> {
    match &a[0] {
        Value::Null => Ok(Value::Null),
        v => Ok(Value::Int(v.display().chars().count() as i64)),
    }
}

fn f_upper(a: &[Value]) -> Result<Value, RuntimeError> {
    match &a[0] {
        Value::Null => Ok(Value::Null),
        v => Ok(Value::Str(v.display().to_uppercase())),
    }
}

fn f_lower(a: &[Value]) -> Result<Value, RuntimeError> {
    match &a[0] {
        Value::Null => Ok(Value::Null),
        v => Ok(Value::Str(v.display().to_lowercase())),
    }
}

fn f_substring(a: &[Value]) -> Result<Value, RuntimeError> {
    if a.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    let s = a[0].display();
    // T-SQL SUBSTRING is 1-based.
    let start = (a[1].as_i64().unwrap_or(1).max(1) - 1) as usize;
    let len = a[2].as_i64().unwrap_or(0).max(0) as usize;
    Ok(Value::Str(s.chars().skip(start).take(len).collect()))
}

fn f_isnull(a: &[Value]) -> Result<Value, RuntimeError> {
    Ok(if a[0].is_null() {
        a[1].clone()
    } else {
        a[0].clone()
    })
}

fn f_coalesce(a: &[Value]) -> Result<Value, RuntimeError> {
    Ok(a.iter()
        .find(|v| !v.is_null())
        .cloned()
        .unwrap_or(Value::Null))
}

fn f_nullif(a: &[Value]) -> Result<Value, RuntimeError> {
    if a[0] == a[1] {
        Ok(Value::Null)
    } else {
        Ok(a[0].clone())
    }
}

/// FNV-1a hash of a string; basis for the deterministic SDSS stand-ins.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// `dbo.fPhotoFlags('BLENDED')` → a single-bit mask derived from the name.
/// Tables generate `flags` columns with ~20 random bits, so `flags & mask`
/// predicates have realistic selectivity (~15%).
fn f_photoflags(a: &[Value]) -> Result<Value, RuntimeError> {
    match &a[0] {
        Value::Str(s) => Ok(Value::Int(1i64 << (fnv1a(&s.to_uppercase()) % 20))),
        Value::Null => Ok(Value::Null),
        _ => Err(RuntimeError::TypeError(
            "fPhotoFlags expects a flag name".into(),
        )),
    }
}

/// Great-circle separation in arcminutes between two equatorial positions.
fn f_distance_arcmin_eq(a: &[Value]) -> Result<Value, RuntimeError> {
    if a.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    let mut xs = [0.0f64; 4];
    for (i, v) in a.iter().enumerate() {
        xs[i] = v
            .as_f64()
            .ok_or_else(|| RuntimeError::TypeError("fDistanceArcMinEq expects numbers".into()))?;
    }
    let (ra1, dec1, ra2, dec2) = (
        xs[0].to_radians(),
        xs[1].to_radians(),
        xs[2].to_radians(),
        xs[3].to_radians(),
    );
    let cosd = dec1.sin() * dec2.sin() + dec1.cos() * dec2.cos() * (ra1 - ra2).cos();
    let d = cosd.clamp(-1.0, 1.0).acos();
    Ok(Value::Float(d.to_degrees() * 60.0))
}

fn f_get_url_expid(a: &[Value]) -> Result<Value, RuntimeError> {
    match &a[0] {
        Value::Null => Ok(Value::Null),
        v => Ok(Value::Str(format!(
            "http://skyserver.example/expid/{:x}",
            v.as_i64().unwrap_or(0)
        ))),
    }
}

/// Pogson relation: magnitude → flux in nanomaggies.
fn f_mag_to_flux(a: &[Value]) -> Result<Value, RuntimeError> {
    num1(a, |m| 10f64.powf((22.5 - m) / 2.5))
}

fn f_phototype(a: &[Value]) -> Result<Value, RuntimeError> {
    match &a[0] {
        Value::Str(s) => Ok(Value::Int((fnv1a(&s.to_uppercase()) % 10) as i64)),
        Value::Null => Ok(Value::Null),
        v => Ok(Value::Int(v.as_i64().unwrap_or(0) % 10)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> FnRegistry {
        FnRegistry::standard()
    }

    #[test]
    fn lookup_is_case_and_qualifier_insensitive() {
        let r = reg();
        assert!(r.get("ABS").is_some());
        assert!(r.get("dbo.fPhotoFlags").is_some());
        assert!(r.get("DBO.FPHOTOFLAGS").is_some());
        assert!(r.get("nosuchfn").is_none());
    }

    #[test]
    fn arity_is_checked() {
        let r = reg();
        let e = r.call("abs", &[]).unwrap_err();
        assert!(matches!(e, RuntimeError::BadArity { .. }));
    }

    #[test]
    fn photoflags_is_deterministic_single_bit() {
        let r = reg();
        let (v1, cost) = r
            .call("fphotoflags", &[Value::Str("BLENDED".into())])
            .unwrap();
        let (v2, _) = r
            .call("dbo.fPhotoFlags", &[Value::Str("blended".into())])
            .unwrap();
        assert_eq!(v1, v2);
        assert!(cost > 0);
        let m = v1.as_i64().unwrap();
        assert_eq!(m.count_ones(), 1);
    }

    #[test]
    fn distance_of_identical_points_is_zero() {
        let r = reg();
        let args = [
            Value::Float(185.0),
            Value::Float(0.5),
            Value::Float(185.0),
            Value::Float(0.5),
        ];
        let (v, _) = r.call("fDistanceArcMinEq", &args).unwrap();
        assert!(v.as_f64().unwrap().abs() < 1e-9);
    }

    #[test]
    fn distance_one_degree_is_sixty_arcmin() {
        let r = reg();
        let args = [
            Value::Float(10.0),
            Value::Float(0.0),
            Value::Float(11.0),
            Value::Float(0.0),
        ];
        let (v, _) = r.call("fDistanceArcMinEq", &args).unwrap();
        assert!((v.as_f64().unwrap() - 60.0).abs() < 1e-6);
    }

    #[test]
    fn string_functions() {
        let r = reg();
        assert_eq!(
            r.call(
                "substring",
                &[Value::Str("hello".into()), Value::Int(2), Value::Int(3)]
            )
            .unwrap()
            .0,
            Value::Str("ell".into())
        );
        assert_eq!(
            r.call("len", &[Value::Str("abc".into())]).unwrap().0,
            Value::Int(3)
        );
        assert_eq!(
            r.call("isnull", &[Value::Null, Value::Int(7)]).unwrap().0,
            Value::Int(7)
        );
    }

    #[test]
    fn coalesce_is_variadic() {
        let r = reg();
        assert_eq!(
            r.call("coalesce", &[Value::Null, Value::Null, Value::Int(3)])
                .unwrap()
                .0,
            Value::Int(3)
        );
        assert_eq!(r.call("coalesce", &[]).unwrap().0, Value::Null);
    }

    #[test]
    fn null_propagates() {
        let r = reg();
        assert_eq!(r.call("sqrt", &[Value::Null]).unwrap().0, Value::Null);
        assert_eq!(r.call("upper", &[Value::Null]).unwrap().0, Value::Null);
    }
}
