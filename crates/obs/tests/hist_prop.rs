//! Histogram correctness pins.
//!
//! 1. Quantile accuracy: on arbitrary sample sets, the bucketed
//!    p50/p95/p99 must land inside the bucket holding the exact
//!    nearest-rank percentile — i.e. within one bucket's relative error
//!    (≤ 1/32 above the linear region, exact below it).
//! 2. The hammer: many threads recording concurrently must lose no
//!    increments — the derived count, the sum and every bucket must
//!    equal the single-threaded truth.

use std::sync::Arc;
use std::thread;

use proptest::prelude::*;
use sqlan_obs::hist::{bucket_bounds, bucket_index, Histogram, N_BUCKETS};

/// Exact nearest-rank percentile, same convention as
/// `sqlan_metrics::percentile` (rank `round(q * (n-1))` over sorted).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn quantiles_within_one_bucket_of_exact(
        samples in prop::collection::vec(0u64..5_000_000_000, 1..500),
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), samples.len() as u64);
        prop_assert_eq!(snap.sum, samples.iter().sum::<u64>());
        prop_assert_eq!(snap.max, samples.iter().copied().max().unwrap_or(0));
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.50, 0.95, 0.99] {
            let exact = exact_quantile(&sorted, q);
            let est = snap.quantile(q).expect("non-empty histogram");
            // The estimate must fall inside the bucket containing the
            // exact value: that bucket's width is the error bound.
            let (lo, hi) = bucket_bounds(bucket_index(exact));
            prop_assert!(
                lo <= est && est < hi,
                "q={q}: est {est} outside bucket [{lo},{hi}) of exact {exact}"
            );
            // And the relative error that bound implies is ≤ 1/32 once
            // past the exact linear region.
            if exact >= 32 {
                let rel = (est as f64 - exact as f64).abs() / exact as f64;
                prop_assert!(rel <= 1.0 / 32.0, "q={q}: rel err {rel} > 1/32");
            } else {
                prop_assert_eq!(est, exact, "linear region must be exact");
            }
        }
    }

    #[test]
    fn merged_snapshots_equal_single_histogram(
        a in prop::collection::vec(0u64..1_000_000, 0..200),
        b in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let hall = Histogram::new();
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        prop_assert_eq!(merged, hall.snapshot());
    }
}

#[test]
fn concurrent_hammer_loses_no_increments() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 200_000;
    let h = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            thread::spawn(move || {
                // Deterministic per-thread value stream spanning the
                // linear region, mid buckets and the clamp tail.
                let mut x = t.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
                for _ in 0..PER_THREAD {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    h.record(x >> (x % 60));
                }
            })
        })
        .collect();
    for jh in handles {
        jh.join().expect("hammer thread panicked");
    }
    // Replay the same streams single-threaded for ground truth.
    let truth = Histogram::new();
    for t in 0..THREADS {
        let mut x = t.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for _ in 0..PER_THREAD {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            truth.record(x >> (x % 60));
        }
    }
    let got = h.snapshot();
    let want = truth.snapshot();
    assert_eq!(got.count(), THREADS * PER_THREAD, "lost increments");
    assert_eq!(got, want, "concurrent record diverged from serial truth");
}

#[test]
fn hammer_counters_lose_no_increments() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 500_000;
    let r = Arc::new(sqlan_obs::MetricRegistry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let r = Arc::clone(&r);
            thread::spawn(move || {
                let c = r.counter("hammer_total", "hammered counter");
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            })
        })
        .collect();
    for jh in handles {
        jh.join().expect("hammer thread panicked");
    }
    assert_eq!(
        r.counter("hammer_total", "hammered counter").get(),
        THREADS as u64 * PER_THREAD
    );
}

#[test]
fn bucket_layout_is_a_partition() {
    // Every bucket's hi is the next bucket's lo: no gaps, no overlaps.
    for i in 0..N_BUCKETS - 1 {
        assert_eq!(bucket_bounds(i).1, bucket_bounds(i + 1).0, "at bucket {i}");
    }
}
