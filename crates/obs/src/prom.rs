//! Prometheus text exposition format (version 0.0.4) rendering.
//!
//! Renders one or more [`RegistrySnapshot`]s into a single scrape body.
//! Families with the same name across snapshots merge under one
//! `# HELP`/`# TYPE` header (the exposition format forbids repeating a
//! metric name). Histograms emit cumulative `_bucket{le="..."}` lines
//! for every non-empty bucket plus the mandatory `le="+Inf"`, then
//! `_sum` and `_count`; bucket bounds and sums are multiplied by the
//! family's unit scale so nanosecond-recorded histograms expose in
//! seconds, the Prometheus base unit.

use crate::hist::{bucket_bounds, HistSnapshot};
use crate::registry::{FamilySnapshot, RegistrySnapshot, SeriesValue};

/// MIME type a `/metrics` endpoint should serve this body under.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Render snapshots into one exposition body.
pub fn render(snapshots: &[&RegistrySnapshot]) -> String {
    // Merge same-named families so each name gets exactly one header.
    let mut order: Vec<&'static str> = Vec::new();
    let mut merged: Vec<Vec<&FamilySnapshot>> = Vec::new();
    for snap in snapshots {
        for fam in &snap.families {
            match order.iter().position(|&n| n == fam.name) {
                Some(i) => merged[i].push(fam),
                None => {
                    order.push(fam.name);
                    merged.push(vec![fam]);
                }
            }
        }
    }
    let mut out = String::new();
    for group in &merged {
        let head = group[0];
        out.push_str("# HELP ");
        out.push_str(head.name);
        out.push(' ');
        out.push_str(head.help);
        out.push('\n');
        out.push_str("# TYPE ");
        out.push_str(head.name);
        out.push(' ');
        out.push_str(head.kind.as_str());
        out.push('\n');
        for fam in group {
            for series in &fam.series {
                match &series.value {
                    SeriesValue::Counter(v) => {
                        sample(&mut out, fam.name, "", &series.labels, &[], &v.to_string());
                    }
                    SeriesValue::Gauge(v) => {
                        sample(&mut out, fam.name, "", &series.labels, &[], &fmt_f64(*v));
                    }
                    SeriesValue::Histogram(h) => {
                        histogram(&mut out, fam.name, fam.scale, &series.labels, h);
                    }
                }
            }
        }
    }
    out
}

fn histogram(
    out: &mut String,
    name: &str,
    scale: f64,
    labels: &[(String, String)],
    h: &HistSnapshot,
) {
    let mut cum = 0u64;
    for (i, &c) in h.counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cum += c;
        let (_, hi) = bucket_bounds(i);
        let le = fmt_f64(hi as f64 * scale);
        sample(
            out,
            name,
            "_bucket",
            labels,
            &[("le", &le)],
            &cum.to_string(),
        );
    }
    sample(
        out,
        name,
        "_bucket",
        labels,
        &[("le", "+Inf")],
        &cum.to_string(),
    );
    sample(
        out,
        name,
        "_sum",
        labels,
        &[],
        &fmt_f64(h.sum as f64 * scale),
    );
    sample(out, name, "_count", labels, &[], &cum.to_string());
}

fn sample(
    out: &mut String,
    name: &str,
    suffix: &str,
    labels: &[(String, String)],
    extra: &[(&str, &str)],
    value: &str,
) {
    out.push_str(name);
    out.push_str(suffix);
    if !labels.is_empty() || !extra.is_empty() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra.iter().copied())
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            escape_into(out, v);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Escape a label value per the exposition format: backslash, double
/// quote and newline.
fn escape_into(out: &mut String, v: &str) {
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Prometheus float formatting: Rust's `Display` for `f64` is already
/// Go-`ParseFloat` compatible; just normalize non-finite values.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricRegistry;

    #[test]
    fn renders_counters_gauges_histograms() {
        let r = MetricRegistry::new();
        r.counter("sqlan_x_total", "things").add(3);
        r.counter_with("sqlan_y_total", "labeled things", &[("problem", "error")])
            .add(2);
        r.gauge("sqlan_depth", "queue depth").set(4.0);
        let h = r.histogram("sqlan_lat_seconds", "latency", 1e-9);
        h.record(500);
        h.record(1_000_000);
        let body = render(&[&r.snapshot()]);
        assert!(body.contains("# HELP sqlan_x_total things\n"));
        assert!(body.contains("# TYPE sqlan_x_total counter\n"));
        assert!(body.contains("sqlan_x_total 3\n"));
        assert!(body.contains("sqlan_y_total{problem=\"error\"} 2\n"));
        assert!(body.contains("# TYPE sqlan_depth gauge\n"));
        assert!(body.contains("sqlan_depth 4\n"));
        assert!(body.contains("# TYPE sqlan_lat_seconds histogram\n"));
        assert!(body.contains("sqlan_lat_seconds_bucket{le=\"+Inf\"} 2\n"));
        assert!(body.contains("sqlan_lat_seconds_count 2\n"));
        assert!(body.contains("sqlan_lat_seconds_sum 0.0010005\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_ordered() {
        let r = MetricRegistry::new();
        let h = r.histogram("h_seconds", "h", 1.0);
        for v in [1u64, 1, 50, 5000] {
            h.record(v);
        }
        let body = render(&[&r.snapshot()]);
        let mut last_cum = 0u64;
        let mut last_le = f64::NEG_INFINITY;
        let mut saw_inf = false;
        for line in body.lines().filter(|l| l.starts_with("h_seconds_bucket")) {
            let le_str = line
                .split("le=\"")
                .nth(1)
                .unwrap()
                .split('"')
                .next()
                .unwrap();
            let cum: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(cum >= last_cum, "buckets must be cumulative: {line}");
            last_cum = cum;
            if le_str == "+Inf" {
                saw_inf = true;
                assert_eq!(cum, 4);
            } else {
                let le: f64 = le_str.parse().unwrap();
                assert!(le > last_le, "le bounds must increase: {line}");
                last_le = le;
            }
        }
        assert!(saw_inf, "+Inf bucket is mandatory");
    }

    #[test]
    fn same_family_across_registries_gets_one_header() {
        let a = MetricRegistry::new();
        let b = MetricRegistry::new();
        a.counter_with("shared_total", "shared", &[("src", "a")])
            .inc();
        b.counter_with("shared_total", "shared", &[("src", "b")])
            .inc();
        let body = render(&[&a.snapshot(), &b.snapshot()]);
        assert_eq!(body.matches("# TYPE shared_total").count(), 1);
        assert!(body.contains("shared_total{src=\"a\"} 1\n"));
        assert!(body.contains("shared_total{src=\"b\"} 1\n"));
    }

    #[test]
    fn label_values_escape() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "a\\\"b\\\\c\\nd");
    }
}
