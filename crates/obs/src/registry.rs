//! Metric registry: named, labeled families of counters, gauges and
//! histograms with point-in-time snapshots.
//!
//! Registration is get-or-register — asking for the same `(name,
//! labels)` twice returns the *same* handle, so independent components
//! (several `Database`s, several server instances) can share one
//! namespace without coordination. The registry's internal `Mutex` is
//! touched only at registration and snapshot time; the request hot path
//! holds pre-registered `Arc` handles and never takes a lock.

use std::sync::{Arc, Mutex};

use crate::hist::{HistSnapshot, Histogram};
use crate::metric::{Counter, Gauge};

/// What a metric family measures, mirroring the Prometheus `# TYPE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    pub fn as_str(&self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Series {
    labels: Vec<(&'static str, String)>,
    handle: Handle,
}

struct Family {
    name: &'static str,
    help: &'static str,
    kind: Kind,
    /// Multiplier turning the raw recorded unit into the exposition
    /// unit (e.g. `1e-9` for nanosecond histograms exposed in seconds).
    scale: f64,
    series: Vec<Series>,
}

/// A set of metric families. One per server instance for serving
/// metrics; [`crate::global`] for process-wide engine/featurizer
/// instrumentation.
#[derive(Default)]
pub struct MetricRegistry {
    families: Mutex<Vec<Family>>,
}

impl std::fmt::Debug for MetricRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.families.lock().map(|fs| fs.len()).unwrap_or(0);
        f.debug_struct("MetricRegistry")
            .field("families", &n)
            .finish()
    }
}

impl MetricRegistry {
    pub fn new() -> MetricRegistry {
        MetricRegistry::default()
    }

    /// Get-or-register an unlabeled counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Get-or-register a counter with label pairs.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Counter> {
        match self.series(name, help, Kind::Counter, 1.0, labels, || {
            Handle::Counter(Arc::new(Counter::new()))
        }) {
            Handle::Counter(c) => c,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Get-or-register an unlabeled gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        match self.series(name, help, Kind::Gauge, 1.0, &[], || {
            Handle::Gauge(Arc::new(Gauge::new()))
        }) {
            Handle::Gauge(g) => g,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Get-or-register an unlabeled histogram whose raw unit times
    /// `scale` is the exposition unit.
    pub fn histogram(&self, name: &'static str, help: &'static str, scale: f64) -> Arc<Histogram> {
        self.histogram_with(name, help, scale, &[])
    }

    /// Get-or-register a histogram with label pairs.
    pub fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        scale: f64,
        labels: &[(&'static str, &str)],
    ) -> Arc<Histogram> {
        match self.series(name, help, Kind::Histogram, scale, labels, || {
            Handle::Histogram(Arc::new(Histogram::new()))
        }) {
            Handle::Histogram(h) => h,
            _ => unreachable!("kind checked in series()"),
        }
    }

    fn series(
        &self,
        name: &'static str,
        help: &'static str,
        kind: Kind,
        scale: f64,
        labels: &[(&'static str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let mut families = self.families.lock().expect("metric registry poisoned");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert_eq!(
                    f.kind, kind,
                    "metric {name} registered twice with different kinds"
                );
                f
            }
            None => {
                families.push(Family {
                    name,
                    help,
                    kind,
                    scale,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(s) = family.series.iter().find(|s| {
            s.labels.len() == labels.len()
                && s.labels
                    .iter()
                    .zip(labels)
                    .all(|(a, b)| a.0 == b.0 && a.1 == b.1)
        }) {
            return match &s.handle {
                Handle::Counter(c) => Handle::Counter(Arc::clone(c)),
                Handle::Gauge(g) => Handle::Gauge(Arc::clone(g)),
                Handle::Histogram(h) => Handle::Histogram(Arc::clone(h)),
            };
        }
        let handle = make();
        let clone = match &handle {
            Handle::Counter(c) => Handle::Counter(Arc::clone(c)),
            Handle::Gauge(g) => Handle::Gauge(Arc::clone(g)),
            Handle::Histogram(h) => Handle::Histogram(Arc::clone(h)),
        };
        family.series.push(Series {
            labels: labels.iter().map(|(k, v)| (*k, v.to_string())).collect(),
            handle,
        });
        clone
    }

    /// Point-in-time copy of every family and series, in registration
    /// order (stable output for exposition and tests).
    pub fn snapshot(&self) -> RegistrySnapshot {
        let families = self.families.lock().expect("metric registry poisoned");
        RegistrySnapshot {
            families: families
                .iter()
                .map(|f| FamilySnapshot {
                    name: f.name,
                    help: f.help,
                    kind: f.kind,
                    scale: f.scale,
                    series: f
                        .series
                        .iter()
                        .map(|s| SeriesSnapshot {
                            labels: s
                                .labels
                                .iter()
                                .map(|(k, v)| ((*k).to_string(), v.clone()))
                                .collect(),
                            value: match &s.handle {
                                Handle::Counter(c) => SeriesValue::Counter(c.get()),
                                Handle::Gauge(g) => SeriesValue::Gauge(g.get()),
                                Handle::Histogram(h) => SeriesValue::Histogram(h.snapshot()),
                            },
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

/// Snapshot of a whole registry.
#[derive(Debug, Clone)]
pub struct RegistrySnapshot {
    pub families: Vec<FamilySnapshot>,
}

/// Snapshot of one named family.
#[derive(Debug, Clone)]
pub struct FamilySnapshot {
    pub name: &'static str,
    pub help: &'static str,
    pub kind: Kind,
    pub scale: f64,
    pub series: Vec<SeriesSnapshot>,
}

/// Snapshot of one labeled series.
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    pub labels: Vec<(String, String)>,
    pub value: SeriesValue,
}

#[derive(Debug, Clone)]
pub enum SeriesValue {
    Counter(u64),
    Gauge(f64),
    Histogram(HistSnapshot),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_same_handle() {
        let r = MetricRegistry::new();
        let a = r.counter("x_total", "x");
        let b = r.counter("x_total", "x");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn labels_distinguish_series() {
        let r = MetricRegistry::new();
        let a = r.counter_with("y_total", "y", &[("problem", "error")]);
        let b = r.counter_with("y_total", "y", &[("problem", "answer_size")]);
        assert!(!Arc::ptr_eq(&a, &b));
        a.add(3);
        b.add(4);
        let snap = r.snapshot();
        let fam = &snap.families[0];
        assert_eq!(fam.name, "y_total");
        assert_eq!(fam.series.len(), 2);
    }

    #[test]
    #[should_panic(expected = "different kinds")]
    fn kind_conflict_panics() {
        let r = MetricRegistry::new();
        let _ = r.counter("z", "z");
        let _ = r.gauge("z", "z");
    }

    #[test]
    fn snapshot_reflects_values() {
        let r = MetricRegistry::new();
        r.counter("c_total", "c").add(7);
        r.gauge("g", "g").set(2.5);
        r.histogram("h_seconds", "h", 1e-9).record(1000);
        let snap = r.snapshot();
        assert_eq!(snap.families.len(), 3);
        match &snap.families[0].series[0].value {
            SeriesValue::Counter(v) => assert_eq!(*v, 7),
            other => panic!("expected counter, got {other:?}"),
        }
        match &snap.families[2].series[0].value {
            SeriesValue::Histogram(h) => assert_eq!(h.count(), 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}
