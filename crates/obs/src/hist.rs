//! Lock-free log-linear histogram (HdrHistogram-style bucketing).
//!
//! Values are `u64` in an arbitrary unit (the serving layer records
//! nanoseconds); the unit scale is applied at render time, never at
//! record time. The bucket layout is:
//!
//! * a **linear region** for values `0..32`, one bucket per value
//!   (small values are exact);
//! * above that, each power-of-two octave `[2^m, 2^(m+1))` splits into
//!   32 equal sub-buckets, so every bucket's width is at most `1/32`
//!   (~3.1%) of its lower bound — the quantile error bound the proptest
//!   suite pins;
//! * octaves cap at `m = 50` (`2^51` ns ≈ 26 days); larger values clamp
//!   into the last bucket.
//!
//! Recording is one `fetch_add` on the value's bucket plus one on the
//! running sum and a `fetch_max` on the max — no locks, no CAS loops, so
//! concurrent writers never wait and no increment is ever lost (the
//! hammer test pins this). The total count is *derived* as the sum of
//! bucket counts rather than kept in a separate atomic: a snapshot can
//! momentarily disagree with the sum/max fields during a concurrent
//! record, but the count can never disagree with the buckets it was
//! computed from — the exact-count invariant.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: 2^5 = 32 sub-buckets per octave.
pub const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;
/// Highest octave kept distinct; values at or above `2^(MAX_MSB+1)`
/// clamp into the final bucket.
const MAX_MSB: u32 = 50;
/// Total bucket count: the linear region plus 46 sub-divided octaves.
pub const N_BUCKETS: usize = (SUB as usize) * (MAX_MSB - SUB_BITS + 2) as usize;

/// Bucket index for a value.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    if msb > MAX_MSB {
        return N_BUCKETS - 1;
    }
    let sub = ((v >> (msb - SUB_BITS)) & (SUB - 1)) as usize;
    (SUB as usize) * (msb - SUB_BITS + 1) as usize + sub
}

/// Half-open value range `[lo, hi)` covered by bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < SUB as usize {
        return (i as u64, i as u64 + 1);
    }
    let octave = (i / SUB as usize) as u32;
    let msb = octave + SUB_BITS - 1;
    let sub = (i % SUB as usize) as u64;
    let width = 1u64 << (msb - SUB_BITS);
    let lo = (1u64 << msb) + sub * width;
    (lo, lo + width)
}

/// A concurrent histogram. See the module docs for the bucket layout.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count())
            .field("sum", &s.sum)
            .field("max", &s.max)
            .finish()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation (unit-agnostic; callers pick a unit and
    /// declare its scale when registering).
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Immutable snapshot of a [`Histogram`]; mergeable across instances
/// (shard aggregation just adds bucket vectors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts, dense over [`N_BUCKETS`].
    pub counts: Vec<u64>,
    /// Sum of all recorded values (raw unit).
    pub sum: u64,
    /// Largest recorded value (raw unit).
    pub max: u64,
}

impl HistSnapshot {
    /// Total observations — always exactly the sum of the buckets.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fold another snapshot in (element-wise bucket addition).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Mean of the recorded values (raw unit); `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum as f64 / n as f64)
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`) with the same
    /// nearest-rank convention as `sqlan_metrics::percentile`: rank
    /// `round(q * (count - 1))` over the sorted samples, except the
    /// sample is only known to bucket precision, so the estimate is the
    /// midpoint of the bucket holding that rank. The true sample lies in
    /// the same bucket, bounding the error by one bucket width (≤ 1/32
    /// relative). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * (n - 1) as f64).round() as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum > rank {
                let (lo, hi) = bucket_bounds(i);
                return Some(lo + (hi - lo) / 2);
            }
        }
        // Unreachable: cum reaches n > rank by the end.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_bounds_agree() {
        for v in (0..4096u64).chain([1 << 20, (1 << 51) - 1, u64::MAX]) {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            if v < (1 << 51) {
                assert!(lo <= v && v < hi, "v={v} i={i} lo={lo} hi={hi}");
            } else {
                assert_eq!(i, N_BUCKETS - 1);
            }
        }
    }

    #[test]
    fn bucket_relative_width_bounded() {
        for i in 32..N_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!((hi - lo) as f64 / lo as f64 <= 1.0 / 32.0 + 1e-12);
        }
    }

    #[test]
    fn linear_region_is_exact() {
        let h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 32);
        assert_eq!(s.quantile(0.0), Some(0));
        assert_eq!(s.quantile(1.0), Some(31));
        assert_eq!(s.max, 31);
        assert_eq!(s.sum, (0..32).sum::<u64>());
    }

    #[test]
    fn merge_adds_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 100, 10_000] {
            a.record(v);
            b.record(v * 3);
        }
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count(), 6);
        assert_eq!(s.sum, 1 + 100 + 10_000 + 3 + 300 + 30_000);
        assert_eq!(s.max, 30_000);
    }

    #[test]
    fn empty_quantile_is_none() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.count(), 0);
    }
}
