//! Request-scoped tracing: spans, the completed-trace ring, and the
//! thread-local "current trace" bridge.
//!
//! A [`TraceCtx`] is minted at the HTTP edge (one per request when
//! observability is on), carried by `Arc` through the scoring queue, and
//! *installed* thread-locally around engine/featurizer calls so layers
//! that know nothing about serving ([`timed`] call sites in the engine
//! and the featurizers) can attach spans to whichever requests are
//! currently being served on the thread. A scoring worker batches
//! statements from several requests at once, so the install stack holds
//! a set of traces and every recorded span fans out to all of them.
//!
//! Span storage is a fixed array of `OnceLock` slots claimed by a
//! `fetch_add` — recording never locks and never blocks; past
//! [`MAX_SPANS`] further spans drop. Completed traces publish into a
//! bounded [`TraceRing`] via `try_lock`: a scrape holding a slot makes a
//! concurrent publisher drop its trace rather than wait, keeping the
//! request path wait-free at the cost of best-effort retention.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Environment variable: log requests slower than this many milliseconds
/// to stderr. Unset or unparsable disables the slow log.
pub const SLOW_MS_ENV: &str = "SQLAN_SLOW_MS";

/// Spans retained per trace; later spans drop silently.
pub const MAX_SPANS: usize = 32;

/// One completed stage inside a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Stage name (`parse`, `plan_cache`, `execute`, `featurize`, ...).
    pub name: &'static str,
    /// Offset from the trace origin, nanoseconds.
    pub start_ns: u64,
    /// Span duration, nanoseconds.
    pub dur_ns: u64,
    /// Work-item count the span covered (statements, operators, ...).
    pub n: u64,
}

/// A live, in-flight request trace.
#[derive(Debug)]
pub struct TraceCtx {
    pub id: u64,
    pub route: &'static str,
    origin: Instant,
    slots: [OnceLock<SpanRec>; MAX_SPANS],
    len: AtomicUsize,
}

impl TraceCtx {
    /// Mint a trace, or `None` when observability is off — callers
    /// thread the `Option` through and every span becomes free.
    pub fn start(route: &'static str) -> Option<Arc<TraceCtx>> {
        if !crate::enabled() {
            return None;
        }
        static NEXT_ID: AtomicU64 = AtomicU64::new(1);
        Some(Arc::new(TraceCtx {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            route,
            origin: Instant::now(),
            slots: std::array::from_fn(|_| OnceLock::new()),
            len: AtomicUsize::new(0),
        }))
    }

    /// The instant the trace was minted (span offsets are relative to it).
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Attach a completed span. Lock-free; drops past [`MAX_SPANS`].
    pub fn record(&self, name: &'static str, start: Instant, dur: Duration, n: u64) {
        let i = self.len.fetch_add(1, Ordering::Relaxed);
        if i >= MAX_SPANS {
            return;
        }
        let _ = self.slots[i].set(SpanRec {
            name,
            start_ns: start.saturating_duration_since(self.origin).as_nanos() as u64,
            dur_ns: dur.as_nanos() as u64,
            n,
        });
    }

    /// Seal the trace with the response status. All span recording
    /// happens-before the response is composed, so the snapshot is
    /// complete by construction.
    pub fn finish(&self, status: u16) -> CompletedTrace {
        let n = self.len.load(Ordering::Acquire).min(MAX_SPANS);
        CompletedTrace {
            id: self.id,
            route: self.route,
            status,
            total_ns: self.origin.elapsed().as_nanos() as u64,
            spans: (0..n)
                .filter_map(|i| self.slots[i].get().cloned())
                .collect(),
        }
    }
}

/// An immutable finished trace, as served by `/debug/trace`.
#[derive(Debug, Clone)]
pub struct CompletedTrace {
    pub id: u64,
    pub route: &'static str,
    pub status: u16,
    pub total_ns: u64,
    pub spans: Vec<SpanRec>,
}

/// Bounded ring of recently completed traces.
pub struct TraceRing {
    slots: Vec<Mutex<Option<Arc<CompletedTrace>>>>,
    head: AtomicUsize,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.slots.len())
            .field("published", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl TraceRing {
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            head: AtomicUsize::new(0),
        }
    }

    /// Publish a completed trace. Never blocks: a slot contended by a
    /// concurrent reader makes this publish drop instead of wait.
    pub fn publish(&self, trace: Arc<CompletedTrace>) {
        let i = self.head.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        if let Ok(mut slot) = self.slots[i].try_lock() {
            *slot = Some(trace);
        }
    }

    /// Up to `n` most recent traces, newest first.
    pub fn recent(&self, n: usize) -> Vec<Arc<CompletedTrace>> {
        let head = self.head.load(Ordering::Relaxed);
        let cap = self.slots.len();
        let mut out = Vec::with_capacity(n.min(cap));
        for back in 0..cap {
            if out.len() >= n {
                break;
            }
            let i = (head + cap - 1 - back) % cap;
            if let Ok(slot) = self.slots[i].try_lock() {
                if let Some(t) = slot.as_ref() {
                    out.push(Arc::clone(t));
                }
            }
        }
        out
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<Arc<TraceCtx>>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard restoring the thread's install stack on drop.
#[derive(Debug)]
pub struct InstallGuard {
    restore: usize,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.borrow_mut().truncate(self.restore));
    }
}

/// Install traces as the thread's current set until the guard drops.
/// Nested installs stack (the engine under a worker that already
/// installed sees the union).
pub fn install(traces: &[Arc<TraceCtx>]) -> InstallGuard {
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        let restore = cur.len();
        cur.extend(traces.iter().map(Arc::clone));
        InstallGuard { restore }
    })
}

/// [`install`] for the common single-trace case.
pub fn install_one(trace: &Arc<TraceCtx>) -> InstallGuard {
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        let restore = cur.len();
        cur.push(Arc::clone(trace));
        InstallGuard { restore }
    })
}

/// Run `f`, attaching a `name` span covering `n` work items to every
/// installed trace. When observability is off or nothing is installed,
/// this is a branch and a thread-local read — no clock is touched.
pub fn timed<T>(name: &'static str, n: u64, f: impl FnOnce() -> T) -> T {
    if !crate::enabled() || CURRENT.with(|c| c.borrow().is_empty()) {
        return f();
    }
    let start = Instant::now();
    let out = f();
    let dur = start.elapsed();
    CURRENT.with(|c| {
        for t in c.borrow().iter() {
            t.record(name, start, dur, n);
        }
    });
    out
}

const SLOW_UNRESOLVED: u64 = u64::MAX;
const SLOW_DISABLED: u64 = u64::MAX - 1;
static SLOW_NS: AtomicU64 = AtomicU64::new(SLOW_UNRESOLVED);

/// Slow-request threshold in nanoseconds from `SQLAN_SLOW_MS`, `None`
/// when the slow log is disabled. Resolved once, overridable with
/// [`set_slow_ms`].
pub fn slow_threshold_ns() -> Option<u64> {
    match SLOW_NS.load(Ordering::Relaxed) {
        SLOW_UNRESOLVED => {
            let ns = std::env::var(SLOW_MS_ENV)
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .map(|ms| ms.saturating_mul(1_000_000))
                .unwrap_or(SLOW_DISABLED);
            SLOW_NS.store(ns, Ordering::Relaxed);
            (ns != SLOW_DISABLED).then_some(ns)
        }
        SLOW_DISABLED => None,
        ns => Some(ns),
    }
}

/// Programmatic override of the slow-log threshold (tests, benches).
pub fn set_slow_ms(ms: Option<u64>) {
    SLOW_NS.store(
        ms.map(|m| m.saturating_mul(1_000_000))
            .unwrap_or(SLOW_DISABLED),
        Ordering::Relaxed,
    );
}

/// Format a completed trace for the slow log (single stderr line).
pub fn slow_log_line(trace: &CompletedTrace) -> String {
    use std::fmt::Write as _;
    let mut line = format!(
        "[sqlan-obs] slow request trace_id={} route={} status={} total_ms={:.3}",
        trace.id,
        trace.route,
        trace.status,
        trace.total_ns as f64 / 1e6
    );
    for s in &trace.spans {
        let _ = write!(
            line,
            " {}={:.3}ms(n={})",
            s.name,
            s.dur_ns as f64 / 1e6,
            s.n
        );
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `set_enabled` is process-global; tests toggling it must not
    /// interleave with tests expecting it on.
    fn flag_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn spans_record_and_finish() {
        let _l = flag_lock();
        crate::set_enabled(true);
        let t = TraceCtx::start("/predict").expect("obs forced on");
        let s = Instant::now();
        t.record("parse", s, Duration::from_micros(5), 3);
        t.record("execute", s, Duration::from_micros(10), 3);
        let done = t.finish(200);
        assert_eq!(done.status, 200);
        assert_eq!(done.spans.len(), 2);
        assert_eq!(done.spans[0].name, "parse");
        assert_eq!(done.spans[1].dur_ns, 10_000);
        assert_eq!(done.spans[1].n, 3);
    }

    #[test]
    fn disabled_obs_mints_no_trace() {
        let _l = flag_lock();
        crate::set_enabled(false);
        assert!(TraceCtx::start("/predict").is_none());
        crate::set_enabled(true);
    }

    #[test]
    fn span_overflow_drops_not_panics() {
        let _l = flag_lock();
        crate::set_enabled(true);
        let t = TraceCtx::start("/predict").expect("obs forced on");
        let s = Instant::now();
        for _ in 0..(MAX_SPANS + 10) {
            t.record("x", s, Duration::ZERO, 1);
        }
        assert_eq!(t.finish(200).spans.len(), MAX_SPANS);
    }

    #[test]
    fn timed_fans_out_to_all_installed() {
        let _l = flag_lock();
        crate::set_enabled(true);
        let a = TraceCtx::start("/predict").expect("obs on");
        let b = TraceCtx::start("/predict").expect("obs on");
        {
            let _g = install(&[Arc::clone(&a), Arc::clone(&b)]);
            let out = timed("featurize", 7, || 42);
            assert_eq!(out, 42);
        }
        for t in [&a, &b] {
            let done = t.finish(200);
            assert_eq!(done.spans.len(), 1);
            assert_eq!(done.spans[0].name, "featurize");
            assert_eq!(done.spans[0].n, 7);
        }
        // Guard dropped: nothing installed, timed records nowhere.
        timed("featurize", 1, || ());
        assert_eq!(a.finish(200).spans.len(), 1);
    }

    #[test]
    fn install_stacks_and_restores() {
        let _l = flag_lock();
        crate::set_enabled(true);
        let a = TraceCtx::start("/a").expect("obs on");
        let g1 = install_one(&a);
        let b = TraceCtx::start("/b").expect("obs on");
        {
            let _g2 = install_one(&b);
            timed("inner", 1, || ());
        }
        timed("outer", 1, || ());
        drop(g1);
        assert_eq!(a.finish(200).spans.len(), 2);
        let done_b = b.finish(200);
        assert_eq!(done_b.spans.len(), 1);
        assert_eq!(done_b.spans[0].name, "inner");
    }

    #[test]
    fn ring_keeps_newest_first() {
        let _l = flag_lock();
        crate::set_enabled(true);
        let ring = TraceRing::new(4);
        for status in [201u16, 202, 203, 204, 205, 206] {
            let t = TraceCtx::start("/predict").expect("obs on");
            ring.publish(Arc::new(t.finish(status)));
        }
        let recent = ring.recent(10);
        assert_eq!(recent.len(), 4);
        let statuses: Vec<u16> = recent.iter().map(|t| t.status).collect();
        assert_eq!(statuses, vec![206, 205, 204, 203]);
        assert_eq!(ring.recent(2).len(), 2);
    }

    #[test]
    fn slow_log_line_formats() {
        let _l = flag_lock();
        crate::set_enabled(true);
        let t = TraceCtx::start("/predict").expect("obs on");
        t.record("parse", Instant::now(), Duration::from_millis(2), 1);
        let line = slow_log_line(&t.finish(200));
        assert!(line.contains("route=/predict"));
        assert!(line.contains("parse="));
    }

    #[test]
    fn slow_threshold_override() {
        set_slow_ms(Some(25));
        assert_eq!(slow_threshold_ns(), Some(25_000_000));
        set_slow_ms(None);
        assert_eq!(slow_threshold_ns(), None);
    }
}
