//! Scalar metric primitives: monotonic counters and float gauges.
//!
//! Both are single atomics — one `fetch_add`/`store` per touch, no
//! locks, safe to share across every server thread.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrite the value. Only for scrape-time synchronization from an
    /// external source that is itself monotonic (e.g. the plan cache's
    /// own hit/miss atomics); never for live increments.
    pub fn store(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

/// Last-write-wins float value (queue depths, uptimes, rates).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.store(10);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn gauge_round_trips_floats() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(3.25);
        assert_eq!(g.get(), 3.25);
        g.set(-1.5e-9);
        assert_eq!(g.get(), -1.5e-9);
    }
}
