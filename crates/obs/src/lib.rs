//! `sqlan-obs` — the workspace's observability core.
//!
//! Dependency-free by design: every layer of the stack (engine,
//! featurizers, scoring queue, HTTP edge) instruments through this crate,
//! so it sits below all of them and pulls in nothing.
//!
//! Three pieces:
//!
//! * **Metrics** ([`registry`], [`metric`], [`hist`]) — named families of
//!   lock-free counters, gauges and log-linear histograms with mergeable
//!   snapshots, rendered to Prometheus text by [`prom::render`].
//! * **Tracing** ([`trace`]) — per-request span collection carried
//!   through the scoring queue and bridged into the engine via a
//!   thread-local install stack; completed traces land in a bounded
//!   ring and slow requests can log to stderr (`SQLAN_SLOW_MS`).
//! * **The kill switch** ([`enabled`], `SQLAN_OBS`) — tracing is a *pure
//!   observer*: predictions, golden labels and trained parameters are
//!   byte-identical with observability on or off, and `off` reduces
//!   every span call site to a relaxed atomic load.
//!
//! Registries come in two flavors: per-instance ([`MetricRegistry::new`])
//! for serving metrics, where tests boot many servers per process and
//! counters must not bleed between them, and one process-wide [`global`]
//! registry for engine/featurizer instrumentation, where a single shared
//! namespace is the point.

pub mod hist;
pub mod metric;
pub mod prom;
pub mod registry;
pub mod trace;

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

pub use hist::{HistSnapshot, Histogram};
pub use metric::{Counter, Gauge};
pub use registry::{Kind, MetricRegistry, RegistrySnapshot, SeriesValue};
pub use trace::{CompletedTrace, SpanRec, TraceCtx, TraceRing};

/// Environment variable toggling observability: `off`/`0`/`false`
/// disable tracing and engine-side instrumentation; anything else (or
/// unset) leaves it on.
pub const OBS_ENV: &str = "SQLAN_OBS";

const STATE_UNRESOLVED: u8 = 0;
const STATE_ON: u8 = 1;
const STATE_OFF: u8 = 2;
static ENABLED: AtomicU8 = AtomicU8::new(STATE_UNRESOLVED);

/// Whether observability is on. Resolved from `SQLAN_OBS` on first call
/// and cached; one relaxed load afterwards, cheap enough for every span
/// site to check.
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => {
            let on = match std::env::var(OBS_ENV) {
                Ok(v) => !matches!(
                    v.trim().to_ascii_lowercase().as_str(),
                    "off" | "0" | "false"
                ),
                Err(_) => true,
            };
            ENABLED.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Programmatic override of [`enabled`] — used by tests and the
/// `bench_serve` obs-on/obs-off A/B, which must flip the flag inside one
/// process.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// The process-wide registry for engine and featurizer metrics
/// (plan-cache hit/miss/bypass, EXPLAIN ANALYZE operator wall time,
/// featurize latency). Serving metrics live in per-server registries
/// instead; `/metrics` renders both.
pub fn global() -> &'static MetricRegistry {
    static GLOBAL: OnceLock<MetricRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared() {
        global()
            .counter("sqlan_obs_selftest_total", "self test")
            .inc();
        global()
            .counter("sqlan_obs_selftest_total", "self test")
            .inc();
        assert_eq!(
            global()
                .counter("sqlan_obs_selftest_total", "self test")
                .get(),
            2
        );
    }
}
