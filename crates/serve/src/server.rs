//! The HTTP front end, in two interchangeable flavors behind
//! `SQLAN_HTTP`:
//!
//! * **`epoll`** (default on Linux): the readiness-driven event loop
//!   from [`sqlan_net`] — one I/O thread holds every connection
//!   (non-blocking accept, per-connection buffers, idle sweep), and
//!   `http_workers` handler threads run the routing below, so tens of
//!   thousands of idle keep-alive connections cost an fd each, not a
//!   thread each.
//! * **`threads`** (fallback, and the default off-Linux): the classic
//!   thread-per-connection accept loop on `std::net` — `http_workers`
//!   bounds concurrent connections.
//!
//! Both flavors feed the same sans-io parser and the same routing, and
//! render responses through the same byte renderer, so served bytes are
//! identical across modes (pinned by `tests/e2e_http.rs`).
//!
//! | route              | body                                  | answer |
//! |--------------------|---------------------------------------|--------|
//! | `POST /predict`    | `{"problem": "...", "statements": []}`| predictions + generation |
//! | `GET /healthz`     | —                                     | status, generation, uptime, tier, models |
//! | `GET /metrics`     | — (`?format=prom` for Prometheus text)| [`MetricsSnapshot`] |
//! | `GET /debug/trace` | — (`?n=` caps the count)              | recent per-stage request traces |
//! | `POST /reload`     | `{"dir": "..."}`                      | new generation (hot swap) |
//!
//! Saturation sheds with 503 (`{"error": ...}`), malformed input gets
//! 400, oversized requests 413/431.
//!
//! When observability is on (`SQLAN_OBS`, default on) every request
//! mints a [`TraceCtx`] whose id and per-stage spans (`parse`,
//! `cache_probe`, `queue_wait`, `batch_score`, `featurize`, ...) land in
//! the trace ring behind `GET /debug/trace`; requests slower than
//! `SQLAN_SLOW_MS` additionally log one stderr line.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use sqlan_core::Problem;
use sqlan_net::Answer;
use sqlan_obs::TraceCtx;

use crate::http::{
    read_request, write_answer, write_json_response, HttpParser, ParseError, Request,
};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::registry::ModelRegistry;
use crate::scoring::{Prediction, ScoreError, ScoreOptions, ScoringConfig, ScoringEngine};

/// Which front end serves the sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpMode {
    /// Readiness-driven epoll event loop (Linux only).
    Epoll,
    /// Blocking thread-per-connection accept loop.
    Threads,
}

impl HttpMode {
    /// Resolve the mode from `SQLAN_HTTP` (`epoll` | `threads`). Epoll
    /// is the default on Linux; everywhere else the threaded fallback is
    /// forced regardless of the variable.
    pub fn from_env() -> HttpMode {
        if !cfg!(target_os = "linux") {
            return HttpMode::Threads;
        }
        match std::env::var("SQLAN_HTTP").as_deref() {
            Ok("threads") => HttpMode::Threads,
            _ => HttpMode::Epoll,
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Request-handling threads. In `threads` mode each owns one
    /// connection at a time (bounding concurrent connections); in
    /// `epoll` mode they run routing for the single I/O loop (bounding
    /// concurrent in-flight requests).
    pub http_workers: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Idle keep-alive connections are dropped after this long.
    pub idle_timeout: Duration,
    /// Front-end flavor; defaults from `SQLAN_HTTP`.
    pub http_mode: HttpMode,
    /// Epoll mode only: accept stops above this many open connections.
    pub max_connections: usize,
    pub scoring: ScoringConfig,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            http_workers: 4,
            max_body_bytes: 1 << 20,
            idle_timeout: Duration::from_secs(5),
            http_mode: HttpMode::from_env(),
            max_connections: 120_000,
            scoring: ScoringConfig::default(),
        }
    }
}

/// `POST /predict` request body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictRequest {
    /// Problem wire name (`Problem::name`), e.g. `"error_classification"`.
    pub problem: String,
    pub statements: Vec<String>,
}

/// `POST /predict` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictResponse {
    /// Bundle generation the request was admitted under — the one that
    /// scored it: jobs pin their admitted bundle even across a
    /// concurrent hot swap. For a degraded response served from the
    /// previous pinned generation, this is *that* generation.
    pub generation: u64,
    /// `true` when the predictions came from the degradation ladder
    /// (previous generation or length heuristic), not the live model.
    pub degraded: bool,
    pub predictions: Vec<Prediction>,
}

/// `POST /reload` request body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReloadRequest {
    pub dir: String,
}

/// `POST /reload` / error envelope bodies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReloadResponse {
    pub generation: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorResponse {
    pub error: String,
}

/// `GET /healthz` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealthResponse {
    pub status: String,
    pub generation: u64,
    pub bundle: String,
    /// Wire names of the problems the live bundle answers.
    pub problems: Vec<String>,
    /// Model kind per problem, same order.
    pub models: Vec<String>,
    /// Seconds since this server instance started — lets a probe detect
    /// a silently restarted (and therefore possibly stale-bundle) server.
    pub uptime_s: f64,
    /// Active HTTP front end: `"epoll"` or `"threads"`.
    pub http_tier: String,
}

/// One span inside a [`TraceEntry`], as served by `GET /debug/trace`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceSpan {
    pub name: String,
    /// Offset from the trace origin, nanoseconds.
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Work items the span covered (statements, operators, ...).
    pub n: u64,
}

/// One completed request trace, as served by `GET /debug/trace`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceEntry {
    pub trace_id: u64,
    pub route: String,
    pub status: u16,
    pub total_ns: u64,
    pub spans: Vec<TraceSpan>,
}

/// `GET /debug/trace` response body: recent traces, newest first.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceDump {
    /// Whether observability is currently enabled (`SQLAN_OBS`).
    pub enabled: bool,
    pub traces: Vec<TraceEntry>,
}

#[derive(Debug)]
enum Backend {
    Threads {
        stop: Arc<AtomicBool>,
        addr: SocketAddr,
        threads: Vec<std::thread::JoinHandle<()>>,
    },
    #[cfg(target_os = "linux")]
    Epoll(sqlan_net::EventLoopHandle),
}

/// A running server. Dropping the handle does NOT stop it; call
/// [`ServerHandle::shutdown`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    engine: Arc<ScoringEngine>,
    metrics: Arc<ServeMetrics>,
    backend: Backend,
}

impl ServerHandle {
    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn engine(&self) -> &Arc<ScoringEngine> {
        &self.engine
    }

    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    /// The front-end flavor actually serving.
    pub fn http_mode(&self) -> HttpMode {
        match self.backend {
            Backend::Threads { .. } => HttpMode::Threads,
            #[cfg(target_os = "linux")]
            Backend::Epoll(_) => HttpMode::Epoll,
        }
    }

    /// Open connections (epoll mode; the threaded front end does not
    /// track this — it reports 0).
    pub fn connections(&self) -> u64 {
        match &self.backend {
            Backend::Threads { .. } => 0,
            #[cfg(target_os = "linux")]
            Backend::Epoll(h) => h.connections(),
        }
    }

    /// Stop accepting, drain in-flight work, join all threads.
    pub fn shutdown(self) {
        match self.backend {
            Backend::Threads {
                stop,
                addr,
                mut threads,
            } => {
                stop.store(true, Ordering::Release);
                // One wake-up connection per acceptor thread unblocks
                // `accept`.
                for _ in 0..threads.len() {
                    let _ = TcpStream::connect(addr);
                }
                for t in threads.drain(..) {
                    let _ = t.join();
                }
            }
            #[cfg(target_os = "linux")]
            Backend::Epoll(h) => h.shutdown(),
        }
        self.engine.shutdown();
    }
}

/// Start a server: bind, spawn scoring workers and the chosen HTTP front
/// end, return immediately.
pub fn start(registry: Arc<ModelRegistry>, cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let engine = ScoringEngine::start(Arc::clone(&registry), cfg.scoring);
    let metrics = Arc::new(ServeMetrics::default());

    #[cfg(target_os = "linux")]
    if cfg.http_mode == HttpMode::Epoll {
        let service = Arc::new(EpollService {
            engine: Arc::clone(&engine),
            metrics: Arc::clone(&metrics),
        });
        let handle = sqlan_net::serve(
            listener,
            service,
            sqlan_net::NetConfig {
                handler_threads: cfg.http_workers.max(1),
                max_body_bytes: cfg.max_body_bytes,
                idle_timeout: cfg.idle_timeout,
                max_connections: cfg.max_connections,
            },
        )?;
        return Ok(ServerHandle {
            addr,
            engine,
            metrics,
            backend: Backend::Epoll(handle),
        });
    }

    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::with_capacity(cfg.http_workers.max(1));
    for i in 0..cfg.http_workers.max(1) {
        let listener = listener.try_clone()?;
        let engine = Arc::clone(&engine);
        let metrics = Arc::clone(&metrics);
        let stop = Arc::clone(&stop);
        let cfg = cfg.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("sqlan-http-{i}"))
                .spawn(move || loop {
                    let (stream, _) = match listener.accept() {
                        Ok(conn) => conn,
                        Err(_) => {
                            // Persistent accept errors (e.g. EMFILE under
                            // fd exhaustion) must not busy-spin the
                            // worker; back off briefly and re-check stop.
                            if stop.load(Ordering::Acquire) {
                                return;
                            }
                            std::thread::sleep(Duration::from_millis(10));
                            continue;
                        }
                    };
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    // Unwind guard: a panic while serving one connection
                    // must drop that connection, not kill this acceptor
                    // thread and silently shrink the front end.
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        handle_connection(stream, &engine, &metrics, &stop, &cfg)
                    }));
                })
                .expect("spawn http worker"),
        );
    }
    Ok(ServerHandle {
        addr,
        engine,
        metrics,
        backend: Backend::Threads {
            stop,
            addr,
            threads,
        },
    })
}

/// The epoll front end's application callback: identical routing and
/// counter semantics to the threaded path, via [`respond`].
#[cfg(target_os = "linux")]
#[derive(Debug)]
struct EpollService {
    engine: Arc<ScoringEngine>,
    metrics: Arc<ServeMetrics>,
}

#[cfg(target_os = "linux")]
impl sqlan_net::Service for EpollService {
    fn call(&self, req: &Request) -> Answer {
        respond(req, &self.engine, &self.metrics, "epoll")
    }

    fn on_parse_error(&self, _err: &sqlan_net::HttpError) {
        self.metrics.on_parse_error();
    }
}

fn handle_connection(
    stream: TcpStream,
    engine: &ScoringEngine,
    metrics: &ServeMetrics,
    stop: &AtomicBool,
    cfg: &ServeConfig,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(cfg.idle_timeout))?;
    // Write-path bound: a client that stops reading while we hold a
    // large response must not pin this handler thread past the idle
    // timeout (epoll mode bounds the same case via its idle sweep).
    stream.set_write_timeout(Some(cfg.idle_timeout))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    // One parser for the connection's lifetime: pipelined bytes carry
    // over between requests, and the head bound applies during
    // buffering.
    let mut parser = HttpParser::new(cfg.max_body_bytes);
    loop {
        let req = match read_request(&mut reader, &mut parser) {
            Ok(req) => req,
            // Clean close, idle/stalled timeout, transport error: done.
            Err(ParseError::Eof) | Err(ParseError::Timeout) | Err(ParseError::Io(_)) => {
                return Ok(())
            }
            // Protocol violations answer with their status (400/413/431)
            // — including non-UTF-8 heads, which used to die as Io.
            Err(ParseError::Http(e)) => {
                metrics.on_parse_error();
                let body = error_body(&e.describe());
                write_json_response(&mut writer, e.status(), &body, false)?;
                // Lingering close: drain the bytes the client already
                // sent (e.g. the body after a rejected head) so close
                // sends FIN, not an RST that could destroy the response
                // in the client's receive queue.
                let _ = writer.set_read_timeout(Some(Duration::from_millis(50)));
                let mut scrap = [0u8; 8 * 1024];
                for _ in 0..64 {
                    match std::io::Read::read(&mut reader, &mut scrap) {
                        Ok(n) if n > 0 => continue,
                        _ => break,
                    }
                }
                return Ok(());
            }
        };
        let keep_alive = req.keep_alive && !stop.load(Ordering::Acquire);
        let answer = respond(&req, engine, metrics, "threads");
        write_answer(&mut writer, &answer, keep_alive)?;
        if !keep_alive {
            return Ok(());
        }
    }
}

fn error_body(message: &str) -> String {
    serde_json::to_string(&ErrorResponse {
        error: message.to_string(),
    })
    .expect("error body serializes")
}

/// Split a request target into path and query (`""` when absent).
fn split_target(target: &str) -> (&str, &str) {
    target.split_once('?').unwrap_or((target, ""))
}

/// First value of `key` in an `a=b&c=d` query string.
fn query_param<'q>(query: &'q str, key: &str) -> Option<&'q str> {
    query.split('&').find_map(|kv| {
        let (k, v) = kv.split_once('=')?;
        (k == key).then_some(v)
    })
}

/// Static route label for trace grouping.
fn route_label(method: &str, path: &str) -> &'static str {
    match (method, path) {
        ("POST", "/predict") => "/predict",
        ("GET", "/healthz") => "/healthz",
        ("GET", "/metrics") => "/metrics",
        ("GET", "/debug/trace") => "/debug/trace",
        ("POST", "/reload") => "/reload",
        _ => "other",
    }
}

/// Route one request and maintain the request/error counters — shared
/// verbatim by both front ends. Counters move *after* routing so every
/// counted request has already landed in exactly one response class.
fn respond(
    req: &Request,
    engine: &ScoringEngine,
    metrics: &ServeMetrics,
    tier: &'static str,
) -> Answer {
    let (path, query) = split_target(&req.path);
    let trace = TraceCtx::start(route_label(req.method.as_str(), path));
    let answer = {
        // Install the trace for this thread so `obs::timed` call sites
        // anywhere below (parsing, cache probe, featurizers) attach
        // spans without threading the context explicitly.
        let _installed = trace.as_ref().map(sqlan_obs::trace::install_one);
        route(req, path, query, engine, metrics, tier, trace.as_ref())
    };
    if let Some(t) = trace {
        let done = t.finish(answer.status);
        if let Some(limit) = sqlan_obs::trace::slow_threshold_ns() {
            if done.total_ns >= limit {
                eprintln!("{}", sqlan_obs::trace::slow_log_line(&done));
            }
        }
        metrics.traces().publish(Arc::new(done));
    }
    metrics.on_response(answer.status);
    answer
}

#[allow(clippy::too_many_arguments)]
fn route(
    req: &Request,
    path: &str,
    query: &str,
    engine: &ScoringEngine,
    metrics: &ServeMetrics,
    tier: &'static str,
    trace: Option<&Arc<TraceCtx>>,
) -> Answer {
    match (req.method.as_str(), path) {
        ("POST", "/predict") => predict(req, engine, metrics, trace),
        ("GET", "/healthz") => healthz(engine, metrics, tier),
        ("GET", "/metrics") => metrics_route(engine, metrics, query),
        ("GET", "/debug/trace") => trace_route(metrics, query),
        ("POST", "/reload") => reload(req, engine),
        ("GET", _) | ("POST", _) => Answer::json(404, error_body("no such route")),
        _ => Answer::json(405, error_body("method not allowed")),
    }
}

fn predict(
    req: &Request,
    engine: &ScoringEngine,
    metrics: &ServeMetrics,
    trace: Option<&Arc<TraceCtx>>,
) -> Answer {
    let parsed = sqlan_obs::trace::timed("parse", 1, || {
        let text = std::str::from_utf8(&req.body).map_err(|_| error_body("body is not UTF-8"))?;
        serde_json::from_str::<PredictRequest>(text)
            .map_err(|e| error_body(&format!("bad predict request: {e}")))
    });
    let request = match parsed {
        Ok(r) => r,
        Err(body) => return Answer::json(400, body),
    };
    let Some(problem) = Problem::from_name(&request.problem) else {
        return Answer::json(
            400,
            error_body(&format!("unknown problem `{}`", request.problem)),
        );
    };
    let start = Instant::now();
    // `x-sqlan-deadline-ms` anchors at request receipt; the engine sheds
    // expired work (admission and queue) with 504 before a model forward.
    let deadline = req.deadline_ms.map(|ms| start + Duration::from_millis(ms));
    match engine.score_opts(
        problem,
        &request.statements,
        ScoreOptions { trace, deadline },
    ) {
        Ok(scored) => {
            metrics.observe_predict(
                problem,
                request.statements.len() as u64,
                start.elapsed().as_nanos() as u64,
            );
            let body = PredictResponse {
                generation: scored.generation,
                degraded: scored.degraded,
                predictions: scored.predictions,
            };
            Answer::json(
                200,
                serde_json::to_string(&body).expect("response serializes"),
            )
        }
        Err(ScoreError::Saturated) => Answer::json(503, error_body("scoring queue saturated")),
        Err(ScoreError::ShuttingDown) => Answer::json(503, error_body("shutting down")),
        Err(e @ ScoreError::DeadlineExceeded) => Answer::json(504, error_body(&e.to_string())),
        Err(e @ ScoreError::WorkerPanicked) => Answer::json(500, error_body(&e.to_string())),
        Err(e @ ScoreError::UnknownProblem(_)) => Answer::json(400, error_body(&e.to_string())),
    }
}

fn healthz(engine: &ScoringEngine, metrics: &ServeMetrics, tier: &'static str) -> Answer {
    let live = engine.registry().current();
    let body = HealthResponse {
        status: "ok".to_string(),
        generation: live.generation,
        bundle: live.bundle.manifest.name.clone(),
        problems: live
            .bundle
            .manifest
            .entries
            .iter()
            .map(|e| e.problem.name().to_string())
            .collect(),
        models: live
            .bundle
            .manifest
            .entries
            .iter()
            .map(|e| e.kind.name().to_string())
            .collect(),
        uptime_s: metrics.uptime_s(),
        http_tier: tier.to_string(),
    };
    Answer::json(
        200,
        serde_json::to_string(&body).expect("health serializes"),
    )
}

fn metrics_route(engine: &ScoringEngine, metrics: &ServeMetrics, query: &str) -> Answer {
    let (hits, misses) = engine.cache().stats();
    let batches = engine.batch_stats.batches.load(Ordering::Relaxed);
    let batched = engine.batch_stats.statements.load(Ordering::Relaxed);
    let generation = engine.registry().generation();
    metrics.sync_engine_stats(
        hits,
        misses,
        engine.cache().len() as u64,
        batches,
        batched,
        engine.queue_depth() as u64,
        generation,
    );
    let registry = engine.registry();
    metrics.sync_resilience(
        &engine.resilience,
        registry.breaker_opens(),
        registry.breaker_open(),
    );
    if query_param(query, "format") == Some("prom") {
        let serve_snap = metrics.registry().snapshot();
        let global_snap = sqlan_obs::global().snapshot();
        return Answer::text(
            200,
            sqlan_obs::prom::CONTENT_TYPE,
            sqlan_obs::prom::render(&[&serve_snap, &global_snap]),
        );
    }
    let uptime = metrics.uptime_s().max(1e-9);
    let statements = metrics.statements_total();
    let predict_requests = metrics.predict_requests();
    let [responses_2xx, responses_4xx, responses_5xx] = metrics.responses_by_class();
    let snapshot = MetricsSnapshot {
        uptime_s: uptime,
        generation,
        http_requests: metrics.http_requests(),
        predict_requests,
        statements,
        shed: metrics.shed(),
        client_errors: metrics.client_errors(),
        responses_2xx,
        responses_4xx,
        responses_5xx,
        statements_by_problem: metrics.statements_per_problem(),
        statement_qps: statements as f64 / uptime,
        request_qps: predict_requests as f64 / uptime,
        latency: metrics.latency_summary(),
        cache_hits: hits,
        cache_misses: misses,
        cache_hit_rate: if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        },
        cache_entries: engine.cache().len() as u64,
        batches,
        batched_statements: batched,
        mean_batch: if batches == 0 {
            0.0
        } else {
            batched as f64 / batches as f64
        },
        max_batch: engine.batch_stats.max_batch.load(Ordering::Relaxed),
        queue_depth: engine.queue_depth() as u64,
        degraded_responses: engine.resilience.degraded_responses.load(Ordering::Relaxed),
        degraded_statements: engine
            .resilience
            .degraded_statements
            .load(Ordering::Relaxed),
        deadline_expired: engine.resilience.deadline_expired.load(Ordering::Relaxed),
        worker_panics: engine.resilience.worker_panics.load(Ordering::Relaxed),
        worker_respawns: engine.resilience.worker_respawns.load(Ordering::Relaxed),
        breaker_opens: registry.breaker_opens(),
        breaker_open: registry.breaker_open() as u64,
    };
    Answer::json(
        200,
        serde_json::to_string(&snapshot).expect("metrics serialize"),
    )
}

fn trace_route(metrics: &ServeMetrics, query: &str) -> Answer {
    let n = query_param(query, "n")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(16);
    let traces: Vec<TraceEntry> = metrics
        .traces()
        .recent(n)
        .iter()
        .map(|t| TraceEntry {
            trace_id: t.id,
            route: t.route.to_string(),
            status: t.status,
            total_ns: t.total_ns,
            spans: t
                .spans
                .iter()
                .map(|s| TraceSpan {
                    name: s.name.to_string(),
                    start_ns: s.start_ns,
                    dur_ns: s.dur_ns,
                    n: s.n,
                })
                .collect(),
        })
        .collect();
    let dump = TraceDump {
        enabled: sqlan_obs::enabled(),
        traces,
    };
    Answer::json(
        200,
        serde_json::to_string(&dump).expect("trace dump serializes"),
    )
}

fn reload(req: &Request, engine: &ScoringEngine) -> Answer {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return Answer::json(400, error_body("body is not UTF-8"));
    };
    let parsed: Result<ReloadRequest, _> = serde_json::from_str(text);
    let request = match parsed {
        Ok(r) => r,
        Err(e) => return Answer::json(400, error_body(&format!("bad reload request: {e}"))),
    };
    match engine.registry().reload(Path::new(&request.dir)) {
        Ok(generation) => Answer::json(
            200,
            serde_json::to_string(&ReloadResponse { generation }).expect("reload serializes"),
        ),
        // An open breaker is a transient server-side condition (retry
        // after cooldown), not a caller mistake: 503, not 400.
        Err(e @ crate::bundle::BundleError::CircuitOpen { .. }) => {
            Answer::json(503, error_body(&format!("reload failed: {e}")))
        }
        Err(e) => Answer::json(400, error_body(&format!("reload failed: {e}"))),
    }
}
