//! The HTTP front end: a thread-per-worker accept loop over
//! `std::net::TcpListener` with keep-alive connections, routing to the
//! scoring engine.
//!
//! | route            | body                                  | answer |
//! |------------------|---------------------------------------|--------|
//! | `POST /predict`  | `{"problem": "...", "statements": []}`| predictions + generation |
//! | `GET /healthz`   | —                                     | status, generation, models |
//! | `GET /metrics`   | —                                     | [`MetricsSnapshot`] |
//! | `POST /reload`   | `{"dir": "..."}`                      | new generation (hot swap) |
//!
//! Saturation sheds with 503 (`{"error": ...}`), malformed input gets
//! 400, oversized requests 413/431. Every worker owns one connection at
//! a time; `workers` bounds concurrent connections and the OS backlog
//! absorbs bursts.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use sqlan_core::Problem;

use crate::http::{read_request, write_json_response, ParseError, Request};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::registry::ModelRegistry;
use crate::scoring::{Prediction, ScoreError, ScoringConfig, ScoringEngine};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Connection-handling threads (one connection at a time each).
    pub http_workers: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Idle keep-alive read timeout before the worker drops the
    /// connection.
    pub idle_timeout: Duration,
    pub scoring: ScoringConfig,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            http_workers: 4,
            max_body_bytes: 1 << 20,
            idle_timeout: Duration::from_secs(5),
            scoring: ScoringConfig::default(),
        }
    }
}

/// `POST /predict` request body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictRequest {
    /// Problem wire name (`Problem::name`), e.g. `"error_classification"`.
    pub problem: String,
    pub statements: Vec<String>,
}

/// `POST /predict` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictResponse {
    /// Bundle generation the request was admitted under — the one that
    /// scored it: jobs pin their admitted bundle even across a
    /// concurrent hot swap.
    pub generation: u64,
    pub predictions: Vec<Prediction>,
}

/// `POST /reload` request body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReloadRequest {
    pub dir: String,
}

/// `POST /reload` / error envelope bodies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReloadResponse {
    pub generation: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorResponse {
    pub error: String,
}

/// `GET /healthz` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealthResponse {
    pub status: String,
    pub generation: u64,
    pub bundle: String,
    /// Wire names of the problems the live bundle answers.
    pub problems: Vec<String>,
    /// Model kind per problem, same order.
    pub models: Vec<String>,
}

/// A running server. Dropping the handle does NOT stop it; call
/// [`ServerHandle::shutdown`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    engine: Arc<ScoringEngine>,
    metrics: Arc<ServeMetrics>,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn engine(&self) -> &Arc<ScoringEngine> {
        &self.engine
    }

    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    /// Stop accepting, wake blocked acceptors, drain scoring, join all
    /// threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // One wake-up connection per acceptor thread unblocks `accept`.
        for _ in 0..self.threads.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.engine.shutdown();
    }
}

/// Start a server: bind, spawn scoring workers and HTTP workers, return
/// immediately.
pub fn start(registry: Arc<ModelRegistry>, cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let engine = ScoringEngine::start(Arc::clone(&registry), cfg.scoring);
    let metrics = Arc::new(ServeMetrics::default());
    let stop = Arc::new(AtomicBool::new(false));

    let mut threads = Vec::with_capacity(cfg.http_workers.max(1));
    for i in 0..cfg.http_workers.max(1) {
        let listener = listener.try_clone()?;
        let engine = Arc::clone(&engine);
        let metrics = Arc::clone(&metrics);
        let stop = Arc::clone(&stop);
        let cfg = cfg.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("sqlan-http-{i}"))
                .spawn(move || loop {
                    let (stream, _) = match listener.accept() {
                        Ok(conn) => conn,
                        Err(_) => {
                            // Persistent accept errors (e.g. EMFILE under
                            // fd exhaustion) must not busy-spin the
                            // worker; back off briefly and re-check stop.
                            if stop.load(Ordering::Acquire) {
                                return;
                            }
                            std::thread::sleep(Duration::from_millis(10));
                            continue;
                        }
                    };
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    let _ = handle_connection(stream, &engine, &metrics, &stop, &cfg);
                })
                .expect("spawn http worker"),
        );
    }
    Ok(ServerHandle {
        addr,
        engine,
        metrics,
        stop,
        threads,
    })
}

fn handle_connection(
    stream: TcpStream,
    engine: &ScoringEngine,
    metrics: &ServeMetrics,
    stop: &AtomicBool,
    cfg: &ServeConfig,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(cfg.idle_timeout))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let req = match read_request(&mut reader, cfg.max_body_bytes) {
            Ok(req) => req,
            Err(ParseError::Eof) | Err(ParseError::Io(_)) => return Ok(()),
            Err(ParseError::Malformed(what)) => {
                metrics.client_errors.fetch_add(1, Ordering::Relaxed);
                let body = error_body(&format!("malformed request: {what}"));
                return write_json_response(&mut writer, 400, &body, false);
            }
            Err(ParseError::TooLarge(what)) => {
                metrics.client_errors.fetch_add(1, Ordering::Relaxed);
                let status = if what == "request body" { 413 } else { 431 };
                let body = error_body(&format!("{what} too large"));
                return write_json_response(&mut writer, status, &body, false);
            }
        };
        metrics.http_requests.fetch_add(1, Ordering::Relaxed);
        let keep_alive = req.keep_alive && !stop.load(Ordering::Acquire);
        let (status, body) = route(&req, engine, metrics);
        if (400..500).contains(&status) {
            metrics.client_errors.fetch_add(1, Ordering::Relaxed);
        } else if status == 503 {
            metrics.shed.fetch_add(1, Ordering::Relaxed);
        }
        write_json_response(&mut writer, status, &body, keep_alive)?;
        if !keep_alive {
            return Ok(());
        }
    }
}

fn error_body(message: &str) -> String {
    serde_json::to_string(&ErrorResponse {
        error: message.to_string(),
    })
    .expect("error body serializes")
}

fn route(req: &Request, engine: &ScoringEngine, metrics: &ServeMetrics) -> (u16, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/predict") => predict(req, engine, metrics),
        ("GET", "/healthz") => healthz(engine),
        ("GET", "/metrics") => metrics_route(engine, metrics),
        ("POST", "/reload") => reload(req, engine),
        ("GET", _) | ("POST", _) => (404, error_body("no such route")),
        _ => (405, error_body("method not allowed")),
    }
}

fn predict(req: &Request, engine: &ScoringEngine, metrics: &ServeMetrics) -> (u16, String) {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return (400, error_body("body is not UTF-8"));
    };
    let parsed: Result<PredictRequest, _> = serde_json::from_str(text);
    let request = match parsed {
        Ok(r) => r,
        Err(e) => return (400, error_body(&format!("bad predict request: {e}"))),
    };
    let Some(problem) = Problem::from_name(&request.problem) else {
        return (
            400,
            error_body(&format!("unknown problem `{}`", request.problem)),
        );
    };
    let start = Instant::now();
    match engine.score(problem, &request.statements) {
        Ok(scored) => {
            metrics.observe_predict(
                request.statements.len() as u64,
                start.elapsed().as_micros() as u64,
            );
            let body = PredictResponse {
                generation: scored.generation,
                predictions: scored.predictions,
            };
            (
                200,
                serde_json::to_string(&body).expect("response serializes"),
            )
        }
        Err(ScoreError::Saturated) => (503, error_body("scoring queue saturated")),
        Err(ScoreError::ShuttingDown) => (503, error_body("shutting down")),
        Err(e @ ScoreError::UnknownProblem(_)) => (400, error_body(&e.to_string())),
    }
}

fn healthz(engine: &ScoringEngine) -> (u16, String) {
    let live = engine.registry().current();
    let body = HealthResponse {
        status: "ok".to_string(),
        generation: live.generation,
        bundle: live.bundle.manifest.name.clone(),
        problems: live
            .bundle
            .manifest
            .entries
            .iter()
            .map(|e| e.problem.name().to_string())
            .collect(),
        models: live
            .bundle
            .manifest
            .entries
            .iter()
            .map(|e| e.kind.name().to_string())
            .collect(),
    };
    (
        200,
        serde_json::to_string(&body).expect("health serializes"),
    )
}

fn metrics_route(engine: &ScoringEngine, metrics: &ServeMetrics) -> (u16, String) {
    let (hits, misses) = engine.cache().stats();
    let uptime = metrics.uptime_s().max(1e-9);
    let statements = metrics.statements.load(Ordering::Relaxed);
    let predict_requests = metrics.predict_requests.load(Ordering::Relaxed);
    let batches = engine.batch_stats.batches.load(Ordering::Relaxed);
    let batched = engine.batch_stats.statements.load(Ordering::Relaxed);
    let snapshot = MetricsSnapshot {
        uptime_s: uptime,
        generation: engine.registry().generation(),
        http_requests: metrics.http_requests.load(Ordering::Relaxed),
        predict_requests,
        statements,
        shed: metrics.shed.load(Ordering::Relaxed),
        client_errors: metrics.client_errors.load(Ordering::Relaxed),
        statement_qps: statements as f64 / uptime,
        request_qps: predict_requests as f64 / uptime,
        latency: metrics.latency_summary(),
        cache_hits: hits,
        cache_misses: misses,
        cache_hit_rate: if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        },
        cache_entries: engine.cache().len() as u64,
        batches,
        batched_statements: batched,
        mean_batch: if batches == 0 {
            0.0
        } else {
            batched as f64 / batches as f64
        },
        max_batch: engine.batch_stats.max_batch.load(Ordering::Relaxed),
        queue_depth: engine.queue_depth() as u64,
    };
    (
        200,
        serde_json::to_string(&snapshot).expect("metrics serialize"),
    )
}

fn reload(req: &Request, engine: &ScoringEngine) -> (u16, String) {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return (400, error_body("body is not UTF-8"));
    };
    let parsed: Result<ReloadRequest, _> = serde_json::from_str(text);
    let request = match parsed {
        Ok(r) => r,
        Err(e) => return (400, error_body(&format!("bad reload request: {e}"))),
    };
    match engine.registry().reload(Path::new(&request.dir)) {
        Ok(generation) => (
            200,
            serde_json::to_string(&ReloadResponse { generation }).expect("reload serializes"),
        ),
        Err(e) => (400, error_body(&format!("reload failed: {e}"))),
    }
}
