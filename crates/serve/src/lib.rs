//! # sqlan-serve
//!
//! The online prediction service: the paper's promise — telling a user
//! *before execution* whether a query will error, how long it will run,
//! and how big the answer will be — only pays off if predictions are
//! served at interactive latency to many concurrent users. This crate
//! turns the trained model zoo into that service, in four layers:
//!
//! 1. **Model artifacts** ([`bundle`]): a versioned on-disk bundle
//!    (manifest + one `TrainedModel` JSON per problem), written
//!    atomically, validated on load.
//! 2. **Registry** ([`registry`]): the live bundle behind an
//!    `RwLock<Arc<_>>` — readers clone the `Arc` and never block on a
//!    hot-swap reload.
//! 3. **Batched scoring** ([`scoring`] + [`cache`]): a bounded
//!    micro-batching queue scored through the `predict_*_batch` APIs
//!    (which fan out on the [`sqlan_par`] pool), fronted by a sharded
//!    LRU cache keyed on normalized statement text. Saturation sheds.
//! 4. **HTTP front end** ([`server`] + [`http`]): two interchangeable
//!    front ends behind `SQLAN_HTTP` — the `sqlan-net` epoll event loop
//!    (default on Linux) and a blocking thread-per-connection fallback —
//!    both consuming the shared sans-io parser and emitting
//!    byte-identical responses, with keep-alive, `POST /predict`,
//!    `GET /healthz`, `GET /metrics`, and `POST /reload`.
//!
//! See `crates/serve/README.md` for a quickstart and
//! `crates/bench/src/bin/bench_serve.rs` for the closed-loop load
//! generator that measures it.

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod bundle;
pub mod cache;
pub mod client;
pub mod http;
pub mod metrics;
pub mod registry;
pub mod scoring;
pub mod server;

pub use bundle::{load_bundle, save_bundle, Bundle, BundleError, BundleManifest, ManifestEntry};
pub use cache::{normalize_statement, PredictionCache};
pub use client::{Client, RetryPolicy};
pub use metrics::{MetricsSnapshot, ServeMetrics};
pub use registry::{LiveBundle, ModelRegistry};
pub use scoring::{Prediction, ScoreError, ScoredBatch, ScoringConfig, ScoringEngine};
pub use server::{
    start, ErrorResponse, HealthResponse, HttpMode, PredictRequest, PredictResponse, ReloadRequest,
    ReloadResponse, ServeConfig, ServerHandle, TraceDump, TraceEntry, TraceSpan,
};
