//! Sharded LRU prediction cache.
//!
//! Keys are `(problem, normalized statement)`; values carry the bundle
//! generation they were computed under, so a hot-swap implicitly
//! invalidates every stale entry (checked on read — no global flush, no
//! reader stall). Sharding by key hash keeps lock contention bounded
//! under many server workers.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use sqlan_core::Problem;

use crate::scoring::Prediction;

/// Collapse whitespace runs outside quoted regions to a single space and
/// trim the ends.
///
/// Both tokenizers (`char_tokens`, `word_tokens`) drop whitespace, and
/// the SQL lexer treats it only as a separator — *except inside `'...'`
/// string literals and `"..."` quoted identifiers*, whose exact text can
/// reach the `opt` baseline's catalog estimates. So two statements
/// sharing a normalized form are guaranteed the same prediction from
/// every model family, which is the correctness contract a cache key
/// must honor.
///
/// The implementation lives beside the engine's template-fingerprint
/// lexer in `sqlan-sql` — one source of truth for what "the same
/// statement modulo whitespace" means across the serving cache and the
/// plan cache.  Re-exported here so existing call sites and cache keys
/// are unchanged.
pub use sqlan_sql::normalize_statement;

#[derive(Debug)]
struct Entry {
    generation: u64,
    prediction: Prediction,
    /// Last-touch stamp from the shard's logical clock.
    stamp: u64,
}

/// Position of a problem in [`Shard::maps`].
fn problem_idx(p: Problem) -> usize {
    Problem::ALL
        .iter()
        .position(|&q| q == p)
        .expect("Problem::ALL is exhaustive")
}

/// One map per problem, keyed by normalized statement alone, so lookups
/// borrow the `&str` key — no per-`get` allocation on the hot path.
#[derive(Debug, Default)]
struct Shard {
    maps: [HashMap<String, Entry>; 4],
    clock: u64,
}

/// Entries sampled per eviction. Eviction picks the oldest stamp among a
/// bounded sample of the shard (Redis-style approximate LRU), so inserts
/// at capacity stay O(1) instead of scanning the whole shard under its
/// lock. For shards at or below the sample size the scan is total, so
/// eviction is *exact* LRU there (which keeps small-cache behavior, and
/// the unit tests, deterministic).
const EVICTION_SAMPLE: usize = 8;

impl Shard {
    fn len(&self) -> usize {
        self.maps.iter().map(HashMap::len).sum()
    }

    /// Evict an approximately least-recently-used entry (see
    /// [`EVICTION_SAMPLE`]): sample a bounded prefix of every problem's
    /// map and drop the oldest stamp found. `HashMap` iteration order
    /// varies, which is exactly what makes a bounded prefix an
    /// unbiased-enough sample.
    fn evict_one(&mut self) {
        let victim = self
            .maps
            .iter()
            .enumerate()
            .flat_map(|(pi, m)| m.iter().take(EVICTION_SAMPLE).map(move |(k, e)| (pi, k, e)))
            .min_by_key(|(_, _, e)| e.stamp)
            .map(|(pi, k, _)| (pi, k.clone()));
        if let Some((pi, key)) = victim {
            self.maps[pi].remove(&key);
        }
    }
}

/// Sharded LRU cache of predictions.
#[derive(Debug)]
pub struct PredictionCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PredictionCache {
    /// `capacity` entries total across `shards` shards (each shard gets an
    /// equal slice, at least 1). `capacity == 0` disables caching.
    pub fn new(capacity: usize, shards: usize) -> PredictionCache {
        let shards = shards.max(1);
        PredictionCache {
            per_shard_capacity: if capacity == 0 {
                0
            } else {
                capacity.div_ceil(shards).max(1)
            },
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, problem: Problem, normalized: &str) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        problem.hash(&mut h);
        normalized.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look up a prediction computed under `generation`. Entries from any
    /// other generation miss (and are dropped lazily on overwrite).
    pub fn get(&self, problem: Problem, normalized: &str, generation: u64) -> Option<Prediction> {
        if self.per_shard_capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut shard = self
            .shard_for(problem, normalized)
            .lock()
            .expect("cache shard poisoned");
        shard.clock += 1;
        let stamp = shard.clock;
        match shard.maps[problem_idx(problem)].get_mut(normalized) {
            Some(e) if e.generation == generation => {
                e.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.prediction.clone())
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a prediction computed under `generation`, evicting the
    /// shard's least-recently-used entry at capacity.
    pub fn put(&self, problem: Problem, normalized: String, generation: u64, p: Prediction) {
        if self.per_shard_capacity == 0 {
            return;
        }
        let mut shard = self
            .shard_for(problem, &normalized)
            .lock()
            .expect("cache shard poisoned");
        shard.clock += 1;
        let stamp = shard.clock;
        if !shard.maps[problem_idx(problem)].contains_key(&normalized)
            && shard.len() >= self.per_shard_capacity
        {
            shard.evict_one();
        }
        shard.maps[problem_idx(problem)].insert(
            normalized,
            Entry {
                generation,
                prediction: p,
                stamp,
            },
        );
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Entries currently cached (across all shards).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(v: f64) -> Prediction {
        Prediction {
            class: None,
            proba: None,
            value: Some(v),
        }
    }

    #[test]
    fn normalization_collapses_outside_literals_only() {
        assert_eq!(
            normalize_statement("  SELECT   x\n FROM\tt  "),
            "SELECT x FROM t"
        );
        assert_eq!(
            normalize_statement("SELECT 'a   b'  FROM t"),
            "SELECT 'a   b' FROM t"
        );
        assert_eq!(
            normalize_statement("SELECT  \"My   Col\" FROM \"My  Table\""),
            "SELECT \"My   Col\" FROM \"My  Table\""
        );
        assert_eq!(normalize_statement(""), "");
        assert_eq!(normalize_statement("   "), "");
    }

    #[test]
    fn hit_after_put_same_generation_only() {
        let c = PredictionCache::new(16, 4);
        c.put(Problem::CpuTime, "q".into(), 1, pred(2.0));
        assert!(c.get(Problem::CpuTime, "q", 1).is_some());
        // Different generation, different problem, different key: misses.
        assert!(c.get(Problem::CpuTime, "q", 2).is_none());
        assert!(c.get(Problem::AnswerSize, "q", 1).is_none());
        assert!(c.get(Problem::CpuTime, "other", 1).is_none());
        let (hits, misses) = c.stats();
        assert_eq!((hits, misses), (1, 3));
    }

    #[test]
    fn lru_evicts_oldest_within_shard() {
        let c = PredictionCache::new(2, 1); // one shard, two entries
        c.put(Problem::CpuTime, "a".into(), 1, pred(1.0));
        c.put(Problem::CpuTime, "b".into(), 1, pred(2.0));
        // Touch "a" so "b" is the LRU.
        assert!(c.get(Problem::CpuTime, "a", 1).is_some());
        c.put(Problem::CpuTime, "c".into(), 1, pred(3.0));
        assert_eq!(c.len(), 2);
        assert!(c.get(Problem::CpuTime, "a", 1).is_some());
        assert!(c.get(Problem::CpuTime, "b", 1).is_none());
        assert!(c.get(Problem::CpuTime, "c", 1).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = PredictionCache::new(0, 4);
        c.put(Problem::CpuTime, "a".into(), 1, pred(1.0));
        assert!(c.get(Problem::CpuTime, "a", 1).is_none());
        assert!(c.is_empty());
    }
}
