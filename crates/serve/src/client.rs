//! A tiny blocking HTTP/1.1 client over one keep-alive connection — just
//! enough for the load generator, the end-to-end tests, and the example.
//! Not a general client: it assumes the well-formed responses this
//! server writes (`content-length` always present).
//!
//! [`Client::request_with_retry`] adds the resilience half: transport
//! errors reconnect and retry, 503/504 answers retry after a capped
//! exponential backoff with *deterministic* jitter — the jitter stream
//! is a pure function of the [`RetryPolicy`] seed and the attempt
//! number, so a chaos run replays the exact same retry schedule under
//! the same seed.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Retry schedule for [`Client::request_with_retry`]: up to `attempts`
/// tries, sleeping `min(cap, base * 2^n) * jitter(seed, n)` between
/// them, where jitter is a deterministic factor in `[0.5, 1.0)`.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total tries, including the first (0 behaves like 1).
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Backoff ceiling (the exponential curve clips here).
    pub cap: Duration,
    /// Jitter seed: same seed → same sleep schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(250),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (0-based). Pure: the
    /// whole schedule can be computed — and asserted on — up front.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cap);
        // splitmix64-style finalizer over (seed, attempt): uniform
        // enough for jitter, dependency-free, and reproducible.
        let mut x = self
            .seed
            .wrapping_add((attempt as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        let unit = (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        exp.mul_f64(0.5 + unit / 2.0)
    }
}

/// One keep-alive connection to a server.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let (reader, writer) = Client::open(addr)?;
        Ok(Client {
            addr,
            reader,
            writer,
        })
    }

    fn open(addr: SocketAddr) -> io::Result<(BufReader<TcpStream>, TcpStream)> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok((BufReader::new(stream.try_clone()?), stream))
    }

    /// Drop the current connection and dial a fresh one (after a
    /// transport error the old socket's state is unknowable).
    pub fn reconnect(&mut self) -> io::Result<()> {
        let (reader, writer) = Client::open(self.addr)?;
        self.reader = reader;
        self.writer = writer;
        Ok(())
    }

    /// Send one request, read one response. Returns `(status, body)`.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
        self.request_with(method, path, body, &[])
    }

    /// [`Client::request`] with extra headers (`name: value` pairs,
    /// e.g. `("x-sqlan-deadline-ms", "250")`).
    pub fn request_with(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        headers: &[(&str, &str)],
    ) -> io::Result<(u16, String)> {
        // Single write: avoids a Nagle/delayed-ACK stall between head and
        // body (mirrors the server's response writer).
        let mut request = format!(
            "{method} {path} HTTP/1.1\r\nhost: sqlan\r\ncontent-type: application/json\r\ncontent-length: {}\r\n",
            body.len()
        );
        for (name, value) in headers {
            request.push_str(name);
            request.push_str(": ");
            request.push_str(value);
            request.push_str("\r\n");
        }
        request.push_str("\r\n");
        request.push_str(body);
        self.writer.write_all(request.as_bytes())?;
        self.writer.flush()?;

        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {line:?}"),
                )
            })?;
        let mut content_length = 0usize;
        loop {
            line.clear();
            self.reader.read_line(&mut line)?;
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        String::from_utf8(body)
            .map(|b| (status, b))
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))
    }

    /// [`Client::request_with`] under a [`RetryPolicy`]: a transport
    /// error reconnects and retries; a 503 (overload, breaker) or 504
    /// (deadline) retries on the same connection. Any other status —
    /// success or not — returns immediately; retrying a 400 cannot
    /// help. The last attempt's outcome is returned as-is.
    pub fn request_with_retry(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        headers: &[(&str, &str)],
        policy: &RetryPolicy,
    ) -> io::Result<(u16, String)> {
        let attempts = policy.attempts.max(1);
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(policy.backoff(attempt - 1));
            }
            match self.request_with(method, path, body, headers) {
                Ok((status, text)) if matches!(status, 503 | 504) && attempt + 1 < attempts => {
                    last_err = Some(io::Error::other(format!("retryable status {status}")));
                    let _ = (status, text); // retry after backoff
                }
                Ok(outcome) => return Ok(outcome),
                Err(e) => {
                    // The connection may be mid-response; only a fresh
                    // one is safe to reuse.
                    last_err = Some(e);
                    if let Err(e) = self.reconnect() {
                        last_err = Some(e);
                    }
                }
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("no attempts made")))
    }

    pub fn get(&mut self, path: &str) -> io::Result<(u16, String)> {
        self.request("GET", path, "")
    }

    pub fn post(&mut self, path: &str, body: &str) -> io::Result<(u16, String)> {
        self.request("POST", path, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let policy = RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
            seed: 42,
        };
        let a: Vec<Duration> = (0..8).map(|n| policy.backoff(n)).collect();
        let b: Vec<Duration> = (0..8).map(|n| policy.backoff(n)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        for (n, d) in a.iter().enumerate() {
            // Jitter keeps each sleep in [exp/2, exp), exp ≤ cap.
            assert!(*d <= Duration::from_millis(100), "attempt {n}: {d:?}");
            let floor = Duration::from_millis(10)
                .saturating_mul(1 << n.min(16))
                .min(Duration::from_millis(100))
                / 2;
            assert!(*d >= floor, "attempt {n}: {d:?} under jitter floor");
        }
        let other = RetryPolicy { seed: 43, ..policy };
        let c: Vec<Duration> = (0..8).map(|n| other.backoff(n)).collect();
        assert_ne!(a, c, "different seed, different jitter");
    }
}
