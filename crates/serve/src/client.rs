//! A tiny blocking HTTP/1.1 client over one keep-alive connection — just
//! enough for the load generator, the end-to-end tests, and the example.
//! Not a general client: it assumes the well-formed responses this
//! server writes (`content-length` always present).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// One keep-alive connection to a server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Send one request, read one response. Returns `(status, body)`.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
        // Single write: avoids a Nagle/delayed-ACK stall between head and
        // body (mirrors the server's response writer).
        let mut request = format!(
            "{method} {path} HTTP/1.1\r\nhost: sqlan\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        request.push_str(body);
        self.writer.write_all(request.as_bytes())?;
        self.writer.flush()?;

        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {line:?}"),
                )
            })?;
        let mut content_length = 0usize;
        loop {
            line.clear();
            self.reader.read_line(&mut line)?;
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        String::from_utf8(body)
            .map(|b| (status, b))
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))
    }

    pub fn get(&mut self, path: &str) -> io::Result<(u16, String)> {
        self.request("GET", path, "")
    }

    pub fn post(&mut self, path: &str, body: &str) -> io::Result<(u16, String)> {
        self.request("POST", path, body)
    }
}
