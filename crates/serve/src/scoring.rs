//! The batched scoring engine.
//!
//! Requests are admitted into a bounded micro-batching queue; scoring
//! workers drain up to `max_batch` statements for one problem (waiting at
//! most `max_wait` for stragglers to fill the batch) and score them in a
//! single `predict_*_batch` call. For the neural models that call is
//! *true batched forward* — the batch plans into length-bucketed tiles
//! and each tile runs one tensorized tape (one `(B,K)·(K,N)` matmul per
//! layer), bit-identical to per-statement scoring, rather than a
//! `par_map` of per-statement graphs — so the micro-batching queue buys
//! real kernel-level batching, not just thread fan-out. A full queue
//! sheds the request instead of queueing unbounded work
//! ([`ScoreError::Saturated`] → HTTP 503 upstream).
//!
//! The cache sits in front of the queue: hits answer immediately from the
//! sharded LRU ([`crate::cache::PredictionCache`]); only misses are
//! queued, and workers populate the cache under the generation they
//! scored with, so a hot-swapped bundle never serves stale entries.
//!
//! Resilience (PR 10): requests can carry a **deadline** — already-expired
//! work is shed at admission and queued jobs that expire before their
//! batch is cut are dropped without a model forward
//! ([`ScoreError::DeadlineExceeded`] → HTTP 504 upstream). Batch scoring
//! runs under `catch_unwind`, so a panicking model (or an injected
//! `score.panic` fault) fails its batch with typed errors instead of
//! stranding callers, and a worker thread that somehow unwinds anyway is
//! respawned. With [`ScoringConfig::degrade`] on, failures downgrade
//! instead of erroring: an unknown problem falls back to the previous
//! pinned generation, and saturation or a panicked batch falls back to a
//! cheap length-heuristic predictor — in every case the response is
//! stamped `degraded: true` and counted in [`ResilienceStats`].

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use sqlan_core::Problem;
use sqlan_obs::trace::{install, timed};
use sqlan_obs::TraceCtx;

use crate::cache::{normalize_statement, PredictionCache};
use crate::registry::{LiveBundle, ModelRegistry};

/// One scored statement. Classification problems fill `class` + `proba`,
/// regression problems fill `value` (log-label space, matching
/// `TrainedModel::predict_value`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    pub class: Option<usize>,
    pub proba: Option<Vec<f32>>,
    pub value: Option<f64>,
}

/// A scored request: the predictions plus the bundle generation that
/// produced them (the generation the request was *admitted* under —
/// jobs pin that bundle even across a concurrent hot swap).
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredBatch {
    pub generation: u64,
    pub predictions: Vec<Prediction>,
    /// `true` when any prediction came from a fallback (previous
    /// generation or length heuristic) rather than the live model.
    pub degraded: bool,
}

/// Why a scoring request was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScoreError {
    /// The queue is full — shed instead of queueing unbounded work.
    Saturated,
    /// The live bundle has no model for this problem.
    UnknownProblem(Problem),
    /// The engine is shutting down.
    ShuttingDown,
    /// The request's deadline passed before its statements were scored.
    DeadlineExceeded,
    /// Batch scoring panicked (and degradation is off).
    WorkerPanicked,
}

impl std::fmt::Display for ScoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScoreError::Saturated => f.write_str("scoring queue saturated"),
            ScoreError::UnknownProblem(p) => write!(f, "no model for problem `{p}`"),
            ScoreError::ShuttingDown => f.write_str("engine shutting down"),
            ScoreError::DeadlineExceeded => f.write_str("request deadline exceeded"),
            ScoreError::WorkerPanicked => f.write_str("scoring failed internally"),
        }
    }
}

impl std::error::Error for ScoreError {}

/// Micro-batching and cache knobs.
#[derive(Debug, Clone, Copy)]
pub struct ScoringConfig {
    /// Scoring worker threads. `0` scores inline on the caller thread
    /// (no queue — useful for tests and single-tenant embedding).
    pub workers: usize,
    /// Statements per scoring batch.
    pub max_batch: usize,
    /// How long a worker holds a non-full batch open for stragglers.
    pub max_wait: Duration,
    /// Queued-statement bound; admission beyond it sheds the request.
    pub queue_capacity: usize,
    /// Total prediction-cache entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Cache shard count.
    pub cache_shards: usize,
    /// Graceful degradation: serve fallback predictions (previous pinned
    /// generation, else a length heuristic) marked `degraded:true`
    /// instead of erroring on saturation, unknown problems, or panicked
    /// batches. Off by default — shedding with 503 stays the contract
    /// unless an operator opts in (here or via `SQLAN_DEGRADE=on`).
    pub degrade: bool,
}

/// Environment variable opting into graceful degradation
/// (`on`/`1`/`true`); [`ScoringConfig::degrade`] set programmatically
/// also enables it.
pub const DEGRADE_ENV: &str = "SQLAN_DEGRADE";

fn degrade_env() -> bool {
    matches!(
        std::env::var(DEGRADE_ENV).as_deref().map(str::trim),
        Ok("on") | Ok("1") | Ok("true")
    )
}

impl Default for ScoringConfig {
    fn default() -> ScoringConfig {
        ScoringConfig {
            workers: 2,
            max_batch: 64,
            max_wait: Duration::from_millis(2),
            queue_capacity: 4096,
            cache_capacity: 65_536,
            cache_shards: 16,
            degrade: false,
        }
    }
}

/// Per-request options for [`ScoringEngine::score_opts`].
#[derive(Debug, Default)]
pub struct ScoreOptions<'a> {
    /// Request trace minted at the HTTP edge, if any.
    pub trace: Option<&'a Arc<TraceCtx>>,
    /// Absolute deadline: expired work is shed (504) before a model
    /// forward is spent on it.
    pub deadline: Option<Instant>,
}

/// Resilience counters, mirrored into `/metrics` at scrape time.
#[derive(Debug, Default)]
pub struct ResilienceStats {
    /// Requests shed because their deadline passed (at admission or in
    /// the queue).
    pub deadline_expired: AtomicU64,
    /// Batches whose scoring panicked (caught, never escaped).
    pub worker_panics: AtomicU64,
    /// Scoring worker threads respawned after an unwind escaped the
    /// batch guard.
    pub worker_respawns: AtomicU64,
    /// Responses served degraded.
    pub degraded_responses: AtomicU64,
    /// Statements inside degraded responses.
    pub degraded_statements: AtomicU64,
}

/// How one queued job failed, reported over the reply channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobFail {
    /// Deadline passed while queued; dropped before scoring.
    Expired,
    /// The batch's scoring call panicked.
    Panicked,
}

struct Job {
    problem: Problem,
    normalized: String,
    /// The bundle the job was admitted against. Scoring uses exactly
    /// this bundle, so a concurrent hot swap to one *without* the
    /// problem can never strand the job (admission already validated
    /// it here), and the cache entry lands under the right generation.
    live: Arc<LiveBundle>,
    /// Caller's scatter index and reply channel.
    index: usize,
    reply: mpsc::Sender<(usize, Result<Prediction, JobFail>)>,
    /// Absolute deadline; a job still queued past it is dropped without
    /// a model forward.
    deadline: Option<Instant>,
    /// The request trace this job belongs to, if one was minted at the
    /// HTTP edge. Workers dedup per-trace before recording spans, so a
    /// many-statement request gets one `queue_wait` / `batch_score`
    /// span per batch, not one per statement.
    trace: Option<Arc<TraceCtx>>,
    /// When the job entered the queue (start of its `queue_wait` span).
    admitted: Instant,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("problem", &self.problem)
            .field("index", &self.index)
            .finish()
    }
}

#[derive(Debug, Default)]
pub struct BatchStats {
    /// Scoring batches executed.
    pub batches: AtomicU64,
    /// Statements scored through batches (batched_statements / batches =
    /// achieved batch size).
    pub statements: AtomicU64,
    /// Largest batch observed.
    pub max_batch: AtomicU64,
}

/// Queue state shared by admission and the workers: the jobs plus the
/// per-problem deficit-round-robin credit that decides which problem
/// the next batch serves.
#[derive(Debug, Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    /// Carried-over service credit per problem (indexed by position in
    /// [`Problem::ALL`]). A problem earns one quantum each time a batch
    /// is cut while it has jobs waiting, and spends what a batch serves;
    /// unspent credit carries over, so a trickle of jobs for one problem
    /// cannot be starved behind a flood for another.
    credit: [u32; Problem::ALL.len()],
}

#[inline]
fn pidx(p: Problem) -> usize {
    Problem::ALL
        .iter()
        .position(|&q| q == p)
        .expect("problem in ALL")
}

/// Deficit-round-robin selection: every present problem (`first[i]` is
/// the queue position of its oldest job) earns `quantum`, then the
/// highest-credit present problem wins, ties broken FIFO by oldest job.
/// Absent problems forfeit their credit (no hoarding while idle).
/// Credit is capped at `4 * quantum` so a long-present, rarely-chosen
/// problem cannot bank unbounded priority. Returns the winning index
/// into [`Problem::ALL`].
fn drr_select(first: &[Option<usize>], credit: &mut [u32], quantum: u32) -> usize {
    let mut winner: Option<usize> = None;
    for i in 0..first.len() {
        match first[i] {
            None => credit[i] = 0,
            Some(pos) => {
                credit[i] = (credit[i] + quantum).min(4 * quantum);
                let better = match winner {
                    None => true,
                    Some(w) => {
                        credit[i] > credit[w]
                            || (credit[i] == credit[w]
                                && pos < first[w].expect("winner is present"))
                    }
                };
                if better {
                    winner = Some(i);
                }
            }
        }
    }
    winner.expect("at least one problem present")
}

/// The engine: cache → queue → scoring workers.
#[derive(Debug)]
pub struct ScoringEngine {
    registry: Arc<ModelRegistry>,
    cache: PredictionCache,
    cfg: ScoringConfig,
    queue: Mutex<QueueState>,
    /// Signals workers (new work / shutdown).
    work_ready: Condvar,
    shutdown: AtomicBool,
    pub batch_stats: BatchStats,
    pub resilience: ResilienceStats,
    /// Resolved once at start: `cfg.degrade || SQLAN_DEGRADE=on`.
    degrade: bool,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ScoringEngine {
    /// Build the engine and spawn its scoring workers.
    pub fn start(registry: Arc<ModelRegistry>, cfg: ScoringConfig) -> Arc<ScoringEngine> {
        let engine = Arc::new(ScoringEngine {
            registry,
            cache: PredictionCache::new(cfg.cache_capacity, cfg.cache_shards),
            cfg,
            queue: Mutex::new(QueueState::default()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            batch_stats: BatchStats::default(),
            resilience: ResilienceStats::default(),
            degrade: cfg.degrade || degrade_env(),
            workers: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(cfg.workers);
        for i in 0..cfg.workers {
            let e = Arc::clone(&engine);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("sqlan-score-{i}"))
                    .spawn(move || {
                        // Batch scoring is individually unwind-guarded; if
                        // a panic escapes the loop anyway (a poisoned
                        // invariant, an injected fault in an unexpected
                        // place), respawn the loop rather than silently
                        // shrinking the pool.
                        loop {
                            if catch_unwind(AssertUnwindSafe(|| e.worker_loop())).is_ok() {
                                break;
                            }
                            e.resilience.worker_respawns.fetch_add(1, Ordering::Relaxed);
                            if e.shutdown.load(Ordering::Acquire) {
                                break;
                            }
                        }
                    })
                    .expect("spawn scoring worker"),
            );
        }
        *engine.workers.lock().expect("workers lock") = handles;
        engine
    }

    /// Whether graceful degradation is on for this engine.
    pub fn degrade_enabled(&self) -> bool {
        self.degrade
    }

    /// The registry this engine scores against.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The prediction cache (for metrics).
    pub fn cache(&self) -> &PredictionCache {
        &self.cache
    }

    /// Statements currently queued.
    pub fn queue_depth(&self) -> usize {
        self.queue.lock().expect("queue lock").jobs.len()
    }

    /// Score `statements` for `problem`: cache hits answer immediately,
    /// misses ride the micro-batching queue. Results come back in input
    /// order, stamped with the generation that scored them. Sheds
    /// (without enqueueing anything) if the misses would overflow the
    /// queue.
    pub fn score(
        &self,
        problem: Problem,
        statements: &[String],
    ) -> Result<ScoredBatch, ScoreError> {
        self.score_opts(problem, statements, ScoreOptions::default())
    }

    /// [`ScoringEngine::score`] carrying the request trace minted at the
    /// HTTP edge: jobs pin it across the queue so spans recorded on a
    /// scoring worker (`queue_wait`, `batch_score`, `featurize`) attach
    /// to the originating request.
    pub fn score_traced(
        &self,
        problem: Problem,
        statements: &[String],
        trace: Option<&Arc<TraceCtx>>,
    ) -> Result<ScoredBatch, ScoreError> {
        self.score_opts(
            problem,
            statements,
            ScoreOptions {
                trace,
                deadline: None,
            },
        )
    }

    /// The full scoring entry point: cache → queue → workers, honoring a
    /// per-request deadline and the degradation ladder.
    pub fn score_opts(
        &self,
        problem: Problem,
        statements: &[String],
        opts: ScoreOptions<'_>,
    ) -> Result<ScoredBatch, ScoreError> {
        if self.shutdown.load(Ordering::Acquire) {
            return Err(ScoreError::ShuttingDown);
        }
        if let Some(d) = opts.deadline {
            // Shed before spending anything — not even a cache probe —
            // on a request whose client has already given up.
            if Instant::now() >= d {
                self.resilience
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
                return Err(ScoreError::DeadlineExceeded);
            }
        }
        let live = self.registry.current();
        if live.bundle.model(problem).is_none() {
            if self.degrade {
                return Ok(self.degraded_unknown_problem(problem, statements, &live));
            }
            return Err(ScoreError::UnknownProblem(problem));
        }
        let generation = live.generation;
        let trace = opts.trace;

        let normalized: Vec<String> = timed("normalize", statements.len() as u64, || {
            statements.iter().map(|s| normalize_statement(s)).collect()
        });
        let mut out: Vec<Option<Prediction>> = vec![None; statements.len()];
        let mut misses: Vec<usize> = Vec::new();
        timed("cache_probe", statements.len() as u64, || {
            for (i, n) in normalized.iter().enumerate() {
                // Duplicate statements within one request dedup through the
                // cache only if an earlier batch already stored them; within
                // this request each occurrence is scored (identical inputs
                // produce identical outputs, so semantics are unaffected).
                match self.cache.get(problem, n, generation) {
                    Some(p) => out[i] = Some(p),
                    None => misses.push(i),
                }
            }
        });

        let mut degraded = false;
        if !misses.is_empty() {
            if self.cfg.workers == 0 {
                // Inline path: one batch call on the caller thread.
                let stmts: Vec<String> = misses.iter().map(|&i| normalized[i].clone()).collect();
                match catch_unwind(AssertUnwindSafe(|| {
                    self.score_batch_now(&live, problem, &stmts)
                })) {
                    Ok(preds) => {
                        for (&i, p) in misses.iter().zip(preds) {
                            out[i] = Some(p);
                        }
                    }
                    Err(_) => {
                        self.resilience
                            .worker_panics
                            .fetch_add(1, Ordering::Relaxed);
                        if !self.degrade {
                            return Err(ScoreError::WorkerPanicked);
                        }
                        degraded = true;
                        for &i in &misses {
                            out[i] = Some(heuristic_predict(problem, &normalized[i]));
                        }
                    }
                }
            } else {
                let (tx, rx) = mpsc::channel();
                let enqueued = {
                    let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
                    // Re-checked under the queue lock: `shutdown()` joins
                    // workers after setting the flag, so a store observed
                    // here means no worker will ever drain jobs we would
                    // push — without this check a racing caller could
                    // enqueue past a completed shutdown and block on
                    // `recv` forever.
                    if self.shutdown.load(Ordering::Acquire) {
                        return Err(ScoreError::ShuttingDown);
                    }
                    if q.jobs.len() + misses.len() > self.cfg.queue_capacity {
                        if !self.degrade {
                            return Err(ScoreError::Saturated);
                        }
                        false
                    } else {
                        let admitted = Instant::now();
                        for &i in &misses {
                            q.jobs.push_back(Job {
                                problem,
                                normalized: normalized[i].clone(),
                                live: Arc::clone(&live),
                                index: i,
                                reply: tx.clone(),
                                deadline: opts.deadline,
                                trace: trace.map(Arc::clone),
                                admitted,
                            });
                        }
                        true
                    }
                };
                if enqueued {
                    self.work_ready.notify_all();
                    drop(tx);
                    let mut expired = false;
                    let mut panicked: Vec<usize> = Vec::new();
                    for _ in 0..misses.len() {
                        let (i, r) = rx.recv().map_err(|_| ScoreError::ShuttingDown)?;
                        match r {
                            Ok(p) => out[i] = Some(p),
                            Err(JobFail::Expired) => expired = true,
                            Err(JobFail::Panicked) => panicked.push(i),
                        }
                    }
                    if expired {
                        self.resilience
                            .deadline_expired
                            .fetch_add(1, Ordering::Relaxed);
                        return Err(ScoreError::DeadlineExceeded);
                    }
                    if !panicked.is_empty() {
                        if !self.degrade {
                            return Err(ScoreError::WorkerPanicked);
                        }
                        degraded = true;
                        for i in panicked {
                            out[i] = Some(heuristic_predict(problem, &normalized[i]));
                        }
                    }
                } else {
                    // Saturated with degradation on: answer every miss
                    // from the heuristic instead of shedding.
                    degraded = true;
                    for &i in &misses {
                        out[i] = Some(heuristic_predict(problem, &normalized[i]));
                    }
                }
            }
        }
        if degraded {
            self.note_degraded(statements.len());
        }
        Ok(ScoredBatch {
            generation,
            degraded,
            predictions: out
                .into_iter()
                .map(|p| p.expect("every slot filled"))
                .collect(),
        })
    }

    fn note_degraded(&self, statements: usize) {
        self.resilience
            .degraded_responses
            .fetch_add(1, Ordering::Relaxed);
        self.resilience
            .degraded_statements
            .fetch_add(statements as u64, Ordering::Relaxed);
    }

    /// Degradation ladder for a problem the live bundle cannot answer:
    /// the previous pinned generation if it can (responses stamped with
    /// *its* generation), else the length heuristic.
    fn degraded_unknown_problem(
        &self,
        problem: Problem,
        statements: &[String],
        live: &LiveBundle,
    ) -> ScoredBatch {
        let normalized: Vec<String> = statements.iter().map(|s| normalize_statement(s)).collect();
        if let Some(prev) = self.registry.previous() {
            if prev.bundle.model(problem).is_some() {
                if let Ok(predictions) = catch_unwind(AssertUnwindSafe(|| {
                    self.score_batch_now(&prev, problem, &normalized)
                })) {
                    self.note_degraded(statements.len());
                    return ScoredBatch {
                        generation: prev.generation,
                        degraded: true,
                        predictions,
                    };
                }
                self.resilience
                    .worker_panics
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        self.note_degraded(statements.len());
        ScoredBatch {
            generation: live.generation,
            degraded: true,
            predictions: normalized
                .iter()
                .map(|n| heuristic_predict(problem, n))
                .collect(),
        }
    }

    /// Score one batch against the bundle it was admitted under and
    /// populate the cache for that generation.
    fn score_batch_now(
        &self,
        live: &LiveBundle,
        problem: Problem,
        normalized: &[String],
    ) -> Vec<Prediction> {
        // Injection points for the chaos suite: an artificial stall
        // (arg = milliseconds) and a worker panic — both caught by the
        // unwind guards around every call site.
        if let Some(ms) = sqlan_fault::fire_arg("score.stall") {
            std::thread::sleep(Duration::from_millis(ms.max(1)));
        }
        if sqlan_fault::fires("score.panic") {
            panic!("injected: scoring panic");
        }
        let model = live
            .bundle
            .model(problem)
            .expect("admission validated the problem against this same bundle");
        let preds: Vec<Prediction> = timed("batch_score", normalized.len() as u64, || {
            if problem.is_classification() {
                let proba = model.predict_proba_batch(normalized);
                proba
                    .into_iter()
                    .map(|p| Prediction {
                        class: Some(sqlan_ml::argmax(&p)),
                        proba: Some(p),
                        value: None,
                    })
                    .collect()
            } else {
                model
                    .predict_value_batch(normalized)
                    .into_iter()
                    .map(|v| Prediction {
                        class: None,
                        proba: None,
                        value: Some(v),
                    })
                    .collect()
            }
        });
        let n = normalized.len() as u64;
        self.batch_stats.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_stats.statements.fetch_add(n, Ordering::Relaxed);
        self.batch_stats.max_batch.fetch_max(n, Ordering::Relaxed);
        for (s, p) in normalized.iter().zip(&preds) {
            self.cache
                .put(problem, s.clone(), live.generation, p.clone());
        }
        preds
    }

    /// Gather up to the remaining batch capacity of jobs matching `same`
    /// from anywhere in the queue, preserving their relative order.
    fn gather_matching(
        &self,
        q: &mut QueueState,
        batch: &mut Vec<Job>,
        same: &impl Fn(&Job) -> bool,
    ) {
        let mut i = 0;
        while i < q.jobs.len() && batch.len() < self.cfg.max_batch {
            if same(&q.jobs[i]) {
                batch.push(q.jobs.remove(i).expect("index checked"));
            } else {
                i += 1;
            }
        }
    }

    /// Worker: pick the next problem by deficit round robin (per-problem
    /// credit carries over between batches, so no problem starves behind
    /// a flood for another), gather its jobs from anywhere in the queue,
    /// hold the batch open (up to `max_wait`) for stragglers, score,
    /// reply. Within one problem jobs stay in arrival order.
    fn worker_loop(&self) {
        loop {
            let batch: Vec<Job> = {
                let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if !q.jobs.is_empty() {
                        break;
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    q = self
                        .work_ready
                        .wait_timeout(q, Duration::from_millis(50))
                        .expect("queue lock")
                        .0;
                }
                // Oldest queue position per present problem, then the
                // carried-credit winner takes the batch.
                let mut first: [Option<usize>; Problem::ALL.len()] = Default::default();
                for (pos, j) in q.jobs.iter().enumerate() {
                    let slot = &mut first[pidx(j.problem)];
                    if slot.is_none() {
                        *slot = Some(pos);
                    }
                }
                let win = drr_select(&first, &mut q.credit, self.cfg.max_batch as u32);
                let lead = q
                    .jobs
                    .remove(first[win].expect("winner is present"))
                    .expect("position valid");
                let problem = lead.problem;
                let live = Arc::clone(&lead.live);
                let same = |j: &Job| j.problem == problem && Arc::ptr_eq(&j.live, &live);
                let mut batch = vec![lead];
                let deadline = Instant::now() + self.cfg.max_wait;
                loop {
                    self.gather_matching(&mut q, &mut batch, &same);
                    if batch.len() >= self.cfg.max_batch || self.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, timed_out) = self
                        .work_ready
                        .wait_timeout(q, deadline - now)
                        .expect("queue lock");
                    q = guard;
                    if timed_out.timed_out() {
                        // Drain anything that raced in, then close the batch.
                        self.gather_matching(&mut q, &mut batch, &same);
                        break;
                    }
                }
                q.credit[win] = q.credit[win].saturating_sub(batch.len() as u32);
                batch
            };
            // Expired jobs are dropped here, before the model forward —
            // their callers get 504s; the batch scores only live work.
            let now = Instant::now();
            let (batch, expired): (Vec<Job>, Vec<Job>) = batch
                .into_iter()
                .partition(|j| j.deadline.is_none_or(|d| now < d));
            for j in expired {
                let _ = j.reply.send((j.index, Err(JobFail::Expired)));
            }
            if batch.is_empty() {
                continue;
            }
            let problem = batch[0].problem;
            let live = Arc::clone(&batch[0].live);
            let stmts: Vec<String> = batch.iter().map(|j| j.normalized.clone()).collect();
            // One `queue_wait` span per distinct member request (earliest
            // admission among its jobs), then score with every member
            // trace installed so `batch_score` / `featurize` spans fan
            // out to all requests the batch serves.
            let mut member_traces: Vec<(Arc<TraceCtx>, Instant, u64)> = Vec::new();
            for j in &batch {
                if let Some(t) = &j.trace {
                    match member_traces.iter_mut().find(|(x, _, _)| Arc::ptr_eq(x, t)) {
                        Some(e) => {
                            e.1 = e.1.min(j.admitted);
                            e.2 += 1;
                        }
                        None => member_traces.push((Arc::clone(t), j.admitted, 1)),
                    }
                }
            }
            let drained = Instant::now();
            for (t, admitted, n) in &member_traces {
                t.record(
                    "queue_wait",
                    *admitted,
                    drained.saturating_duration_since(*admitted),
                    *n,
                );
            }
            let installed: Vec<Arc<TraceCtx>> = member_traces
                .iter()
                .map(|(t, _, _)| Arc::clone(t))
                .collect();
            // The scoring call is unwind-guarded: a panicking model (or
            // injected fault) fails this batch with typed replies instead
            // of killing the worker and stranding every caller in it.
            let result = catch_unwind(AssertUnwindSafe(|| {
                let _g = install(&installed);
                self.score_batch_now(&live, problem, &stmts)
            }));
            match result {
                Ok(preds) => {
                    for (job, pred) in batch.into_iter().zip(preds) {
                        // A dropped receiver (caller gave up) is fine.
                        let _ = job.reply.send((job.index, Ok(pred)));
                    }
                }
                Err(_) => {
                    self.resilience
                        .worker_panics
                        .fetch_add(1, Ordering::Relaxed);
                    for job in batch {
                        let _ = job.reply.send((job.index, Err(JobFail::Panicked)));
                    }
                }
            }
        }
    }

    /// Stop accepting work, finish queued jobs, join workers.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.work_ready.notify_all();
        let handles = std::mem::take(&mut *self.workers.lock().expect("workers lock"));
        for h in handles {
            let _ = h.join();
        }
        // Workers exit only on an empty queue; anything that raced in
        // after the flag gets its sender dropped here, unblocking callers.
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .jobs
            .clear();
    }
}

/// The degradation ladder's last rung: a deterministic, model-free
/// prediction from statement length alone. Clearly worse than a trained
/// model — the point is a well-formed answer under `degraded:true`
/// instead of an error.
pub fn heuristic_predict(problem: Problem, normalized: &str) -> Prediction {
    if problem.is_classification() {
        let n = problem.n_classes().max(1);
        let class = normalized.len() % n;
        let mut proba = vec![0.0f32; n];
        proba[class] = 1.0;
        Prediction {
            class: Some(class),
            proba: Some(proba),
            value: None,
        }
    } else {
        Prediction {
            class: None,
            proba: None,
            value: Some((1.0 + normalized.len() as f64).ln()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drr_first_round_is_fifo() {
        // All credits start equal, so the tie breaks to the oldest job.
        let mut credit = [0u32; 4];
        let first = [Some(3), Some(0), None, Some(1)];
        assert_eq!(drr_select(&first, &mut credit, 64), 1);
    }

    #[test]
    fn drr_carried_credit_beats_fifo_flood() {
        // Problem 0 floods (always first in the queue) but problem 1's
        // carried-over credit wins it a batch after waiting one round.
        let mut credit = [0u32; 4];
        let first = [Some(0), Some(5), None, None];
        let w = drr_select(&first, &mut credit, 64);
        assert_eq!(w, 0, "first round is FIFO");
        credit[w] = credit[w].saturating_sub(64); // full batch served
        let w2 = drr_select(&first, &mut credit, 64);
        assert_eq!(w2, 1, "waiting problem carried its credit over");
    }

    #[test]
    fn drr_absent_problem_forfeits_credit() {
        let mut credit = [0u32, 200, 0, 0];
        let first = [Some(0), None, None, None];
        assert_eq!(drr_select(&first, &mut credit, 64), 0);
        assert_eq!(credit[1], 0, "idle problem cannot hoard credit");
    }

    #[test]
    fn drr_credit_is_capped() {
        let mut credit = [0u32; 4];
        // Present but never served: credit must not grow unbounded.
        let first = [Some(0), Some(1), None, None];
        for _ in 0..100 {
            let w = drr_select(&first, &mut credit, 64);
            credit[w] = credit[w].saturating_sub(64);
        }
        assert!(credit.iter().all(|&c| c <= 4 * 64));
    }
}
