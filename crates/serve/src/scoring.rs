//! The batched scoring engine.
//!
//! Requests are admitted into a bounded micro-batching queue; scoring
//! workers drain up to `max_batch` statements for one problem (waiting at
//! most `max_wait` for stragglers to fill the batch) and score them in a
//! single `predict_*_batch` call. For the neural models that call is
//! *true batched forward* — the batch plans into length-bucketed tiles
//! and each tile runs one tensorized tape (one `(B,K)·(K,N)` matmul per
//! layer), bit-identical to per-statement scoring, rather than a
//! `par_map` of per-statement graphs — so the micro-batching queue buys
//! real kernel-level batching, not just thread fan-out. A full queue
//! sheds the request instead of queueing unbounded work
//! ([`ScoreError::Saturated`] → HTTP 503 upstream).
//!
//! The cache sits in front of the queue: hits answer immediately from the
//! sharded LRU ([`crate::cache::PredictionCache`]); only misses are
//! queued, and workers populate the cache under the generation they
//! scored with, so a hot-swapped bundle never serves stale entries.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use sqlan_core::Problem;
use sqlan_obs::trace::{install, timed};
use sqlan_obs::TraceCtx;

use crate::cache::{normalize_statement, PredictionCache};
use crate::registry::{LiveBundle, ModelRegistry};

/// One scored statement. Classification problems fill `class` + `proba`,
/// regression problems fill `value` (log-label space, matching
/// `TrainedModel::predict_value`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    pub class: Option<usize>,
    pub proba: Option<Vec<f32>>,
    pub value: Option<f64>,
}

/// A scored request: the predictions plus the bundle generation that
/// produced them (the generation the request was *admitted* under —
/// jobs pin that bundle even across a concurrent hot swap).
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredBatch {
    pub generation: u64,
    pub predictions: Vec<Prediction>,
}

/// Why a scoring request was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScoreError {
    /// The queue is full — shed instead of queueing unbounded work.
    Saturated,
    /// The live bundle has no model for this problem.
    UnknownProblem(Problem),
    /// The engine is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for ScoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScoreError::Saturated => f.write_str("scoring queue saturated"),
            ScoreError::UnknownProblem(p) => write!(f, "no model for problem `{p}`"),
            ScoreError::ShuttingDown => f.write_str("engine shutting down"),
        }
    }
}

impl std::error::Error for ScoreError {}

/// Micro-batching and cache knobs.
#[derive(Debug, Clone, Copy)]
pub struct ScoringConfig {
    /// Scoring worker threads. `0` scores inline on the caller thread
    /// (no queue — useful for tests and single-tenant embedding).
    pub workers: usize,
    /// Statements per scoring batch.
    pub max_batch: usize,
    /// How long a worker holds a non-full batch open for stragglers.
    pub max_wait: Duration,
    /// Queued-statement bound; admission beyond it sheds the request.
    pub queue_capacity: usize,
    /// Total prediction-cache entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Cache shard count.
    pub cache_shards: usize,
}

impl Default for ScoringConfig {
    fn default() -> ScoringConfig {
        ScoringConfig {
            workers: 2,
            max_batch: 64,
            max_wait: Duration::from_millis(2),
            queue_capacity: 4096,
            cache_capacity: 65_536,
            cache_shards: 16,
        }
    }
}

struct Job {
    problem: Problem,
    normalized: String,
    /// The bundle the job was admitted against. Scoring uses exactly
    /// this bundle, so a concurrent hot swap to one *without* the
    /// problem can never strand the job (admission already validated
    /// it here), and the cache entry lands under the right generation.
    live: Arc<LiveBundle>,
    /// Caller's scatter index and reply channel.
    index: usize,
    reply: mpsc::Sender<(usize, Prediction)>,
    /// The request trace this job belongs to, if one was minted at the
    /// HTTP edge. Workers dedup per-trace before recording spans, so a
    /// many-statement request gets one `queue_wait` / `batch_score`
    /// span per batch, not one per statement.
    trace: Option<Arc<TraceCtx>>,
    /// When the job entered the queue (start of its `queue_wait` span).
    admitted: Instant,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("problem", &self.problem)
            .field("index", &self.index)
            .finish()
    }
}

#[derive(Debug, Default)]
pub struct BatchStats {
    /// Scoring batches executed.
    pub batches: AtomicU64,
    /// Statements scored through batches (batched_statements / batches =
    /// achieved batch size).
    pub statements: AtomicU64,
    /// Largest batch observed.
    pub max_batch: AtomicU64,
}

/// Queue state shared by admission and the workers: the jobs plus the
/// per-problem deficit-round-robin credit that decides which problem
/// the next batch serves.
#[derive(Debug, Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    /// Carried-over service credit per problem (indexed by position in
    /// [`Problem::ALL`]). A problem earns one quantum each time a batch
    /// is cut while it has jobs waiting, and spends what a batch serves;
    /// unspent credit carries over, so a trickle of jobs for one problem
    /// cannot be starved behind a flood for another.
    credit: [u32; Problem::ALL.len()],
}

#[inline]
fn pidx(p: Problem) -> usize {
    Problem::ALL
        .iter()
        .position(|&q| q == p)
        .expect("problem in ALL")
}

/// Deficit-round-robin selection: every present problem (`first[i]` is
/// the queue position of its oldest job) earns `quantum`, then the
/// highest-credit present problem wins, ties broken FIFO by oldest job.
/// Absent problems forfeit their credit (no hoarding while idle).
/// Credit is capped at `4 * quantum` so a long-present, rarely-chosen
/// problem cannot bank unbounded priority. Returns the winning index
/// into [`Problem::ALL`].
fn drr_select(first: &[Option<usize>], credit: &mut [u32], quantum: u32) -> usize {
    let mut winner: Option<usize> = None;
    for i in 0..first.len() {
        match first[i] {
            None => credit[i] = 0,
            Some(pos) => {
                credit[i] = (credit[i] + quantum).min(4 * quantum);
                let better = match winner {
                    None => true,
                    Some(w) => {
                        credit[i] > credit[w]
                            || (credit[i] == credit[w]
                                && pos < first[w].expect("winner is present"))
                    }
                };
                if better {
                    winner = Some(i);
                }
            }
        }
    }
    winner.expect("at least one problem present")
}

/// The engine: cache → queue → scoring workers.
#[derive(Debug)]
pub struct ScoringEngine {
    registry: Arc<ModelRegistry>,
    cache: PredictionCache,
    cfg: ScoringConfig,
    queue: Mutex<QueueState>,
    /// Signals workers (new work / shutdown).
    work_ready: Condvar,
    shutdown: AtomicBool,
    pub batch_stats: BatchStats,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ScoringEngine {
    /// Build the engine and spawn its scoring workers.
    pub fn start(registry: Arc<ModelRegistry>, cfg: ScoringConfig) -> Arc<ScoringEngine> {
        let engine = Arc::new(ScoringEngine {
            registry,
            cache: PredictionCache::new(cfg.cache_capacity, cfg.cache_shards),
            cfg,
            queue: Mutex::new(QueueState::default()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            batch_stats: BatchStats::default(),
            workers: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(cfg.workers);
        for i in 0..cfg.workers {
            let e = Arc::clone(&engine);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("sqlan-score-{i}"))
                    .spawn(move || e.worker_loop())
                    .expect("spawn scoring worker"),
            );
        }
        *engine.workers.lock().expect("workers lock") = handles;
        engine
    }

    /// The registry this engine scores against.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The prediction cache (for metrics).
    pub fn cache(&self) -> &PredictionCache {
        &self.cache
    }

    /// Statements currently queued.
    pub fn queue_depth(&self) -> usize {
        self.queue.lock().expect("queue lock").jobs.len()
    }

    /// Score `statements` for `problem`: cache hits answer immediately,
    /// misses ride the micro-batching queue. Results come back in input
    /// order, stamped with the generation that scored them. Sheds
    /// (without enqueueing anything) if the misses would overflow the
    /// queue.
    pub fn score(
        &self,
        problem: Problem,
        statements: &[String],
    ) -> Result<ScoredBatch, ScoreError> {
        self.score_traced(problem, statements, None)
    }

    /// [`ScoringEngine::score`] carrying the request trace minted at the
    /// HTTP edge: jobs pin it across the queue so spans recorded on a
    /// scoring worker (`queue_wait`, `batch_score`, `featurize`) attach
    /// to the originating request.
    pub fn score_traced(
        &self,
        problem: Problem,
        statements: &[String],
        trace: Option<&Arc<TraceCtx>>,
    ) -> Result<ScoredBatch, ScoreError> {
        if self.shutdown.load(Ordering::Acquire) {
            return Err(ScoreError::ShuttingDown);
        }
        let live = self.registry.current();
        if live.bundle.model(problem).is_none() {
            return Err(ScoreError::UnknownProblem(problem));
        }
        let generation = live.generation;

        let normalized: Vec<String> = timed("normalize", statements.len() as u64, || {
            statements.iter().map(|s| normalize_statement(s)).collect()
        });
        let mut out: Vec<Option<Prediction>> = vec![None; statements.len()];
        let mut misses: Vec<usize> = Vec::new();
        timed("cache_probe", statements.len() as u64, || {
            for (i, n) in normalized.iter().enumerate() {
                // Duplicate statements within one request dedup through the
                // cache only if an earlier batch already stored them; within
                // this request each occurrence is scored (identical inputs
                // produce identical outputs, so semantics are unaffected).
                match self.cache.get(problem, n, generation) {
                    Some(p) => out[i] = Some(p),
                    None => misses.push(i),
                }
            }
        });

        if !misses.is_empty() {
            if self.cfg.workers == 0 {
                // Inline path: one batch call on the caller thread.
                let stmts: Vec<String> = misses.iter().map(|&i| normalized[i].clone()).collect();
                let preds = self.score_batch_now(&live, problem, &stmts);
                for (&i, p) in misses.iter().zip(preds) {
                    out[i] = Some(p);
                }
            } else {
                let (tx, rx) = mpsc::channel();
                {
                    let mut q = self.queue.lock().expect("queue lock");
                    // Re-checked under the queue lock: `shutdown()` joins
                    // workers after setting the flag, so a store observed
                    // here means no worker will ever drain jobs we would
                    // push — without this check a racing caller could
                    // enqueue past a completed shutdown and block on
                    // `recv` forever.
                    if self.shutdown.load(Ordering::Acquire) {
                        return Err(ScoreError::ShuttingDown);
                    }
                    if q.jobs.len() + misses.len() > self.cfg.queue_capacity {
                        return Err(ScoreError::Saturated);
                    }
                    let admitted = Instant::now();
                    for &i in &misses {
                        q.jobs.push_back(Job {
                            problem,
                            normalized: normalized[i].clone(),
                            live: Arc::clone(&live),
                            index: i,
                            reply: tx.clone(),
                            trace: trace.map(Arc::clone),
                            admitted,
                        });
                    }
                }
                self.work_ready.notify_all();
                drop(tx);
                for _ in 0..misses.len() {
                    let (i, p) = rx.recv().map_err(|_| ScoreError::ShuttingDown)?;
                    out[i] = Some(p);
                }
            }
        }
        Ok(ScoredBatch {
            generation,
            predictions: out
                .into_iter()
                .map(|p| p.expect("every slot filled"))
                .collect(),
        })
    }

    /// Score one batch against the bundle it was admitted under and
    /// populate the cache for that generation.
    fn score_batch_now(
        &self,
        live: &LiveBundle,
        problem: Problem,
        normalized: &[String],
    ) -> Vec<Prediction> {
        let model = live
            .bundle
            .model(problem)
            .expect("admission validated the problem against this same bundle");
        let preds: Vec<Prediction> = timed("batch_score", normalized.len() as u64, || {
            if problem.is_classification() {
                let proba = model.predict_proba_batch(normalized);
                proba
                    .into_iter()
                    .map(|p| Prediction {
                        class: Some(sqlan_ml::argmax(&p)),
                        proba: Some(p),
                        value: None,
                    })
                    .collect()
            } else {
                model
                    .predict_value_batch(normalized)
                    .into_iter()
                    .map(|v| Prediction {
                        class: None,
                        proba: None,
                        value: Some(v),
                    })
                    .collect()
            }
        });
        let n = normalized.len() as u64;
        self.batch_stats.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_stats.statements.fetch_add(n, Ordering::Relaxed);
        self.batch_stats.max_batch.fetch_max(n, Ordering::Relaxed);
        for (s, p) in normalized.iter().zip(&preds) {
            self.cache
                .put(problem, s.clone(), live.generation, p.clone());
        }
        preds
    }

    /// Gather up to the remaining batch capacity of jobs matching `same`
    /// from anywhere in the queue, preserving their relative order.
    fn gather_matching(
        &self,
        q: &mut QueueState,
        batch: &mut Vec<Job>,
        same: &impl Fn(&Job) -> bool,
    ) {
        let mut i = 0;
        while i < q.jobs.len() && batch.len() < self.cfg.max_batch {
            if same(&q.jobs[i]) {
                batch.push(q.jobs.remove(i).expect("index checked"));
            } else {
                i += 1;
            }
        }
    }

    /// Worker: pick the next problem by deficit round robin (per-problem
    /// credit carries over between batches, so no problem starves behind
    /// a flood for another), gather its jobs from anywhere in the queue,
    /// hold the batch open (up to `max_wait`) for stragglers, score,
    /// reply. Within one problem jobs stay in arrival order.
    fn worker_loop(&self) {
        loop {
            let batch: Vec<Job> = {
                let mut q = self.queue.lock().expect("queue lock");
                loop {
                    if !q.jobs.is_empty() {
                        break;
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    q = self
                        .work_ready
                        .wait_timeout(q, Duration::from_millis(50))
                        .expect("queue lock")
                        .0;
                }
                // Oldest queue position per present problem, then the
                // carried-credit winner takes the batch.
                let mut first: [Option<usize>; Problem::ALL.len()] = Default::default();
                for (pos, j) in q.jobs.iter().enumerate() {
                    let slot = &mut first[pidx(j.problem)];
                    if slot.is_none() {
                        *slot = Some(pos);
                    }
                }
                let win = drr_select(&first, &mut q.credit, self.cfg.max_batch as u32);
                let lead = q
                    .jobs
                    .remove(first[win].expect("winner is present"))
                    .expect("position valid");
                let problem = lead.problem;
                let live = Arc::clone(&lead.live);
                let same = |j: &Job| j.problem == problem && Arc::ptr_eq(&j.live, &live);
                let mut batch = vec![lead];
                let deadline = Instant::now() + self.cfg.max_wait;
                loop {
                    self.gather_matching(&mut q, &mut batch, &same);
                    if batch.len() >= self.cfg.max_batch || self.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, timed_out) = self
                        .work_ready
                        .wait_timeout(q, deadline - now)
                        .expect("queue lock");
                    q = guard;
                    if timed_out.timed_out() {
                        // Drain anything that raced in, then close the batch.
                        self.gather_matching(&mut q, &mut batch, &same);
                        break;
                    }
                }
                q.credit[win] = q.credit[win].saturating_sub(batch.len() as u32);
                batch
            };
            let problem = batch[0].problem;
            let live = Arc::clone(&batch[0].live);
            let stmts: Vec<String> = batch.iter().map(|j| j.normalized.clone()).collect();
            // One `queue_wait` span per distinct member request (earliest
            // admission among its jobs), then score with every member
            // trace installed so `batch_score` / `featurize` spans fan
            // out to all requests the batch serves.
            let mut member_traces: Vec<(Arc<TraceCtx>, Instant, u64)> = Vec::new();
            for j in &batch {
                if let Some(t) = &j.trace {
                    match member_traces.iter_mut().find(|(x, _, _)| Arc::ptr_eq(x, t)) {
                        Some(e) => {
                            e.1 = e.1.min(j.admitted);
                            e.2 += 1;
                        }
                        None => member_traces.push((Arc::clone(t), j.admitted, 1)),
                    }
                }
            }
            let drained = Instant::now();
            for (t, admitted, n) in &member_traces {
                t.record(
                    "queue_wait",
                    *admitted,
                    drained.saturating_duration_since(*admitted),
                    *n,
                );
            }
            let installed: Vec<Arc<TraceCtx>> = member_traces
                .iter()
                .map(|(t, _, _)| Arc::clone(t))
                .collect();
            let preds = {
                let _g = install(&installed);
                self.score_batch_now(&live, problem, &stmts)
            };
            for (job, pred) in batch.into_iter().zip(preds) {
                // A dropped receiver (caller gave up) is fine.
                let _ = job.reply.send((job.index, pred));
            }
        }
    }

    /// Stop accepting work, finish queued jobs, join workers.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.work_ready.notify_all();
        let handles = std::mem::take(&mut *self.workers.lock().expect("workers lock"));
        for h in handles {
            let _ = h.join();
        }
        // Workers exit only on an empty queue; anything that raced in
        // after the flag gets its sender dropped here, unblocking callers.
        self.queue.lock().expect("queue lock").jobs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drr_first_round_is_fifo() {
        // All credits start equal, so the tie breaks to the oldest job.
        let mut credit = [0u32; 4];
        let first = [Some(3), Some(0), None, Some(1)];
        assert_eq!(drr_select(&first, &mut credit, 64), 1);
    }

    #[test]
    fn drr_carried_credit_beats_fifo_flood() {
        // Problem 0 floods (always first in the queue) but problem 1's
        // carried-over credit wins it a batch after waiting one round.
        let mut credit = [0u32; 4];
        let first = [Some(0), Some(5), None, None];
        let w = drr_select(&first, &mut credit, 64);
        assert_eq!(w, 0, "first round is FIFO");
        credit[w] = credit[w].saturating_sub(64); // full batch served
        let w2 = drr_select(&first, &mut credit, 64);
        assert_eq!(w2, 1, "waiting problem carried its credit over");
    }

    #[test]
    fn drr_absent_problem_forfeits_credit() {
        let mut credit = [0u32, 200, 0, 0];
        let first = [Some(0), None, None, None];
        assert_eq!(drr_select(&first, &mut credit, 64), 0);
        assert_eq!(credit[1], 0, "idle problem cannot hoard credit");
    }

    #[test]
    fn drr_credit_is_capped() {
        let mut credit = [0u32; 4];
        // Present but never served: credit must not grow unbounded.
        let first = [Some(0), Some(1), None, None];
        for _ in 0..100 {
            let w = drr_select(&first, &mut credit, 64);
            credit[w] = credit[w].saturating_sub(64);
        }
        assert!(credit.iter().all(|&c| c <= 4 * 64));
    }
}
