//! The batched scoring engine.
//!
//! Requests are admitted into a bounded micro-batching queue; scoring
//! workers drain up to `max_batch` statements for one problem (waiting at
//! most `max_wait` for stragglers to fill the batch) and score them in a
//! single `predict_*_batch` call. For the neural models that call is
//! *true batched forward* — the batch plans into length-bucketed tiles
//! and each tile runs one tensorized tape (one `(B,K)·(K,N)` matmul per
//! layer), bit-identical to per-statement scoring, rather than a
//! `par_map` of per-statement graphs — so the micro-batching queue buys
//! real kernel-level batching, not just thread fan-out. A full queue
//! sheds the request instead of queueing unbounded work
//! ([`ScoreError::Saturated`] → HTTP 503 upstream).
//!
//! The cache sits in front of the queue: hits answer immediately from the
//! sharded LRU ([`crate::cache::PredictionCache`]); only misses are
//! queued, and workers populate the cache under the generation they
//! scored with, so a hot-swapped bundle never serves stale entries.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use sqlan_core::Problem;

use crate::cache::{normalize_statement, PredictionCache};
use crate::registry::{LiveBundle, ModelRegistry};

/// One scored statement. Classification problems fill `class` + `proba`,
/// regression problems fill `value` (log-label space, matching
/// `TrainedModel::predict_value`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    pub class: Option<usize>,
    pub proba: Option<Vec<f32>>,
    pub value: Option<f64>,
}

/// A scored request: the predictions plus the bundle generation that
/// produced them (the generation the request was *admitted* under —
/// jobs pin that bundle even across a concurrent hot swap).
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredBatch {
    pub generation: u64,
    pub predictions: Vec<Prediction>,
}

/// Why a scoring request was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScoreError {
    /// The queue is full — shed instead of queueing unbounded work.
    Saturated,
    /// The live bundle has no model for this problem.
    UnknownProblem(Problem),
    /// The engine is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for ScoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScoreError::Saturated => f.write_str("scoring queue saturated"),
            ScoreError::UnknownProblem(p) => write!(f, "no model for problem `{p}`"),
            ScoreError::ShuttingDown => f.write_str("engine shutting down"),
        }
    }
}

impl std::error::Error for ScoreError {}

/// Micro-batching and cache knobs.
#[derive(Debug, Clone, Copy)]
pub struct ScoringConfig {
    /// Scoring worker threads. `0` scores inline on the caller thread
    /// (no queue — useful for tests and single-tenant embedding).
    pub workers: usize,
    /// Statements per scoring batch.
    pub max_batch: usize,
    /// How long a worker holds a non-full batch open for stragglers.
    pub max_wait: Duration,
    /// Queued-statement bound; admission beyond it sheds the request.
    pub queue_capacity: usize,
    /// Total prediction-cache entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Cache shard count.
    pub cache_shards: usize,
}

impl Default for ScoringConfig {
    fn default() -> ScoringConfig {
        ScoringConfig {
            workers: 2,
            max_batch: 64,
            max_wait: Duration::from_millis(2),
            queue_capacity: 4096,
            cache_capacity: 65_536,
            cache_shards: 16,
        }
    }
}

struct Job {
    problem: Problem,
    normalized: String,
    /// The bundle the job was admitted against. Scoring uses exactly
    /// this bundle, so a concurrent hot swap to one *without* the
    /// problem can never strand the job (admission already validated
    /// it here), and the cache entry lands under the right generation.
    live: Arc<LiveBundle>,
    /// Caller's scatter index and reply channel.
    index: usize,
    reply: mpsc::Sender<(usize, Prediction)>,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("problem", &self.problem)
            .field("index", &self.index)
            .finish()
    }
}

#[derive(Debug, Default)]
pub struct BatchStats {
    /// Scoring batches executed.
    pub batches: AtomicU64,
    /// Statements scored through batches (batched_statements / batches =
    /// achieved batch size).
    pub statements: AtomicU64,
    /// Largest batch observed.
    pub max_batch: AtomicU64,
}

/// The engine: cache → queue → scoring workers.
#[derive(Debug)]
pub struct ScoringEngine {
    registry: Arc<ModelRegistry>,
    cache: PredictionCache,
    cfg: ScoringConfig,
    queue: Mutex<VecDeque<Job>>,
    /// Signals workers (new work / shutdown).
    work_ready: Condvar,
    shutdown: AtomicBool,
    pub batch_stats: BatchStats,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ScoringEngine {
    /// Build the engine and spawn its scoring workers.
    pub fn start(registry: Arc<ModelRegistry>, cfg: ScoringConfig) -> Arc<ScoringEngine> {
        let engine = Arc::new(ScoringEngine {
            registry,
            cache: PredictionCache::new(cfg.cache_capacity, cfg.cache_shards),
            cfg,
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            batch_stats: BatchStats::default(),
            workers: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(cfg.workers);
        for i in 0..cfg.workers {
            let e = Arc::clone(&engine);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("sqlan-score-{i}"))
                    .spawn(move || e.worker_loop())
                    .expect("spawn scoring worker"),
            );
        }
        *engine.workers.lock().expect("workers lock") = handles;
        engine
    }

    /// The registry this engine scores against.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The prediction cache (for metrics).
    pub fn cache(&self) -> &PredictionCache {
        &self.cache
    }

    /// Statements currently queued.
    pub fn queue_depth(&self) -> usize {
        self.queue.lock().expect("queue lock").len()
    }

    /// Score `statements` for `problem`: cache hits answer immediately,
    /// misses ride the micro-batching queue. Results come back in input
    /// order, stamped with the generation that scored them. Sheds
    /// (without enqueueing anything) if the misses would overflow the
    /// queue.
    pub fn score(
        &self,
        problem: Problem,
        statements: &[String],
    ) -> Result<ScoredBatch, ScoreError> {
        if self.shutdown.load(Ordering::Acquire) {
            return Err(ScoreError::ShuttingDown);
        }
        let live = self.registry.current();
        if live.bundle.model(problem).is_none() {
            return Err(ScoreError::UnknownProblem(problem));
        }
        let generation = live.generation;

        let normalized: Vec<String> = statements.iter().map(|s| normalize_statement(s)).collect();
        let mut out: Vec<Option<Prediction>> = vec![None; statements.len()];
        let mut misses: Vec<usize> = Vec::new();
        for (i, n) in normalized.iter().enumerate() {
            // Duplicate statements within one request dedup through the
            // cache only if an earlier batch already stored them; within
            // this request each occurrence is scored (identical inputs
            // produce identical outputs, so semantics are unaffected).
            match self.cache.get(problem, n, generation) {
                Some(p) => out[i] = Some(p),
                None => misses.push(i),
            }
        }

        if !misses.is_empty() {
            if self.cfg.workers == 0 {
                // Inline path: one batch call on the caller thread.
                let stmts: Vec<String> = misses.iter().map(|&i| normalized[i].clone()).collect();
                let preds = self.score_batch_now(&live, problem, &stmts);
                for (&i, p) in misses.iter().zip(preds) {
                    out[i] = Some(p);
                }
            } else {
                let (tx, rx) = mpsc::channel();
                {
                    let mut q = self.queue.lock().expect("queue lock");
                    // Re-checked under the queue lock: `shutdown()` joins
                    // workers after setting the flag, so a store observed
                    // here means no worker will ever drain jobs we would
                    // push — without this check a racing caller could
                    // enqueue past a completed shutdown and block on
                    // `recv` forever.
                    if self.shutdown.load(Ordering::Acquire) {
                        return Err(ScoreError::ShuttingDown);
                    }
                    if q.len() + misses.len() > self.cfg.queue_capacity {
                        return Err(ScoreError::Saturated);
                    }
                    for &i in &misses {
                        q.push_back(Job {
                            problem,
                            normalized: normalized[i].clone(),
                            live: Arc::clone(&live),
                            index: i,
                            reply: tx.clone(),
                        });
                    }
                }
                self.work_ready.notify_all();
                drop(tx);
                for _ in 0..misses.len() {
                    let (i, p) = rx.recv().map_err(|_| ScoreError::ShuttingDown)?;
                    out[i] = Some(p);
                }
            }
        }
        Ok(ScoredBatch {
            generation,
            predictions: out
                .into_iter()
                .map(|p| p.expect("every slot filled"))
                .collect(),
        })
    }

    /// Score one batch against the bundle it was admitted under and
    /// populate the cache for that generation.
    fn score_batch_now(
        &self,
        live: &LiveBundle,
        problem: Problem,
        normalized: &[String],
    ) -> Vec<Prediction> {
        let model = live
            .bundle
            .model(problem)
            .expect("admission validated the problem against this same bundle");
        let preds: Vec<Prediction> = if problem.is_classification() {
            let proba = model.predict_proba_batch(normalized);
            proba
                .into_iter()
                .map(|p| Prediction {
                    class: Some(sqlan_ml::argmax(&p)),
                    proba: Some(p),
                    value: None,
                })
                .collect()
        } else {
            model
                .predict_value_batch(normalized)
                .into_iter()
                .map(|v| Prediction {
                    class: None,
                    proba: None,
                    value: Some(v),
                })
                .collect()
        };
        let n = normalized.len() as u64;
        self.batch_stats.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_stats.statements.fetch_add(n, Ordering::Relaxed);
        self.batch_stats.max_batch.fetch_max(n, Ordering::Relaxed);
        for (s, p) in normalized.iter().zip(&preds) {
            self.cache
                .put(problem, s.clone(), live.generation, p.clone());
        }
        preds
    }

    /// Worker: pop the oldest job, hold the batch open (up to `max_wait`)
    /// for more jobs of the same problem, score, reply. Jobs for other
    /// problems stay queued in order — FIFO across problems, batching
    /// within one.
    fn worker_loop(&self) {
        loop {
            let batch: Vec<Job> = {
                let mut q = self.queue.lock().expect("queue lock");
                loop {
                    if !q.is_empty() {
                        break;
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    q = self
                        .work_ready
                        .wait_timeout(q, Duration::from_millis(50))
                        .expect("queue lock")
                        .0;
                }
                let first = q.pop_front().expect("non-empty");
                let problem = first.problem;
                let live = Arc::clone(&first.live);
                let same = |j: &Job| j.problem == problem && Arc::ptr_eq(&j.live, &live);
                let mut batch = vec![first];
                let deadline = Instant::now() + self.cfg.max_wait;
                loop {
                    while batch.len() < self.cfg.max_batch && q.front().map(&same).unwrap_or(false)
                    {
                        batch.push(q.pop_front().expect("front checked"));
                    }
                    if batch.len() >= self.cfg.max_batch || self.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, timed_out) = self
                        .work_ready
                        .wait_timeout(q, deadline - now)
                        .expect("queue lock");
                    q = guard;
                    if timed_out.timed_out() {
                        // Drain anything that raced in, then close the batch.
                        while batch.len() < self.cfg.max_batch
                            && q.front().map(&same).unwrap_or(false)
                        {
                            batch.push(q.pop_front().expect("front checked"));
                        }
                        break;
                    }
                }
                batch
            };
            let problem = batch[0].problem;
            let live = Arc::clone(&batch[0].live);
            let stmts: Vec<String> = batch.iter().map(|j| j.normalized.clone()).collect();
            let preds = self.score_batch_now(&live, problem, &stmts);
            for (job, pred) in batch.into_iter().zip(preds) {
                // A dropped receiver (caller gave up) is fine.
                let _ = job.reply.send((job.index, pred));
            }
        }
    }

    /// Stop accepting work, finish queued jobs, join workers.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.work_ready.notify_all();
        let handles = std::mem::take(&mut *self.workers.lock().expect("workers lock"));
        for h in handles {
            let _ = h.join();
        }
        // Workers exit only on an empty queue; anything that raced in
        // after the flag gets its sender dropped here, unblocking callers.
        self.queue.lock().expect("queue lock").clear();
    }
}
