//! A minimal HTTP/1.1 implementation on `std::net` — request parsing,
//! keep-alive, and JSON responses. No network dependencies, consistent
//! with the workspace's offline compat-shim policy.
//!
//! Supported surface (all this service needs): request line + headers,
//! `Content-Length` bodies, `Connection: close`/`keep-alive`, and JSON
//! responses with correct `Content-Length`. Requests beyond the size
//! bounds are rejected rather than buffered.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Maximum request-head (request line + headers) bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum ParseError {
    /// Clean end of stream before a request started — connection done.
    Eof,
    Io(io::Error),
    /// Malformed request head → 400.
    Malformed(&'static str),
    /// Head or body over the size bound → 431/413.
    TooLarge(&'static str),
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> ParseError {
        ParseError::Io(e)
    }
}

/// Read one request from a keep-alive connection. `max_body` bounds the
/// accepted `Content-Length`.
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body: usize,
) -> Result<Request, ParseError> {
    let mut line = String::new();
    let mut head_bytes = 0usize;
    // Request line (tolerate a leading blank line, per RFC 7230 §3.5).
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ParseError::Eof);
        }
        head_bytes += n;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ParseError::TooLarge("request head"));
        }
        if !line.trim().is_empty() {
            break;
        }
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or(ParseError::Malformed("missing method"))?
        .to_string();
    let path = parts
        .next()
        .ok_or(ParseError::Malformed("missing path"))?
        .to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close.
    let mut keep_alive = !version.ends_with("1.0");

    let mut content_length = 0usize;
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ParseError::Malformed("eof in headers"));
        }
        head_bytes += n;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ParseError::TooLarge("request head"));
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(ParseError::Malformed("header without colon"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| ParseError::Malformed("bad content-length"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }
    if content_length > max_body {
        return Err(ParseError::TooLarge("request body"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        body,
        keep_alive,
    })
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a JSON response. `keep_alive` controls the `Connection` header;
/// the caller decides whether to actually reuse the stream.
pub fn write_json_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    // One buffer, one write: head and body in the same segment, so a
    // Nagle + delayed-ACK interaction can never stall the response.
    let mut response = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        status_text(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    response.push_str(body);
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trip a raw request through a local socket pair.
    fn parse(raw: &str) -> Result<Request, ParseError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        client.write_all(raw.as_bytes()).expect("write");
        drop(client); // half-close: server sees EOF after the payload
        let (server, _) = listener.accept().expect("accept");
        read_request(&mut BufReader::new(server), 1 << 20)
    }

    #[test]
    fn parses_post_with_body() {
        let r = parse("POST /predict HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd").expect("parse");
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/predict");
        assert_eq!(r.body, b"abcd");
        assert!(r.keep_alive);
    }

    #[test]
    fn connection_close_and_http10() {
        let r = parse("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").expect("parse");
        assert!(!r.keep_alive);
        let r = parse("GET /healthz HTTP/1.0\r\n\r\n").expect("parse");
        assert!(!r.keep_alive);
    }

    #[test]
    fn eof_before_request_is_eof() {
        assert!(matches!(parse(""), Err(ParseError::Eof)));
    }

    #[test]
    fn oversized_body_rejected() {
        let raw = "POST /predict HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n";
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        client.write_all(raw.as_bytes()).expect("write");
        let (server, _) = listener.accept().expect("accept");
        let got = read_request(&mut BufReader::new(server), 1024);
        assert!(matches!(got, Err(ParseError::TooLarge(_))));
    }

    #[test]
    fn malformed_header_rejected() {
        let got = parse("GET / HTTP/1.1\r\nbroken header line\r\n\r\n");
        assert!(matches!(got, Err(ParseError::Malformed(_))));
    }
}
