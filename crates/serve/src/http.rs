//! HTTP plumbing for the blocking (thread-per-connection) front end: an
//! adapter that feeds socket bytes into the shared sans-io parser
//! ([`sqlan_net::HttpParser`]) and a response writer.
//!
//! All parsing rules — the head byte bound enforced *during* buffering,
//! the byte-level head parse (non-UTF-8 → 400, not a silent drop),
//! `Content-Length` hygiene, `Connection` list tokenization — live in
//! `sqlan-net`, where the epoll event loop consumes the identical state
//! machine. This module only moves bytes and classifies I/O errors:
//! a read timeout on an idle keep-alive connection is [`ParseError::
//! Timeout`], a clean close at a request boundary is [`ParseError::Eof`],
//! and neither is confused with a protocol violation.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

pub use sqlan_net::{HttpError, HttpParser, Request, MAX_HEAD_BYTES};

/// Why no request came back from a connection read.
#[derive(Debug)]
pub enum ParseError {
    /// Clean end of stream at a request boundary — connection done.
    Eof,
    /// The socket read timed out (idle keep-alive or stalled client).
    Timeout,
    /// Transport failure.
    Io(io::Error),
    /// Protocol violation → answer with [`HttpError::status`] and close.
    Http(HttpError),
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> ParseError {
        ParseError::Io(e)
    }
}

/// Largest slice fed to the parser per read — keeps the parser's
/// bounded-absorb contract (chunks ≤ `MAX_HEAD_BYTES`).
const READ_CHUNK: usize = 8 * 1024;

/// Read one request from a keep-alive connection, feeding the
/// connection's persistent parser (pipelined bytes survive between
/// calls).
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    parser: &mut HttpParser,
) -> Result<Request, ParseError> {
    // A pipelined request may already be fully buffered.
    match parser.poll() {
        sqlan_net::Parse::Request(r) => return Ok(r),
        sqlan_net::Parse::Error(e) => return Err(ParseError::Http(e)),
        sqlan_net::Parse::Partial => {}
    }
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(ParseError::Timeout)
            }
            Err(e) => return Err(ParseError::Io(e)),
        };
        if chunk.is_empty() {
            return Err(if parser.is_idle() {
                ParseError::Eof
            } else {
                ParseError::Http(HttpError::Malformed("eof mid-request"))
            });
        }
        let n = chunk.len().min(READ_CHUNK);
        let outcome = parser.feed(&chunk[..n]);
        reader.consume(n);
        match outcome {
            sqlan_net::Parse::Partial => {}
            sqlan_net::Parse::Request(r) => return Ok(r),
            sqlan_net::Parse::Error(e) => return Err(ParseError::Http(e)),
        }
    }
}

/// Write a JSON response. `keep_alive` controls the `Connection` header;
/// the caller decides whether to actually reuse the stream. Renders
/// through [`sqlan_net::render_json_response`] so the threaded and epoll
/// front ends emit byte-identical responses.
pub fn write_json_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    stream.write_all(&sqlan_net::render_json_response(status, body, keep_alive))?;
    stream.flush()
}

/// Write a routed [`sqlan_net::Answer`] (carries its own content type —
/// `/metrics?format=prom` serves Prometheus text, everything else JSON).
/// Renders through [`sqlan_net::Answer::render`], the same byte renderer
/// the epoll front end uses.
pub fn write_answer(
    stream: &mut TcpStream,
    answer: &sqlan_net::Answer,
    keep_alive: bool,
) -> io::Result<()> {
    stream.write_all(&answer.render(keep_alive))?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    /// Round-trip a raw request through a local socket pair.
    fn parse(raw: &[u8]) -> Result<Request, ParseError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        client.write_all(raw).expect("write");
        drop(client); // half-close: server sees EOF after the payload
        let (server, _) = listener.accept().expect("accept");
        let mut parser = HttpParser::new(1 << 20);
        read_request(&mut BufReader::new(server), &mut parser)
    }

    #[test]
    fn parses_post_with_body() {
        let r = parse(b"POST /predict HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd").expect("parse");
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/predict");
        assert_eq!(r.body, b"abcd");
        assert!(r.keep_alive);
    }

    #[test]
    fn connection_close_and_http10() {
        let r = parse(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").expect("parse");
        assert!(!r.keep_alive);
        let r = parse(b"GET /healthz HTTP/1.0\r\n\r\n").expect("parse");
        assert!(!r.keep_alive);
    }

    #[test]
    fn connection_list_value_keeps_alive() {
        let r = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive, upgrade\r\n\r\n").expect("parse");
        assert!(r.keep_alive, "comma list must honor keep-alive");
    }

    #[test]
    fn eof_before_request_is_eof() {
        assert!(matches!(parse(b""), Err(ParseError::Eof)));
    }

    #[test]
    fn eof_mid_request_is_malformed_not_eof() {
        let got = parse(b"POST /p HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc");
        assert!(matches!(
            got,
            Err(ParseError::Http(HttpError::Malformed("eof mid-request")))
        ));
    }

    #[test]
    fn non_utf8_head_is_http_400_not_io() {
        let got = parse(b"GET /\xff\xfe HTTP/1.1\r\n\r\n");
        assert!(
            matches!(got, Err(ParseError::Http(HttpError::Malformed(_)))),
            "junk bytes must surface as a 400, not an I/O close"
        );
    }

    #[test]
    fn signed_content_length_rejected() {
        let got = parse(b"POST / HTTP/1.1\r\ncontent-length: +4\r\n\r\nabcd");
        assert!(matches!(
            got,
            Err(ParseError::Http(HttpError::Malformed("bad content-length")))
        ));
    }

    #[test]
    fn conflicting_content_lengths_rejected() {
        let got = parse(b"POST / HTTP/1.1\r\ncontent-length: 4\r\ncontent-length: 5\r\n\r\nabcd");
        assert!(matches!(
            got,
            Err(ParseError::Http(HttpError::Malformed(_)))
        ));
    }

    #[test]
    fn oversized_body_rejected() {
        let raw = b"POST /predict HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n";
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        client.write_all(raw).expect("write");
        let (server, _) = listener.accept().expect("accept");
        let mut parser = HttpParser::new(1024);
        let got = read_request(&mut BufReader::new(server), &mut parser);
        assert!(matches!(
            got,
            Err(ParseError::Http(HttpError::BodyTooLarge))
        ));
    }

    #[test]
    fn malformed_header_rejected() {
        let got = parse(b"GET / HTTP/1.1\r\nbroken header line\r\n\r\n");
        assert!(matches!(
            got,
            Err(ParseError::Http(HttpError::Malformed(_)))
        ));
    }

    #[test]
    fn read_timeout_is_distinguished_from_eof() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        // Half a request, then silence (no close).
        client.write_all(b"GET / HT").expect("write");
        let (server, _) = listener.accept().expect("accept");
        server
            .set_read_timeout(Some(std::time::Duration::from_millis(100)))
            .expect("timeout");
        let mut parser = HttpParser::new(1 << 20);
        let got = read_request(&mut BufReader::new(server), &mut parser);
        assert!(matches!(got, Err(ParseError::Timeout)));
        drop(client);
    }
}
