//! Versioned on-disk model artifacts.
//!
//! A *bundle* is a directory holding one JSON model artifact per problem
//! plus a `manifest.json` describing them:
//!
//! ```text
//! bundle/
//!   manifest.json                              ← written LAST (commit point)
//!   error_classification-a63b99f01c22d407.json ← TrainedModel::save_json output
//!   answer_size-5f0e331908a4be72.json
//! ```
//!
//! Artifact file names are **content-addressed** (`{problem}-{hash}.json`),
//! so re-saving over a live bundle directory never touches the files the
//! committed manifest references: new-generation artifacts land beside the
//! old ones, and the atomic `manifest.json` rename is the *only* state
//! transition a reader can observe. A writer that dies at any point —
//! provable with the `bundle.crash` injection point, which the crash-sweep
//! test fires at every syscall boundary of a save — leaves either the old
//! bundle or the new one, never a torn state.
//!
//! Durability matches atomicity: every file is fsynced before its rename
//! and the directory is fsynced after the manifest rename, so the commit
//! survives power loss, not just process death. Orphans from a crashed
//! save (`*.json.tmp`, unreferenced artifacts) are removed by
//! [`sweep_bundle_dir`], which runs at registry startup and before each
//! save. Bundle directories are single-writer: concurrent saves to one
//! directory race on temp names and sweep away each other's work.
//!
//! Fault injection points (all no-ops unless a `sqlan-fault` plane is
//! installed): `bundle.crash`, `bundle.write.short`, `bundle.write.enospc`,
//! `bundle.fsync`, `bundle.corrupt`, `bundle.load.read`.

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use sqlan_core::{ModelKind, PersistError, Problem, TrainedModel};

/// The bundle format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;

/// Manifest file name inside a bundle directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// One problem's entry in the manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestEntry {
    pub problem: Problem,
    pub kind: ModelKind,
    /// Model artifact file name, relative to the bundle directory.
    pub file: String,
    /// Artifact size in bytes — a cheap integrity check at load time.
    pub bytes: u64,
}

/// `manifest.json`: what the bundle contains and how it was produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BundleManifest {
    pub format_version: u32,
    /// Free-form bundle name (e.g. the training workload).
    pub name: String,
    /// Seed the models were trained with (provenance only).
    pub seed: u64,
    pub entries: Vec<ManifestEntry>,
}

/// Everything that can go wrong saving or loading a bundle.
#[derive(Debug)]
pub enum BundleError {
    Io(PathBuf, io::Error),
    /// Manifest or model JSON failed to parse.
    Json(PathBuf, String),
    /// The bundle was written by an incompatible format version.
    Version {
        found: u32,
        supported: u32,
    },
    /// An artifact's on-disk size disagrees with the manifest.
    Truncated {
        file: PathBuf,
        expected: u64,
        found: u64,
    },
    /// A loaded model's kind disagrees with its manifest entry.
    KindMismatch {
        problem: Problem,
        manifest: ModelKind,
        loaded: ModelKind,
    },
    /// A model that cannot be persisted (e.g. `opt`) was handed to
    /// [`save_bundle`].
    NotPersistable(&'static str),
    /// The manifest lists the same problem twice.
    DuplicateProblem(Problem),
    /// An injected crash (`bundle.crash`) abandoned the save at commit
    /// point `point`, leaving on-disk state exactly as the crash found it.
    Crashed {
        point: u64,
    },
    /// The reload circuit breaker is open after repeated load failures;
    /// retry after the cooldown.
    CircuitOpen {
        failures: u32,
    },
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BundleError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            BundleError::Json(p, e) => write!(f, "{}: {e}", p.display()),
            BundleError::Version { found, supported } => {
                write!(
                    f,
                    "bundle format v{found} unsupported (this build reads v{supported})"
                )
            }
            BundleError::Truncated {
                file,
                expected,
                found,
            } => write!(
                f,
                "{}: truncated artifact ({found} bytes on disk, manifest says {expected})",
                file.display()
            ),
            BundleError::KindMismatch {
                problem,
                manifest,
                loaded,
            } => write!(
                f,
                "{problem}: manifest says {}, artifact holds {}",
                manifest.name(),
                loaded.name()
            ),
            BundleError::NotPersistable(name) => {
                write!(f, "model `{name}` cannot be bundled")
            }
            BundleError::DuplicateProblem(p) => write!(f, "problem {p} listed twice"),
            BundleError::Crashed { point } => {
                write!(f, "injected crash at save commit point #{point}")
            }
            BundleError::CircuitOpen { failures } => write!(
                f,
                "reload circuit breaker open after {failures} consecutive load failures"
            ),
        }
    }
}

impl std::error::Error for BundleError {}

impl From<PersistError> for BundleError {
    fn from(e: PersistError) -> BundleError {
        match e {
            PersistError::NotPersistable(name) => BundleError::NotPersistable(name),
            PersistError::Json(err) => BundleError::Json(PathBuf::new(), err.to_string()),
        }
    }
}

/// A bundle loaded into memory, ready to serve.
#[derive(Debug)]
pub struct Bundle {
    pub manifest: BundleManifest,
    models: HashMap<Problem, TrainedModel>,
}

impl Bundle {
    /// The model serving `problem`, if the bundle carries one.
    pub fn model(&self, problem: Problem) -> Option<&TrainedModel> {
        self.models.get(&problem)
    }

    /// Problems this bundle can answer, in manifest order.
    pub fn problems(&self) -> Vec<Problem> {
        self.manifest.entries.iter().map(|e| e.problem).collect()
    }
}

/// ENOSPC — the errno injected write faults surface as.
const ENOSPC: i32 = 28;
/// EIO — the errno injected fsync/read faults surface as.
const EIO: i32 = 5;

/// An injected crash: the save is abandoned *right here*, no cleanup, no
/// further writes — on-disk state is whatever the syscalls so far left.
/// Call counts index the commit points, so the crash sweep can fire each
/// one in turn with `bundle.crash=@k`.
fn crash_point() -> Result<(), BundleError> {
    if sqlan_fault::fires("bundle.crash") {
        return Err(BundleError::Crashed {
            point: sqlan_fault::calls("bundle.crash").saturating_sub(1),
        });
    }
    Ok(())
}

/// Flip one seeded bit of the buffer when `bundle.corrupt` fires —
/// a silent-corruption model the size check cannot catch, forcing the
/// loader's JSON/kind validation to do the work.
fn maybe_corrupt(contents: &[u8]) -> std::borrow::Cow<'_, [u8]> {
    match sqlan_fault::fire_arg("bundle.corrupt") {
        Some(_) if !contents.is_empty() => {
            let seed = sqlan_fault::seed().unwrap_or(0);
            let n = sqlan_fault::fired("bundle.corrupt");
            let bit = (sqlan_fault::unit_value(seed, "bundle.corrupt.bit", n)
                * (contents.len() * 8) as f64) as usize;
            let mut owned = contents.to_vec();
            let byte = (bit / 8).min(owned.len() - 1);
            owned[byte] ^= 1 << (bit % 8);
            std::borrow::Cow::Owned(owned)
        }
        _ => std::borrow::Cow::Borrowed(contents),
    }
}

/// Write `contents` durably at `path`: temp file → fsync → rename.
/// Crash points bracket every syscall; write/fsync faults inject ENOSPC
/// and EIO mid-sequence, leaving the same partial states a real disk
/// would.
fn write_durable(path: &Path, contents: &[u8]) -> Result<(), BundleError> {
    let tmp = path.with_extension("json.tmp");
    crash_point()?; // nothing written yet
    let mut f = File::create(&tmp).map_err(|e| BundleError::Io(tmp.clone(), e))?;
    if sqlan_fault::fires("bundle.write.enospc") {
        return Err(BundleError::Io(tmp, io::Error::from_raw_os_error(ENOSPC)));
    }
    let data = maybe_corrupt(contents);
    let mid = data.len() / 2;
    f.write_all(&data[..mid])
        .map_err(|e| BundleError::Io(tmp.clone(), e))?;
    if sqlan_fault::fires("bundle.write.short") {
        // Half the bytes landed, then the disk filled: a torn temp file.
        return Err(BundleError::Io(tmp, io::Error::from_raw_os_error(ENOSPC)));
    }
    crash_point()?; // torn temp file on disk
    f.write_all(&data[mid..])
        .map_err(|e| BundleError::Io(tmp.clone(), e))?;
    crash_point()?; // full temp file, not yet durable
    if sqlan_fault::fires("bundle.fsync") {
        return Err(BundleError::Io(tmp, io::Error::from_raw_os_error(EIO)));
    }
    f.sync_all().map_err(|e| BundleError::Io(tmp.clone(), e))?;
    drop(f);
    crash_point()?; // durable temp file, not yet visible
    std::fs::rename(&tmp, path).map_err(|e| BundleError::Io(path.to_path_buf(), e))?;
    crash_point()?; // visible under the final name
    Ok(())
}

/// fsync the bundle directory so a just-renamed file survives power loss
/// (rename durability is a property of the *directory*, not the file).
fn sync_dir(dir: &Path) -> Result<(), BundleError> {
    if sqlan_fault::fires("bundle.fsync") {
        return Err(BundleError::Io(
            dir.to_path_buf(),
            io::Error::from_raw_os_error(EIO),
        ));
    }
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| BundleError::Io(dir.to_path_buf(), e))
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Content-addressed artifact name: distinct model bytes get distinct
/// files, so a re-save never overwrites what the live manifest references.
fn artifact_file(problem: Problem, json: &str) -> String {
    format!("{}-{:016x}.json", problem.name(), fnv1a(json.as_bytes()))
}

/// What [`sweep_bundle_dir`] removed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SweepReport {
    /// `*.json.tmp` files a crashed save left behind.
    pub temps_removed: usize,
    /// Committed-looking artifacts no longer referenced by the manifest
    /// (a superseded generation, or a save that died pre-commit).
    pub orphans_removed: usize,
}

/// Recovery sweep for a bundle directory: delete temp files from crashed
/// saves, and — when a valid manifest exists — artifacts it does not
/// reference. Artifacts are *kept* when no manifest parses (nothing
/// proves they are ours to delete). Runs at registry startup and before
/// each save; assumes a single writer.
pub fn sweep_bundle_dir(dir: &Path) -> io::Result<SweepReport> {
    let referenced: Option<Vec<String>> = std::fs::read_to_string(dir.join(MANIFEST_FILE))
        .ok()
        .and_then(|s| serde_json::from_str::<BundleManifest>(&s).ok())
        .map(|m| m.entries.into_iter().map(|e| e.file).collect());
    let mut report = SweepReport::default();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if !entry.file_type()?.is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".json.tmp") {
            if std::fs::remove_file(entry.path()).is_ok() {
                report.temps_removed += 1;
            }
        } else if name.ends_with(".json") && name != MANIFEST_FILE {
            if let Some(live) = &referenced {
                if !live.iter().any(|f| f == &name) && std::fs::remove_file(entry.path()).is_ok() {
                    report.orphans_removed += 1;
                }
            }
        }
    }
    Ok(report)
}

/// Save `(problem, model)` pairs as a bundle under `dir` (created if
/// missing). Artifacts land first under content-addressed names (each
/// durably: temp → fsync → rename), `manifest.json` last — its rename is
/// the commit point, made durable by a directory fsync.
pub fn save_bundle(
    dir: &Path,
    name: &str,
    seed: u64,
    models: &[(Problem, &TrainedModel)],
) -> Result<BundleManifest, BundleError> {
    std::fs::create_dir_all(dir).map_err(|e| BundleError::Io(dir.to_path_buf(), e))?;
    // Best-effort cleanup of a previous crashed save before adding files.
    let _ = sweep_bundle_dir(dir);
    let mut entries = Vec::with_capacity(models.len());
    let mut seen: Vec<Problem> = Vec::new();
    for (problem, model) in models {
        if seen.contains(problem) {
            return Err(BundleError::DuplicateProblem(*problem));
        }
        seen.push(*problem);
        let json = model.save_json()?;
        let file = artifact_file(*problem, &json);
        write_durable(&dir.join(&file), json.as_bytes())?;
        entries.push(ManifestEntry {
            problem: *problem,
            kind: model.kind,
            file,
            bytes: json.len() as u64,
        });
    }
    let manifest = BundleManifest {
        format_version: FORMAT_VERSION,
        name: name.to_string(),
        seed,
        entries,
    };
    let manifest_json = serde_json::to_string_pretty(&manifest)
        .map_err(|e| BundleError::Json(dir.join(MANIFEST_FILE), e.to_string()))?;
    write_durable(&dir.join(MANIFEST_FILE), manifest_json.as_bytes())?;
    sync_dir(dir)?;
    crash_point()?; // fully committed and durable
    Ok(manifest)
}

/// Load and validate a bundle from `dir`: manifest parses, format version
/// matches, every artifact is present with the manifest's exact byte
/// count, parses as a model, and holds the model kind the manifest claims.
pub fn load_bundle(dir: &Path) -> Result<Bundle, BundleError> {
    let manifest_path = dir.join(MANIFEST_FILE);
    if sqlan_fault::fires("bundle.load.read") {
        return Err(BundleError::Io(
            manifest_path,
            io::Error::from_raw_os_error(EIO),
        ));
    }
    let manifest_json = std::fs::read_to_string(&manifest_path)
        .map_err(|e| BundleError::Io(manifest_path.clone(), e))?;
    let manifest: BundleManifest = serde_json::from_str(&manifest_json)
        .map_err(|e| BundleError::Json(manifest_path.clone(), e.to_string()))?;
    if manifest.format_version != FORMAT_VERSION {
        return Err(BundleError::Version {
            found: manifest.format_version,
            supported: FORMAT_VERSION,
        });
    }
    let mut models = HashMap::with_capacity(manifest.entries.len());
    for entry in &manifest.entries {
        if models.contains_key(&entry.problem) {
            return Err(BundleError::DuplicateProblem(entry.problem));
        }
        let path = dir.join(&entry.file);
        let json = std::fs::read_to_string(&path).map_err(|e| BundleError::Io(path.clone(), e))?;
        if json.len() as u64 != entry.bytes {
            return Err(BundleError::Truncated {
                file: path,
                expected: entry.bytes,
                found: json.len() as u64,
            });
        }
        let model = TrainedModel::load_json(&json)
            .map_err(|e| BundleError::Json(path.clone(), e.to_string()))?;
        if model.kind != entry.kind {
            return Err(BundleError::KindMismatch {
                problem: entry.problem,
                manifest: entry.kind,
                loaded: model.kind,
            });
        }
        models.insert(entry.problem, model);
    }
    Ok(Bundle { manifest, models })
}
