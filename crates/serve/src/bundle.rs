//! Versioned on-disk model artifacts.
//!
//! A *bundle* is a directory holding one JSON model artifact per problem
//! plus a `manifest.json` describing them:
//!
//! ```text
//! bundle/
//!   manifest.json             ← written LAST (commit point)
//!   error_classification.json ← TrainedModel::save_json output
//!   answer_size.json
//! ```
//!
//! Model files are written before the manifest, each via a
//! write-to-temp-then-rename, so a crashed or concurrent writer can never
//! produce a loadable-but-torn bundle: until `manifest.json` lands, the
//! directory does not parse as a bundle at all.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use sqlan_core::{ModelKind, PersistError, Problem, TrainedModel};

/// The bundle format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;

/// Manifest file name inside a bundle directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// One problem's entry in the manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestEntry {
    pub problem: Problem,
    pub kind: ModelKind,
    /// Model artifact file name, relative to the bundle directory.
    pub file: String,
    /// Artifact size in bytes — a cheap integrity check at load time.
    pub bytes: u64,
}

/// `manifest.json`: what the bundle contains and how it was produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BundleManifest {
    pub format_version: u32,
    /// Free-form bundle name (e.g. the training workload).
    pub name: String,
    /// Seed the models were trained with (provenance only).
    pub seed: u64,
    pub entries: Vec<ManifestEntry>,
}

/// Everything that can go wrong saving or loading a bundle.
#[derive(Debug)]
pub enum BundleError {
    Io(PathBuf, io::Error),
    /// Manifest or model JSON failed to parse.
    Json(PathBuf, String),
    /// The bundle was written by an incompatible format version.
    Version {
        found: u32,
        supported: u32,
    },
    /// An artifact's on-disk size disagrees with the manifest.
    Truncated {
        file: PathBuf,
        expected: u64,
        found: u64,
    },
    /// A loaded model's kind disagrees with its manifest entry.
    KindMismatch {
        problem: Problem,
        manifest: ModelKind,
        loaded: ModelKind,
    },
    /// A model that cannot be persisted (e.g. `opt`) was handed to
    /// [`save_bundle`].
    NotPersistable(&'static str),
    /// The manifest lists the same problem twice.
    DuplicateProblem(Problem),
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BundleError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            BundleError::Json(p, e) => write!(f, "{}: {e}", p.display()),
            BundleError::Version { found, supported } => {
                write!(
                    f,
                    "bundle format v{found} unsupported (this build reads v{supported})"
                )
            }
            BundleError::Truncated {
                file,
                expected,
                found,
            } => write!(
                f,
                "{}: truncated artifact ({found} bytes on disk, manifest says {expected})",
                file.display()
            ),
            BundleError::KindMismatch {
                problem,
                manifest,
                loaded,
            } => write!(
                f,
                "{problem}: manifest says {}, artifact holds {}",
                manifest.name(),
                loaded.name()
            ),
            BundleError::NotPersistable(name) => {
                write!(f, "model `{name}` cannot be bundled")
            }
            BundleError::DuplicateProblem(p) => write!(f, "problem {p} listed twice"),
        }
    }
}

impl std::error::Error for BundleError {}

impl From<PersistError> for BundleError {
    fn from(e: PersistError) -> BundleError {
        match e {
            PersistError::NotPersistable(name) => BundleError::NotPersistable(name),
            PersistError::Json(err) => BundleError::Json(PathBuf::new(), err.to_string()),
        }
    }
}

/// A bundle loaded into memory, ready to serve.
#[derive(Debug)]
pub struct Bundle {
    pub manifest: BundleManifest,
    models: HashMap<Problem, TrainedModel>,
}

impl Bundle {
    /// The model serving `problem`, if the bundle carries one.
    pub fn model(&self, problem: Problem) -> Option<&TrainedModel> {
        self.models.get(&problem)
    }

    /// Problems this bundle can answer, in manifest order.
    pub fn problems(&self) -> Vec<Problem> {
        self.manifest.entries.iter().map(|e| e.problem).collect()
    }
}

fn write_atomic(path: &Path, contents: &str) -> Result<(), BundleError> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, contents).map_err(|e| BundleError::Io(tmp.clone(), e))?;
    std::fs::rename(&tmp, path).map_err(|e| BundleError::Io(path.to_path_buf(), e))
}

/// Save `(problem, model)` pairs as a bundle under `dir` (created if
/// missing). Model files land first (each atomically), `manifest.json`
/// last — the manifest is the commit point.
pub fn save_bundle(
    dir: &Path,
    name: &str,
    seed: u64,
    models: &[(Problem, &TrainedModel)],
) -> Result<BundleManifest, BundleError> {
    std::fs::create_dir_all(dir).map_err(|e| BundleError::Io(dir.to_path_buf(), e))?;
    let mut entries = Vec::with_capacity(models.len());
    let mut seen: Vec<Problem> = Vec::new();
    for (problem, model) in models {
        if seen.contains(problem) {
            return Err(BundleError::DuplicateProblem(*problem));
        }
        seen.push(*problem);
        let json = model.save_json()?;
        let file = format!("{}.json", problem.name());
        write_atomic(&dir.join(&file), &json)?;
        entries.push(ManifestEntry {
            problem: *problem,
            kind: model.kind,
            file,
            bytes: json.len() as u64,
        });
    }
    let manifest = BundleManifest {
        format_version: FORMAT_VERSION,
        name: name.to_string(),
        seed,
        entries,
    };
    let manifest_json = serde_json::to_string_pretty(&manifest)
        .map_err(|e| BundleError::Json(dir.join(MANIFEST_FILE), e.to_string()))?;
    write_atomic(&dir.join(MANIFEST_FILE), &manifest_json)?;
    Ok(manifest)
}

/// Load and validate a bundle from `dir`: manifest parses, format version
/// matches, every artifact is present with the manifest's exact byte
/// count, parses as a model, and holds the model kind the manifest claims.
pub fn load_bundle(dir: &Path) -> Result<Bundle, BundleError> {
    let manifest_path = dir.join(MANIFEST_FILE);
    let manifest_json = std::fs::read_to_string(&manifest_path)
        .map_err(|e| BundleError::Io(manifest_path.clone(), e))?;
    let manifest: BundleManifest = serde_json::from_str(&manifest_json)
        .map_err(|e| BundleError::Json(manifest_path.clone(), e.to_string()))?;
    if manifest.format_version != FORMAT_VERSION {
        return Err(BundleError::Version {
            found: manifest.format_version,
            supported: FORMAT_VERSION,
        });
    }
    let mut models = HashMap::with_capacity(manifest.entries.len());
    for entry in &manifest.entries {
        if models.contains_key(&entry.problem) {
            return Err(BundleError::DuplicateProblem(entry.problem));
        }
        let path = dir.join(&entry.file);
        let json = std::fs::read_to_string(&path).map_err(|e| BundleError::Io(path.clone(), e))?;
        if json.len() as u64 != entry.bytes {
            return Err(BundleError::Truncated {
                file: path,
                expected: entry.bytes,
                found: json.len() as u64,
            });
        }
        let model = TrainedModel::load_json(&json)
            .map_err(|e| BundleError::Json(path.clone(), e.to_string()))?;
        if model.kind != entry.kind {
            return Err(BundleError::KindMismatch {
                problem: entry.problem,
                manifest: entry.kind,
                loaded: model.kind,
            });
        }
        models.insert(entry.problem, model);
    }
    Ok(Bundle { manifest, models })
}
