//! Service counters and the `/metrics` snapshot.
//!
//! Counters are lock-free atomics; request latencies go into a fixed-size
//! ring (last `RING_CAPACITY` requests) that `/metrics` snapshots and
//! summarizes with [`sqlan_metrics::LatencySummary`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use sqlan_metrics::LatencySummary;

/// Latency samples retained for percentile estimation.
const RING_CAPACITY: usize = 8192;

#[derive(Debug)]
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

/// Live counters for one server instance.
#[derive(Debug)]
pub struct ServeMetrics {
    started: Instant,
    /// All HTTP requests, any route.
    pub http_requests: AtomicU64,
    /// `POST /predict` requests answered 200.
    pub predict_requests: AtomicU64,
    /// Statements scored across all 200 responses.
    pub statements: AtomicU64,
    /// Requests shed with 503.
    pub shed: AtomicU64,
    /// 4xx responses (bad JSON, unknown routes/problems).
    pub client_errors: AtomicU64,
    latencies_us: Mutex<LatencyRing>,
}

impl Default for ServeMetrics {
    fn default() -> ServeMetrics {
        ServeMetrics {
            started: Instant::now(),
            http_requests: AtomicU64::new(0),
            predict_requests: AtomicU64::new(0),
            statements: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            client_errors: AtomicU64::new(0),
            latencies_us: Mutex::new(LatencyRing {
                samples: Vec::with_capacity(RING_CAPACITY),
                next: 0,
            }),
        }
    }
}

impl ServeMetrics {
    /// Record one served `/predict` request.
    pub fn observe_predict(&self, statements: u64, latency_us: u64) {
        self.predict_requests.fetch_add(1, Ordering::Relaxed);
        self.statements.fetch_add(statements, Ordering::Relaxed);
        let mut ring = self.latencies_us.lock().expect("latency ring poisoned");
        if ring.samples.len() < RING_CAPACITY {
            ring.samples.push(latency_us);
        } else {
            let i = ring.next;
            ring.samples[i] = latency_us;
        }
        ring.next = (ring.next + 1) % RING_CAPACITY;
    }

    /// Summarize the retained latency window.
    pub fn latency_summary(&self) -> LatencySummary {
        let ring = self.latencies_us.lock().expect("latency ring poisoned");
        LatencySummary::from_micros(&ring.samples)
    }

    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// The JSON body `/metrics` returns (also consumed by `bench_serve`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub uptime_s: f64,
    pub generation: u64,
    pub http_requests: u64,
    pub predict_requests: u64,
    pub statements: u64,
    pub shed: u64,
    pub client_errors: u64,
    /// Scored statements per second of uptime.
    pub statement_qps: f64,
    /// Served predict requests per second of uptime.
    pub request_qps: f64,
    pub latency: LatencySummary,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// hits / (hits + misses), 0 when nothing has been looked up.
    pub cache_hit_rate: f64,
    pub cache_entries: u64,
    pub batches: u64,
    pub batched_statements: u64,
    /// batched_statements / batches — the achieved micro-batch size.
    pub mean_batch: f64,
    pub max_batch: u64,
    pub queue_depth: u64,
}
