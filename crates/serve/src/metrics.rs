//! Service counters and the `/metrics` snapshot, backed by the
//! lock-free [`sqlan_obs`] registry.
//!
//! Every request-path observation is an atomic `fetch_add`: counters per
//! response class and per problem, plus a log-linear histogram for
//! `/predict` service time. The old mutex-guarded latency ring (and its
//! `expect("latency ring poisoned")` panic path) is gone — the histogram
//! never locks and never loses increments. The same registry renders as
//! both the legacy JSON [`MetricsSnapshot`] and Prometheus text
//! (`GET /metrics?format=prom`), and a bounded [`TraceRing`] retains the
//! most recent completed request traces for `GET /debug/trace`.

use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use sqlan_core::Problem;
use sqlan_metrics::LatencySummary;
use sqlan_obs::{Counter, Gauge, Histogram, MetricRegistry, TraceRing};

/// Completed request traces retained for `GET /debug/trace`.
const TRACE_RING_CAPACITY: usize = 256;

/// Position of a problem in the per-problem statement counters.
fn pidx(p: Problem) -> usize {
    Problem::ALL
        .iter()
        .position(|&q| q == p)
        .expect("Problem::ALL is exhaustive")
}

/// Live counters for one server instance. All hot-path methods are
/// lock-free; the registry mutex is touched only at construction and
/// scrape time.
#[derive(Debug)]
pub struct ServeMetrics {
    started: Instant,
    registry: MetricRegistry,
    traces: TraceRing,
    http_requests: Arc<Counter>,
    /// Response-class counters, indexed 2xx / 4xx / 5xx. Every response
    /// from routing increments exactly one class and `http_requests`, so
    /// at quiescence `http_requests == responses.iter().sum()` — the
    /// counter algebra `bench_serve` asserts.
    responses: [Arc<Counter>; 3],
    predict_requests: Arc<Counter>,
    /// Statements scored in 200 responses, one counter per problem. The
    /// JSON `statements` field is the sum, so it always equals the sum
    /// of the per-problem Prometheus series.
    statements: [Arc<Counter>; 4],
    shed: Arc<Counter>,
    client_errors: Arc<Counter>,
    /// `/predict` service time in nanoseconds (scale 1e-9 → seconds).
    request_duration_ns: Arc<Histogram>,
    // Scrape-time mirrors of engine-owned state (cache, batch stats,
    // queue) synced via `Counter::store` so Prometheus sees them.
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    batches: Arc<Counter>,
    batched_statements: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    cache_entries: Arc<Gauge>,
    generation: Arc<Gauge>,
    uptime: Arc<Gauge>,
    // Resilience mirrors (engine / registry owned, synced at scrape).
    degraded_responses: Arc<Counter>,
    degraded_statements: Arc<Counter>,
    deadline_expired: Arc<Counter>,
    worker_panics: Arc<Counter>,
    worker_respawns: Arc<Counter>,
    breaker_opens: Arc<Counter>,
    breaker_open: Arc<Gauge>,
}

impl Default for ServeMetrics {
    fn default() -> ServeMetrics {
        let registry = MetricRegistry::new();
        let http_requests = registry.counter(
            "sqlan_http_requests_total",
            "HTTP requests parsed and routed, any route",
        );
        let responses = ["2xx", "4xx", "5xx"].map(|class| {
            registry.counter_with(
                "sqlan_http_responses_total",
                "HTTP responses by status class",
                &[("class", class)],
            )
        });
        let predict_requests = registry.counter(
            "sqlan_predict_requests_total",
            "POST /predict requests answered 200",
        );
        let statements = Problem::ALL.map(|p| {
            registry.counter_with(
                "sqlan_statements_total",
                "statements scored in 200 responses, by problem",
                &[("problem", p.name())],
            )
        });
        let shed = registry.counter("sqlan_shed_total", "requests shed with 503");
        let client_errors = registry.counter(
            "sqlan_client_errors_total",
            "4xx responses plus protocol parse errors",
        );
        let request_duration_ns = registry.histogram(
            "sqlan_request_duration_seconds",
            "POST /predict service time",
            1e-9,
        );
        let cache_hits = registry.counter(
            "sqlan_prediction_cache_hits_total",
            "prediction cache hits (synced at scrape)",
        );
        let cache_misses = registry.counter(
            "sqlan_prediction_cache_misses_total",
            "prediction cache misses (synced at scrape)",
        );
        let batches = registry.counter(
            "sqlan_score_batches_total",
            "micro-batches scored (synced at scrape)",
        );
        let batched_statements = registry.counter(
            "sqlan_score_batched_statements_total",
            "statements scored through micro-batches (synced at scrape)",
        );
        let queue_depth = registry.gauge("sqlan_queue_depth", "scoring queue depth at scrape");
        let cache_entries =
            registry.gauge("sqlan_prediction_cache_entries", "resident cache entries");
        let generation = registry.gauge("sqlan_bundle_generation", "live bundle generation");
        let uptime = registry.gauge("sqlan_uptime_seconds", "seconds since server start");
        let degraded_responses = registry.counter(
            "sqlan_degraded_responses_total",
            "responses served from the degradation ladder (synced at scrape)",
        );
        let degraded_statements = registry.counter(
            "sqlan_degraded_statements_total",
            "statements inside degraded responses (synced at scrape)",
        );
        let deadline_expired = registry.counter(
            "sqlan_deadline_expired_total",
            "requests shed 504 because their deadline passed (synced at scrape)",
        );
        let worker_panics = registry.counter(
            "sqlan_score_panics_total",
            "scoring batches that panicked and were caught (synced at scrape)",
        );
        let worker_respawns = registry.counter(
            "sqlan_score_worker_respawns_total",
            "scoring worker threads respawned after an escaped unwind (synced at scrape)",
        );
        let breaker_opens = registry.counter(
            "sqlan_reload_breaker_opens_total",
            "times the reload circuit breaker opened (synced at scrape)",
        );
        let breaker_open = registry.gauge(
            "sqlan_reload_breaker_open",
            "1 while the reload circuit breaker is fast-failing",
        );
        ServeMetrics {
            started: Instant::now(),
            registry,
            traces: TraceRing::new(TRACE_RING_CAPACITY),
            http_requests,
            responses,
            predict_requests,
            statements,
            shed,
            client_errors,
            request_duration_ns,
            cache_hits,
            cache_misses,
            batches,
            batched_statements,
            queue_depth,
            cache_entries,
            generation,
            uptime,
            degraded_responses,
            degraded_statements,
            deadline_expired,
            worker_panics,
            worker_respawns,
            breaker_opens,
            breaker_open,
        }
    }
}

impl ServeMetrics {
    /// The registry backing these counters, for Prometheus exposition.
    pub fn registry(&self) -> &MetricRegistry {
        &self.registry
    }

    /// Completed request traces for `GET /debug/trace`.
    pub fn traces(&self) -> &TraceRing {
        &self.traces
    }

    /// Count one routed response: its status class, the legacy
    /// `client_errors` (4xx) / `shed` (503) counters, and the request
    /// total.
    pub fn on_response(&self, status: u16) {
        let class = match status {
            400..=499 => 1,
            500..=599 => 2,
            _ => 0,
        };
        self.responses[class].inc();
        if class == 1 {
            self.client_errors.inc();
        } else if status == 503 {
            self.shed.inc();
        }
        self.http_requests.inc();
    }

    /// Count a protocol violation that never reached routing (no
    /// response class — the connection handler answers it directly).
    pub fn on_parse_error(&self) {
        self.client_errors.inc();
    }

    /// Record one served `/predict` request: `statements` scored for
    /// `problem` in `latency_ns` nanoseconds.
    pub fn observe_predict(&self, problem: Problem, statements: u64, latency_ns: u64) {
        self.predict_requests.inc();
        self.statements[pidx(problem)].add(statements);
        self.request_duration_ns.record(latency_ns);
    }

    /// Mirror engine-owned stats into the registry so a Prometheus
    /// scrape sees them; called from `/metrics` only.
    #[allow(clippy::too_many_arguments)]
    pub fn sync_engine_stats(
        &self,
        cache_hits: u64,
        cache_misses: u64,
        cache_entries: u64,
        batches: u64,
        batched_statements: u64,
        queue_depth: u64,
        generation: u64,
    ) {
        self.cache_hits.store(cache_hits);
        self.cache_misses.store(cache_misses);
        self.cache_entries.set(cache_entries as f64);
        self.batches.store(batches);
        self.batched_statements.store(batched_statements);
        self.queue_depth.set(queue_depth as f64);
        self.generation.set(generation as f64);
        self.uptime.set(self.uptime_s());
    }

    /// Mirror the engine's [`crate::scoring::ResilienceStats`] and the
    /// registry breaker state into the registry; called from `/metrics`.
    pub fn sync_resilience(
        &self,
        stats: &crate::scoring::ResilienceStats,
        breaker_opens: u64,
        breaker_open: bool,
    ) {
        use std::sync::atomic::Ordering::Relaxed;
        self.degraded_responses
            .store(stats.degraded_responses.load(Relaxed));
        self.degraded_statements
            .store(stats.degraded_statements.load(Relaxed));
        self.deadline_expired
            .store(stats.deadline_expired.load(Relaxed));
        self.worker_panics.store(stats.worker_panics.load(Relaxed));
        self.worker_respawns
            .store(stats.worker_respawns.load(Relaxed));
        self.breaker_opens.store(breaker_opens);
        self.breaker_open.set(if breaker_open { 1.0 } else { 0.0 });
    }

    pub fn http_requests(&self) -> u64 {
        self.http_requests.get()
    }

    /// (2xx, 4xx, 5xx) response counts.
    pub fn responses_by_class(&self) -> [u64; 3] {
        [
            self.responses[0].get(),
            self.responses[1].get(),
            self.responses[2].get(),
        ]
    }

    pub fn predict_requests(&self) -> u64 {
        self.predict_requests.get()
    }

    /// Statements scored across all 200 responses — by construction the
    /// sum of the per-problem counters.
    pub fn statements_total(&self) -> u64 {
        self.statements.iter().map(|c| c.get()).sum()
    }

    /// Per-problem statement counts, in [`Problem::ALL`] order.
    pub fn statements_per_problem(&self) -> Vec<u64> {
        self.statements.iter().map(|c| c.get()).collect()
    }

    pub fn shed(&self) -> u64 {
        self.shed.get()
    }

    pub fn client_errors(&self) -> u64 {
        self.client_errors.get()
    }

    /// Summarize the request-duration histogram in the shape the JSON
    /// snapshot has always carried. Quantiles are bucket midpoints
    /// (≤ 1/32 relative error); the summary now covers the server's
    /// whole lifetime rather than the last 8k samples.
    pub fn latency_summary(&self) -> LatencySummary {
        let snap = self.request_duration_ns.snapshot();
        let count = snap.count();
        let q = |p: f64| snap.quantile(p).unwrap_or(0) as f64 * 1e-9;
        LatencySummary::from_stats(
            count as usize,
            snap.mean().unwrap_or(f64::NAN) * 1e-9,
            q(0.50),
            q(0.95),
            q(0.99),
            snap.max as f64 * 1e-9,
        )
    }

    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// The JSON body `/metrics` returns (also consumed by `bench_serve`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub uptime_s: f64,
    pub generation: u64,
    pub http_requests: u64,
    pub predict_requests: u64,
    pub statements: u64,
    pub shed: u64,
    pub client_errors: u64,
    /// Responses by status class. Every routed response lands in exactly
    /// one, so at quiescence `http_requests == 2xx + 4xx + 5xx`.
    pub responses_2xx: u64,
    pub responses_4xx: u64,
    pub responses_5xx: u64,
    /// Statements scored per problem wire name, same order as
    /// [`Problem::ALL`]; `statements` is their sum.
    pub statements_by_problem: Vec<u64>,
    /// Scored statements per second of uptime.
    pub statement_qps: f64,
    /// Served predict requests per second of uptime.
    pub request_qps: f64,
    pub latency: LatencySummary,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// hits / (hits + misses), 0 when nothing has been looked up.
    pub cache_hit_rate: f64,
    pub cache_entries: u64,
    pub batches: u64,
    pub batched_statements: u64,
    /// batched_statements / batches — the achieved micro-batch size.
    pub mean_batch: f64,
    pub max_batch: u64,
    pub queue_depth: u64,
    /// Responses served from the degradation ladder (`degraded:true`).
    pub degraded_responses: u64,
    /// Statements inside those responses.
    pub degraded_statements: u64,
    /// Requests shed 504 because their deadline passed.
    pub deadline_expired: u64,
    /// Scoring batches that panicked and were caught.
    pub worker_panics: u64,
    /// Scoring worker threads respawned after an escaped unwind.
    pub worker_respawns: u64,
    /// Times the reload circuit breaker opened.
    pub breaker_opens: u64,
    /// 1 while the breaker is currently fast-failing reloads.
    pub breaker_open: u64,
}

impl MetricsSnapshot {
    /// Per-problem statement counts as `(wire name, count)` pairs.
    pub fn statements_per_problem(&self) -> Vec<(&'static str, u64)> {
        Problem::ALL
            .iter()
            .zip(&self.statements_by_problem)
            .map(|(p, &n)| (p.name(), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_classes_partition_requests() {
        let m = ServeMetrics::default();
        for status in [200u16, 200, 400, 404, 503, 500] {
            m.on_response(status);
        }
        assert_eq!(m.http_requests(), 6);
        assert_eq!(m.responses_by_class(), [2, 2, 2]);
        assert_eq!(m.client_errors(), 2);
        assert_eq!(m.shed(), 1);
        m.on_parse_error();
        assert_eq!(m.client_errors(), 3);
        assert_eq!(m.http_requests(), 6, "parse errors are not routed requests");
    }

    #[test]
    fn statements_total_is_per_problem_sum() {
        let m = ServeMetrics::default();
        m.observe_predict(Problem::ErrorClassification, 5, 1_000);
        m.observe_predict(Problem::CpuTime, 7, 2_000);
        m.observe_predict(Problem::CpuTime, 1, 500);
        assert_eq!(m.predict_requests(), 3);
        assert_eq!(m.statements_total(), 13);
        let summary = m.latency_summary();
        assert_eq!(summary.count, 3);
        assert!(summary.p50_s > 0.0);
    }

    #[test]
    fn empty_latency_summary_matches_legacy_shape() {
        let m = ServeMetrics::default();
        let s = m.latency_summary();
        assert_eq!(s.count, 0);
        assert!(s.p50_s.is_nan() && s.mean_s.is_nan());
    }
}
