//! The model registry: which bundle is live, with atomic hot-swap.
//!
//! Readers call [`ModelRegistry::current`], which clones an `Arc` under a
//! briefly-held read lock — they never wait on a reload. A reload parses
//! and validates the whole new bundle *before* taking the write lock; the
//! lock is held only for the pointer swap, so in-flight scoring keeps
//! using the old generation until it drops its `Arc` and the old bundle
//! frees itself when the last reader finishes.

use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

use crate::bundle::{load_bundle, Bundle, BundleError};

/// A live, immutable, generation-stamped bundle.
#[derive(Debug)]
pub struct LiveBundle {
    /// Monotonic reload counter: generation 1 is the bundle the registry
    /// opened with, each successful reload increments it.
    pub generation: u64,
    /// Directory the bundle was loaded from.
    pub dir: PathBuf,
    pub bundle: Bundle,
}

/// Registry handing out the current [`LiveBundle`] and swapping in new
/// ones without blocking readers.
#[derive(Debug)]
pub struct ModelRegistry {
    current: RwLock<Arc<LiveBundle>>,
}

impl ModelRegistry {
    /// Open the registry on the bundle at `dir` (generation 1).
    pub fn open(dir: &Path) -> Result<ModelRegistry, BundleError> {
        let bundle = load_bundle(dir)?;
        Ok(ModelRegistry {
            current: RwLock::new(Arc::new(LiveBundle {
                generation: 1,
                dir: dir.to_path_buf(),
                bundle,
            })),
        })
    }

    /// The live bundle. Cheap (one `Arc` clone under a read lock);
    /// callers hold the returned `Arc` for as long as they score against
    /// it, pinning that generation even across a concurrent reload.
    pub fn current(&self) -> Arc<LiveBundle> {
        Arc::clone(&self.current.read().expect("registry lock poisoned"))
    }

    /// The live generation number (same cheap read lock as
    /// [`ModelRegistry::current`]).
    pub fn generation(&self) -> u64 {
        self.current
            .read()
            .expect("registry lock poisoned")
            .generation
    }

    /// Load the bundle at `dir`, validate it, and atomically swap it in.
    /// On any error the previous bundle stays live. Returns the new
    /// generation.
    pub fn reload(&self, dir: &Path) -> Result<u64, BundleError> {
        // All I/O and validation happens before the write lock.
        let bundle = load_bundle(dir)?;
        let mut slot = self.current.write().expect("registry lock poisoned");
        let generation = slot.generation + 1;
        *slot = Arc::new(LiveBundle {
            generation,
            dir: dir.to_path_buf(),
            bundle,
        });
        Ok(generation)
    }
}
