//! The model registry: which bundle is live, with atomic hot-swap, a
//! pinned previous generation, and a circuit breaker around reloads.
//!
//! Readers call [`ModelRegistry::current`], which clones an `Arc` under a
//! briefly-held read lock — they never wait on a reload. A reload parses
//! and validates the whole new bundle *before* taking the write lock; the
//! lock is held only for the pointer swap, so in-flight scoring keeps
//! using the old generation until it drops its `Arc` and the old bundle
//! frees itself when the last reader finishes.
//!
//! Each successful swap also parks the outgoing generation in a
//! `previous` slot — the degradation ladder's first rung: when the live
//! bundle cannot answer a problem, the scoring engine may fall back to
//! the previous generation (marked `degraded:true`) instead of erroring.
//! Exactly one old generation stays pinned; anything older frees as
//! usual.
//!
//! Repeated load failures trip a circuit breaker: after
//! [`BREAKER_THRESHOLD`] consecutive failures the registry fast-fails
//! reloads with [`BundleError::CircuitOpen`] for [`BREAKER_COOLDOWN`],
//! then lets one probe through (half-open). A success closes the breaker.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use crate::bundle::{load_bundle, sweep_bundle_dir, Bundle, BundleError};

/// Consecutive reload failures that open the breaker.
pub const BREAKER_THRESHOLD: u32 = 3;
/// How long an open breaker fast-fails before allowing a probe.
pub const BREAKER_COOLDOWN: Duration = Duration::from_secs(2);

/// A live, immutable, generation-stamped bundle.
#[derive(Debug)]
pub struct LiveBundle {
    /// Monotonic reload counter: generation 1 is the bundle the registry
    /// opened with, each successful reload increments it.
    pub generation: u64,
    /// Directory the bundle was loaded from.
    pub dir: PathBuf,
    pub bundle: Bundle,
}

/// Registry handing out the current [`LiveBundle`] and swapping in new
/// ones without blocking readers.
#[derive(Debug)]
pub struct ModelRegistry {
    current: RwLock<Arc<LiveBundle>>,
    /// The generation displaced by the most recent swap, kept for
    /// degraded fallback. `None` until the first reload.
    previous: Mutex<Option<Arc<LiveBundle>>>,
    /// Breaker bookkeeping: consecutive failures and when it opened
    /// (millis since `started`, 0 = closed).
    started: Instant,
    fail_streak: AtomicU32,
    opened_at_ms: AtomicU64,
    breaker_opens: AtomicU64,
}

impl ModelRegistry {
    /// Open the registry on the bundle at `dir` (generation 1), after a
    /// recovery sweep removing debris a crashed save may have left.
    pub fn open(dir: &Path) -> Result<ModelRegistry, BundleError> {
        let _ = sweep_bundle_dir(dir);
        let bundle = load_bundle(dir)?;
        Ok(ModelRegistry {
            current: RwLock::new(Arc::new(LiveBundle {
                generation: 1,
                dir: dir.to_path_buf(),
                bundle,
            })),
            previous: Mutex::new(None),
            started: Instant::now(),
            fail_streak: AtomicU32::new(0),
            opened_at_ms: AtomicU64::new(0),
            breaker_opens: AtomicU64::new(0),
        })
    }

    /// The live bundle. Cheap (one `Arc` clone under a read lock);
    /// callers hold the returned `Arc` for as long as they score against
    /// it, pinning that generation even across a concurrent reload.
    pub fn current(&self) -> Arc<LiveBundle> {
        Arc::clone(&self.current.read().expect("registry lock poisoned"))
    }

    /// The generation displaced by the latest swap, if any — the
    /// degraded-serving fallback.
    pub fn previous(&self) -> Option<Arc<LiveBundle>> {
        self.previous
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The live generation number (same cheap read lock as
    /// [`ModelRegistry::current`]).
    pub fn generation(&self) -> u64 {
        self.current
            .read()
            .expect("registry lock poisoned")
            .generation
    }

    /// How many times the reload breaker has opened.
    pub fn breaker_opens(&self) -> u64 {
        self.breaker_opens.load(Ordering::Relaxed)
    }

    /// Whether the breaker is currently fast-failing reloads.
    pub fn breaker_open(&self) -> bool {
        let opened = self.opened_at_ms.load(Ordering::Relaxed);
        opened != 0 && self.started.elapsed().as_millis() as u64 - opened < self.cooldown_ms()
    }

    fn cooldown_ms(&self) -> u64 {
        BREAKER_COOLDOWN.as_millis() as u64
    }

    /// Load the bundle at `dir`, validate it, and atomically swap it in.
    /// On any error the previous bundle stays live and the failure counts
    /// toward the circuit breaker. Returns the new generation.
    pub fn reload(&self, dir: &Path) -> Result<u64, BundleError> {
        if self.breaker_open() {
            return Err(BundleError::CircuitOpen {
                failures: self.fail_streak.load(Ordering::Relaxed),
            });
        }
        // All I/O and validation happens before the write lock.
        let bundle = match load_bundle(dir) {
            Ok(b) => b,
            Err(e) => {
                let streak = self.fail_streak.fetch_add(1, Ordering::Relaxed) + 1;
                if streak >= BREAKER_THRESHOLD {
                    // max(1): a zero-elapsed open would read as "closed".
                    self.opened_at_ms.store(
                        (self.started.elapsed().as_millis() as u64).max(1),
                        Ordering::Relaxed,
                    );
                    self.breaker_opens.fetch_add(1, Ordering::Relaxed);
                }
                return Err(e);
            }
        };
        self.fail_streak.store(0, Ordering::Relaxed);
        self.opened_at_ms.store(0, Ordering::Relaxed);
        let displaced;
        let generation;
        {
            let mut slot = self.current.write().expect("registry lock poisoned");
            generation = slot.generation + 1;
            displaced = std::mem::replace(
                &mut *slot,
                Arc::new(LiveBundle {
                    generation,
                    dir: dir.to_path_buf(),
                    bundle,
                }),
            );
        }
        *self.previous.lock().unwrap_or_else(|e| e.into_inner()) = Some(displaced);
        Ok(generation)
    }
}
