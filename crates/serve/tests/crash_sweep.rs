//! The atomicity headline proof: crash the bundle save at *every* commit
//! point (`bundle.crash=@k` for k = 0, 1, 2, …) and show that a reload
//! from the directory always yields exactly the old bundle or exactly
//! the new one — never a torn hybrid — and that the recovery sweep
//! leaves no debris behind.

use std::path::{Path, PathBuf};

use sqlan_core::{train_model, Labels, ModelKind, Problem, Task, TrainConfig, TrainData};
use sqlan_serve::bundle::{load_bundle, save_bundle, sweep_bundle_dir, BundleError, MANIFEST_FILE};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqlan-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

/// Train a classifier whose predictions depend on `flip`: the two
/// bundles in the sweep must be distinguishable by behavior, not just
/// by manifest name.
fn train_classifier(flip: bool) -> sqlan_core::TrainedModel {
    let mut xs = Vec::new();
    let mut cls = Vec::new();
    for i in 0..60 {
        let heavy = (i % 3 == 0) ^ flip;
        xs.push(if heavy {
            format!("SELECT * FROM huge WHERE f(x) > {i}")
        } else {
            format!("SELECT 1 FROM small WHERE id = {i}")
        });
        cls.push(heavy as usize);
    }
    train_model(
        ModelKind::WTfidf,
        Task::Classify(2),
        &TrainData {
            statements: &xs[..40],
            labels: Labels::Classes(&cls[..40]),
            valid_statements: &xs[40..],
            valid_labels: Labels::Classes(&cls[40..]),
        },
        &TrainConfig::tiny(),
        None,
    )
}

fn manifest_name(dir: &Path) -> String {
    let manifest: sqlan_serve::BundleManifest = serde_json::from_str(
        &std::fs::read_to_string(dir.join(MANIFEST_FILE)).expect("read manifest"),
    )
    .expect("parse manifest");
    manifest.name
}

#[test]
fn crash_at_every_commit_point_yields_old_or_new_never_torn() {
    let dir = tmp_dir("sweep");
    let probe = "SELECT * FROM huge WHERE f(x) > 1".to_string();
    let model_a = train_classifier(false);
    let model_b = train_classifier(true);
    let expect_a = model_a.predict_proba(&probe);
    let expect_b = model_b.predict_proba(&probe);
    assert_ne!(
        expect_a.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
        expect_b.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
        "the two generations must be behaviorally distinguishable"
    );

    save_bundle(&dir, "a", 1, &[(Problem::ErrorClassification, &model_a)]).expect("save a");

    let mut crash_points = 0u64;
    let mut committed_early = false;
    loop {
        let guard = sqlan_fault::install(7, &format!("bundle.crash=@{crash_points}"))
            .expect("install fault plane");
        let outcome = save_bundle(&dir, "b", 2, &[(Problem::ErrorClassification, &model_b)]);
        drop(guard);
        match outcome {
            Err(BundleError::Crashed { point }) => {
                assert_eq!(point, crash_points, "crash fired at the requested point");
                // The invariant: whatever state the crash left, a load
                // sees exactly generation A or exactly generation B.
                let bundle = load_bundle(&dir).expect("post-crash load");
                let name = manifest_name(&dir);
                let expect = match name.as_str() {
                    "a" => &expect_a,
                    "b" => {
                        committed_early = true; // crash landed after the rename
                        &expect_b
                    }
                    other => panic!("unexpected manifest name {other:?}"),
                };
                let model = bundle
                    .model(Problem::ErrorClassification)
                    .expect("model present");
                assert_eq!(
                    model.predict_proba(&probe).iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                    expect.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                    "crash at point {crash_points}: loaded bundle is neither exactly A nor exactly B"
                );
                crash_points += 1;
            }
            Err(other) => panic!("crash at point {crash_points}: unexpected error {other:?}"),
            Ok(_) => break, // the point index ran off the end of the commit sequence
        }
    }
    // The save path has one crash point bracketing every write syscall
    // of artifact + manifest commit; a short sweep means the
    // instrumentation fell out of the write path.
    assert!(
        crash_points >= 8,
        "only {crash_points} crash points swept — commit instrumentation missing?"
    );
    assert!(
        committed_early,
        "no crash point landed after the manifest rename — the post-commit points are gone"
    );

    // Final state: generation B, and after a recovery sweep the
    // directory holds the manifest plus exactly the files it references.
    assert_eq!(manifest_name(&dir), "b");
    let report = sweep_bundle_dir(&dir).expect("sweep");
    assert_eq!(report.temps_removed, 0, "saves must clean their own temps");
    let bundle = load_bundle(&dir).expect("final load");
    let model = bundle
        .model(Problem::ErrorClassification)
        .expect("model present");
    assert_eq!(
        model
            .predict_proba(&probe)
            .iter()
            .map(|f| f.to_bits())
            .collect::<Vec<_>>(),
        expect_b.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
    );
    let mut files: Vec<String> = std::fs::read_dir(&dir)
        .expect("read dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .collect();
    files.sort();
    assert!(
        files.iter().all(|f| !f.ends_with(".tmp")),
        "temp debris after sweep: {files:?}"
    );
    let manifest: sqlan_serve::BundleManifest = serde_json::from_str(
        &std::fs::read_to_string(dir.join(MANIFEST_FILE)).expect("read manifest"),
    )
    .expect("parse manifest");
    let mut expected: Vec<String> = manifest.entries.iter().map(|e| e.file.clone()).collect();
    expected.push(MANIFEST_FILE.to_string());
    expected.sort();
    assert_eq!(files, expected, "directory holds exactly the live bundle");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_sweep_removes_temps_and_orphans() {
    let dir = tmp_dir("recover");
    let model = train_classifier(false);
    save_bundle(&dir, "a", 1, &[(Problem::ErrorClassification, &model)]).expect("save");
    // Debris a crashed save could leave: a half-written temp and a
    // fully-written artifact no manifest references.
    std::fs::write(dir.join("half.json.tmp"), b"{\"partial").expect("temp");
    std::fs::write(dir.join("orphan-0123456789abcdef.json"), b"{}").expect("orphan");
    let report = sweep_bundle_dir(&dir).expect("sweep");
    assert_eq!(report.temps_removed, 1);
    assert_eq!(report.orphans_removed, 1);
    load_bundle(&dir).expect("bundle still loads");

    // Without a parseable manifest the sweep must stay conservative:
    // temps go (they are never live state) but artifacts stay — the
    // sweeper cannot prove they are orphans.
    std::fs::write(dir.join(MANIFEST_FILE), b"{not json").expect("break manifest");
    std::fs::write(dir.join("half.json.tmp"), b"{\"partial").expect("temp");
    std::fs::write(dir.join("keep-0123456789abcdef.json"), b"{}").expect("artifact");
    let report = sweep_bundle_dir(&dir).expect("sweep");
    assert_eq!(report.temps_removed, 1);
    assert_eq!(report.orphans_removed, 0);
    assert!(dir.join("keep-0123456789abcdef.json").exists());
    let _ = std::fs::remove_dir_all(&dir);
}
