//! Seeded chaos, end to end, in BOTH front-end modes: with scoring
//! panics, stalls, and socket faults injected at fixed probabilities,
//! concurrent retrying clients must see only well-formed responses from
//! the expected status set, no panic may escape the process, the server
//! must be healthy once the plane clears, the response-counter algebra
//! must still add up, and the fault schedule itself must replay: each
//! point's fire count equals the pure `decide` function summed over its
//! observed calls.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sqlan_core::{train_model, Dataset, Labels, ModelKind, Problem, Task, TrainConfig, TrainData};
use sqlan_serve::{
    save_bundle, Client, HttpMode, ModelRegistry, PredictRequest, PredictResponse, ReloadRequest,
    RetryPolicy, ScoringConfig, ServeConfig, ServerHandle,
};
use sqlan_workload::{build_sdss, Scale, SdssConfig};

const CHAOS_SEED: u64 = 0x5eed_cafe;
const CHAOS_SPEC: &str =
    "score.panic=0.05,score.stall=0.01/10,net.read.eagain=0.05,net.write.short=0.05,net.write.reset=0.01";
const CLIENTS: usize = 3;
const REQUESTS_PER_CLIENT: usize = 60;

fn boot(mode: HttpMode, tag: &str) -> (ServerHandle, std::path::PathBuf, Vec<String>) {
    let w = build_sdss(SdssConfig {
        n_sessions: 40,
        scale: Scale(0.02),
        seed: 7,
    });
    let ds = Dataset::build(&w, Problem::ErrorClassification);
    let cut = ds.len() * 4 / 5;
    let model = train_model(
        ModelKind::MFreq,
        Task::Classify(Problem::ErrorClassification.n_classes()),
        &TrainData {
            statements: &ds.statements[..cut],
            labels: Labels::Classes(&ds.class_labels[..cut]),
            valid_statements: &ds.statements[cut..],
            valid_labels: Labels::Classes(&ds.class_labels[cut..]),
        },
        &TrainConfig {
            epochs: 1,
            ..TrainConfig::tiny()
        },
        None,
    );
    let dir = std::env::temp_dir().join(format!(
        "sqlan-chaos-{tag}-{:?}-{}",
        mode,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    save_bundle(&dir, "chaos", 7, &[(Problem::ErrorClassification, &model)]).expect("save");
    let registry = Arc::new(ModelRegistry::open(&dir).expect("open"));
    let handle = sqlan_serve::start(
        registry,
        ServeConfig {
            http_workers: 2,
            http_mode: mode,
            idle_timeout: Duration::from_secs(2),
            scoring: ScoringConfig {
                workers: 2,
                degrade: true,
                ..ScoringConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .expect("start");
    (handle, dir, ds.statements)
}

fn modes() -> Vec<HttpMode> {
    if cfg!(target_os = "linux") {
        vec![HttpMode::Epoll, HttpMode::Threads]
    } else {
        vec![HttpMode::Threads]
    }
}

/// One client's share of the storm. Transport errors (injected resets)
/// reconnect and move on; everything that *does* come back must be a
/// well-formed response from the expected status set.
fn client_storm(
    addr: std::net::SocketAddr,
    tid: usize,
    statements: &[String],
    saw_degraded: &AtomicBool,
    mode: HttpMode,
) {
    let mut client = Client::connect(addr).expect("connect");
    let policy = RetryPolicy {
        attempts: 4,
        base: Duration::from_millis(5),
        cap: Duration::from_millis(50),
        seed: CHAOS_SEED ^ tid as u64,
    };
    for i in 0..REQUESTS_PER_CLIENT {
        let outcome = if i % 7 == 3 {
            client.request_with_retry("GET", "/healthz", "", &[], &policy)
        } else if i % 7 == 5 {
            client.request_with_retry("GET", "/metrics", "", &[], &policy)
        } else if i % 11 == 4 && tid == 0 {
            // Breaker fodder: reloads from a directory that does not
            // exist. 400 while the breaker counts, 503 once it opens.
            let body = serde_json::to_string(&ReloadRequest {
                dir: "/nonexistent/sqlan-chaos-bundle".to_string(),
            })
            .expect("serialize");
            client.request_with("POST", "/reload", &body, &[])
        } else {
            // Fresh identifiers defeat the prediction cache so scoring
            // (and its injected panics) actually runs.
            let mut batch: Vec<String> = statements.iter().skip(i % 50).take(4).cloned().collect();
            batch.push(format!("SELECT chaos_{tid}_{i} FROM storm WHERE flag"));
            let body = serde_json::to_string(&PredictRequest {
                problem: Problem::ErrorClassification.name().to_string(),
                statements: batch,
            })
            .expect("serialize");
            if i % 13 == 6 {
                // An already-expired deadline must shed with 504 before
                // the model runs. No retry: 504 is the expected answer.
                client.request_with("POST", "/predict", &body, &[("x-sqlan-deadline-ms", "0")])
            } else {
                client.request_with_retry("POST", "/predict", &body, &[], &policy)
            }
        };
        match outcome {
            Ok((status, body)) => {
                assert!(
                    matches!(status, 200 | 400 | 500 | 503 | 504),
                    "[{mode:?}] client {tid} req {i}: unexpected status {status}: {body}"
                );
                let _: serde_json::Value = serde_json::from_str(&body).unwrap_or_else(|e| {
                    panic!("[{mode:?}] client {tid} req {i}: malformed body ({e}): {body:?}")
                });
                if status == 200 {
                    if let Ok(p) = serde_json::from_str::<PredictResponse>(&body) {
                        if p.degraded {
                            saw_degraded.store(true, Ordering::Relaxed);
                        }
                    }
                }
                if i % 13 == 6 && i % 7 != 3 && i % 7 != 5 && !(i % 11 == 4 && tid == 0) {
                    assert_eq!(
                        status, 504,
                        "[{mode:?}] client {tid} req {i}: expired deadline must shed with 504"
                    );
                }
            }
            Err(_) => {
                // Injected reset mid-response (or every retry ate one).
                // The connection is trash; a fresh dial must work.
                let _ = client.reconnect();
            }
        }
    }
}

#[test]
fn seeded_chaos_serves_well_formed_responses_in_both_modes() {
    for mode in modes() {
        let (handle, dir, statements) = boot(mode, "storm");
        let guard = sqlan_fault::install(CHAOS_SEED, CHAOS_SPEC).expect("install chaos plane");

        let saw_degraded = Arc::new(AtomicBool::new(false));
        let statements = Arc::new(statements);
        let mut threads = Vec::new();
        for tid in 0..CLIENTS {
            let addr = handle.addr();
            let statements = Arc::clone(&statements);
            let saw_degraded = Arc::clone(&saw_degraded);
            threads.push(std::thread::spawn(move || {
                client_storm(addr, tid, &statements, &saw_degraded, mode)
            }));
        }
        for t in threads {
            t.join().expect("no client panicked");
        }

        // Schedule audit, read while the plane is still installed: each
        // point's fire count must equal the pure decision function
        // summed over its observed calls — the "same seed, same
        // schedule" contract, checked against what actually ran.
        let stats = sqlan_fault::stats();
        assert!(!stats.is_empty(), "fault plane vanished mid-test");
        let mut panic_fires = 0u64;
        for p in &stats {
            let replayed: u64 = (0..p.calls)
                .filter(|&n| sqlan_fault::decide(CHAOS_SEED, &p.rule.point, n, p.rule.trigger))
                .count() as u64;
            assert_eq!(
                p.fires, replayed,
                "[{mode:?}] {}: {} fires recorded, {} replayed over {} calls",
                p.rule.point, p.fires, replayed, p.calls
            );
            if p.rule.point == "score.panic" {
                panic_fires = p.fires;
            }
        }
        assert!(
            stats
                .iter()
                .any(|p| p.rule.point == "score.panic" && p.calls > 0),
            "[{mode:?}] the storm never reached the scoring path"
        );
        drop(guard);

        // The plane is gone: the server must be healthy, not limping.
        let mut client = Client::connect(handle.addr()).expect("reconnect");
        let (status, _) = client.get("/healthz").expect("healthz");
        assert_eq!(status, 200, "[{mode:?}] unhealthy after chaos cleared");

        let (status, body) = client.get("/metrics").expect("metrics");
        assert_eq!(status, 200);
        let m: sqlan_serve::MetricsSnapshot = serde_json::from_str(&body).expect("metrics json");
        // Counter algebra at quiescence: every request got exactly one
        // response class, panics included.
        assert_eq!(
            m.http_requests,
            m.responses_2xx + m.responses_4xx + m.responses_5xx,
            "[{mode:?}] response classes must partition requests"
        );
        if panic_fires > 0 {
            assert!(
                m.worker_panics >= panic_fires,
                "[{mode:?}] {panic_fires} injected panics but only {} caught",
                m.worker_panics
            );
            assert!(
                saw_degraded.load(Ordering::Relaxed) || m.degraded_responses > 0,
                "[{mode:?}] panics fired but nothing degraded — who answered those requests?"
            );
        }
        assert!(
            m.deadline_expired > 0,
            "[{mode:?}] the zero-deadline requests never shed"
        );
        assert!(
            m.breaker_opens >= 1,
            "[{mode:?}] repeated reload failures never opened the breaker"
        );

        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
