//! Slow-loris regression, end to end against the real server in BOTH
//! front-end modes: a client that dribbles a never-ending header must be
//! answered with `431` as soon as the 16 KiB head bound fills — the
//! server must not buffer without limit waiting for a line terminator
//! that never comes — and a client that stalls mid-request must be
//! disconnected by the idle timeout, not hold its slot forever.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sqlan_core::{train_model, Dataset, Labels, ModelKind, Problem, Task, TrainConfig, TrainData};
use sqlan_serve::{save_bundle, HttpMode, ModelRegistry, ScoringConfig, ServeConfig, ServerHandle};
use sqlan_workload::{build_sdss, Scale, SdssConfig};

fn boot(mode: HttpMode, tag: &str) -> (ServerHandle, std::path::PathBuf) {
    let w = build_sdss(SdssConfig {
        n_sessions: 40,
        scale: Scale(0.02),
        seed: 7,
    });
    let ds = Dataset::build(&w, Problem::ErrorClassification);
    let cut = ds.len() * 4 / 5;
    let model = train_model(
        ModelKind::MFreq,
        Task::Classify(Problem::ErrorClassification.n_classes()),
        &TrainData {
            statements: &ds.statements[..cut],
            labels: Labels::Classes(&ds.class_labels[..cut]),
            valid_statements: &ds.statements[cut..],
            valid_labels: Labels::Classes(&ds.class_labels[cut..]),
        },
        &TrainConfig {
            epochs: 1,
            ..TrainConfig::tiny()
        },
        None,
    );
    let dir = std::env::temp_dir().join(format!(
        "sqlan-loris-{tag}-{:?}-{}",
        mode,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    save_bundle(&dir, "loris", 7, &[(Problem::ErrorClassification, &model)]).expect("save");
    let registry = Arc::new(ModelRegistry::open(&dir).expect("open"));
    let handle = sqlan_serve::start(
        registry,
        ServeConfig {
            http_workers: 1,
            http_mode: mode,
            idle_timeout: Duration::from_millis(400),
            scoring: ScoringConfig {
                workers: 1,
                ..ScoringConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .expect("start");
    (handle, dir)
}

fn modes() -> Vec<HttpMode> {
    if cfg!(target_os = "linux") {
        vec![HttpMode::Epoll, HttpMode::Threads]
    } else {
        vec![HttpMode::Threads]
    }
}

/// Dribble an endless header in small chunks. The server must answer
/// `431` once `MAX_HEAD_BYTES` (16 KiB) have been buffered — well before
/// the dribble would ever finish — and then close.
#[test]
fn endless_header_dribble_gets_431_within_the_head_bound() {
    for mode in modes() {
        let (handle, dir) = boot(mode, "dribble");
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nx-loris: ")
            .expect("head start");
        // 64 dribbles * 512 B ≈ 2 * MAX_HEAD_BYTES, never a terminator.
        // The server must answer midway (431 at the 16 KiB mark) — it
        // must NOT absorb all of it silently. Poll for the response
        // between dribbles and stop writing once it appears, so the
        // server's close cannot RST the answer out of our receive queue.
        stream
            .set_read_timeout(Some(Duration::from_millis(5)))
            .expect("poll timeout");
        let chunk = [b'z'; 512];
        let mut sent = 32usize;
        let mut response = Vec::new();
        let mut probe = [0u8; 1024];
        for _ in 0..64 {
            if stream.write_all(&chunk).is_err() {
                break; // already rejected and closed — fine
            }
            sent += chunk.len();
            match stream.read(&mut probe) {
                Ok(0) => break,
                Ok(n) => {
                    response.extend_from_slice(&probe[..n]);
                    break;
                }
                Err(_) => {} // nothing yet: keep dribbling
            }
        }
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("drain timeout");
        let _ = stream.read_to_end(&mut response); // tolerate RST tail
        let text = String::from_utf8_lossy(&response);
        assert!(
            text.starts_with("HTTP/1.1 431 "),
            "[{mode:?}] expected 431, got {text:?} after {sent} dribbled bytes"
        );
        assert!(
            text.contains("request head too large"),
            "[{mode:?}] body: {text:?}"
        );
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The write-path mirror of slow-loris, threads mode: a client that
/// pipelines a pile of requests and never reads a byte of the responses
/// must not pin its worker thread forever on a blocked `write`. The
/// write timeout frees the worker, so a second client gets served on
/// the timeout scale — not never.
#[test]
fn slow_reader_cannot_pin_a_threads_worker_past_the_write_timeout() {
    let (handle, dir) = boot(HttpMode::Threads, "slowreader");
    let mut hog = TcpStream::connect(handle.addr()).expect("connect hog");
    hog.set_write_timeout(Some(Duration::from_secs(2)))
        .expect("hog write timeout");
    hog.set_read_timeout(Some(Duration::from_secs(20)))
        .expect("hog read timeout");
    // ~8000 pipelined /metrics requests → several MB of responses, far
    // past what loopback socket buffers absorb with nobody reading.
    // The single worker (boot uses http_workers: 1) answers until its
    // write blocks, then the 400 ms write timeout must kill the
    // connection. Ignore write errors: the server may drop us mid-pile.
    let pile = "GET /metrics HTTP/1.1\r\n\r\n".repeat(8000);
    let _ = hog.write_all(pile.as_bytes());

    // The worker must come free and serve someone else promptly.
    let start = Instant::now();
    let mut client = TcpStream::connect(handle.addr()).expect("connect second");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    client
        .write_all(b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n")
        .expect("healthz");
    let mut response = Vec::new();
    client.read_to_end(&mut response).expect("read healthz");
    let text = String::from_utf8_lossy(&response);
    assert!(
        text.starts_with("HTTP/1.1 200 "),
        "second client not served: {text:?}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(15),
        "worker pinned by the slow reader for {:?}",
        start.elapsed()
    );

    // And the hog itself was disconnected (write timeout or idle
    // timeout), not parked: draining without reading our backlog of
    // responses must hit EOF/reset in bounded time.
    let mut sink = [0u8; 64 * 1024];
    let drained = Instant::now();
    loop {
        match hog.read(&mut sink) {
            Ok(0) => break,  // FIN
            Err(_) => break, // reset or timeout
            Ok(_) if drained.elapsed() > Duration::from_secs(20) => {
                panic!("hog connection still alive and streaming after 20s")
            }
            Ok(_) => {}
        }
    }
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A client that sends half a request and then stalls is dropped by the
/// idle timeout — the connection cannot be parked forever.
#[test]
fn stalled_mid_request_connection_is_dropped_by_idle_timeout() {
    for mode in modes() {
        let (handle, dir) = boot(mode, "stall");
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        stream.write_all(b"GET /healthz HT").expect("partial head");
        let start = Instant::now();
        let mut buf = [0u8; 64];
        // The server closes (EOF or reset) without ever getting a full
        // request; it must happen on the idle-timeout scale, not ours.
        let n = stream.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "[{mode:?}] expected close, got data");
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "[{mode:?}] connection held too long"
        );
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
