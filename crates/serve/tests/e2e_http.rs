//! End-to-end: train on a small fixed-seed workload, save a bundle, boot
//! the server on an ephemeral port, and assert over HTTP that
//! batched/cached predictions are byte-identical to in-process
//! `predict_*` calls — including after a hot-swap reload — plus the
//! operational surface (healthz, metrics, shedding, error paths).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use sqlan_core::{
    train_model, Dataset, Labels, ModelKind, Problem, Task, TrainConfig, TrainData, TrainedModel,
};
#[cfg(target_os = "linux")]
use sqlan_serve::HttpMode;
use sqlan_serve::{
    save_bundle, Client, ModelRegistry, PredictRequest, PredictResponse, ScoringConfig, ServeConfig,
};
use sqlan_workload::{build_sdss, Scale, SdssConfig};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqlan-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

/// Small fixed-seed workload shared by both bundles.
fn datasets() -> (Dataset, Dataset) {
    let w = build_sdss(SdssConfig {
        n_sessions: 120,
        scale: Scale(0.02),
        seed: 2020,
    });
    (
        Dataset::build(&w, Problem::ErrorClassification),
        Dataset::build(&w, Problem::AnswerSize),
    )
}

fn train_classifier(kind: ModelKind, ds: &Dataset, cfg: &TrainConfig) -> TrainedModel {
    let n = ds.len();
    let cut = n * 4 / 5;
    train_model(
        kind,
        Task::Classify(Problem::ErrorClassification.n_classes()),
        &TrainData {
            statements: &ds.statements[..cut],
            labels: Labels::Classes(&ds.class_labels[..cut]),
            valid_statements: &ds.statements[cut..],
            valid_labels: Labels::Classes(&ds.class_labels[cut..]),
        },
        cfg,
        None,
    )
}

fn train_regressor(kind: ModelKind, ds: &Dataset, cfg: &TrainConfig) -> TrainedModel {
    let n = ds.len();
    let cut = n * 4 / 5;
    train_model(
        kind,
        Task::Regress,
        &TrainData {
            statements: &ds.statements[..cut],
            labels: Labels::Values(&ds.log_labels[..cut]),
            valid_statements: &ds.statements[cut..],
            valid_labels: Labels::Values(&ds.log_labels[cut..]),
        },
        cfg,
        None,
    )
}

fn predict_body(problem: Problem, statements: &[String]) -> String {
    serde_json::to_string(&PredictRequest {
        problem: problem.name().to_string(),
        statements: statements.to_vec(),
    })
    .expect("request serializes")
}

fn assert_matches_in_process(
    response: &PredictResponse,
    classifier: &TrainedModel,
    statements: &[String],
) {
    assert_eq!(response.predictions.len(), statements.len());
    let expect_classes = classifier.predict_class_batch(statements);
    let expect_probas = classifier.predict_proba_batch(statements);
    for (i, p) in response.predictions.iter().enumerate() {
        assert_eq!(p.class, Some(expect_classes[i]), "statement {i}");
        let got = p.proba.as_ref().expect("classifier returns proba");
        assert_eq!(
            got.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            expect_probas[i]
                .iter()
                .map(|f| f.to_bits())
                .collect::<Vec<_>>(),
            "proba bits for statement {i}"
        );
        assert_eq!(p.value, None);
    }
}

#[test]
fn http_predictions_match_in_process_including_hot_swap() {
    let (cls_ds, reg_ds) = datasets();
    let cfg = TrainConfig {
        epochs: 1,
        ..TrainConfig::tiny()
    };
    // Bundle A: learned classifier + median regressor. Bundle B swaps in
    // a different model family so post-reload predictions must change.
    let classifier_a = train_classifier(ModelKind::WTfidf, &cls_ds, &cfg);
    let regressor_a = train_regressor(ModelKind::Median, &reg_ds, &cfg);
    let classifier_b = train_classifier(ModelKind::MFreq, &cls_ds, &cfg);
    let regressor_b = train_regressor(ModelKind::CTfidf, &reg_ds, &cfg);

    let dir_a = tmp_dir("bundle-a");
    let dir_b = tmp_dir("bundle-b");
    save_bundle(
        &dir_a,
        "sdss-a",
        2020,
        &[
            (Problem::ErrorClassification, &classifier_a),
            (Problem::AnswerSize, &regressor_a),
        ],
    )
    .expect("save bundle a");
    save_bundle(
        &dir_b,
        "sdss-b",
        2020,
        &[
            (Problem::ErrorClassification, &classifier_b),
            (Problem::AnswerSize, &regressor_b),
        ],
    )
    .expect("save bundle b");

    let registry = Arc::new(ModelRegistry::open(&dir_a).expect("open registry"));
    let handle = sqlan_serve::start(
        Arc::clone(&registry),
        ServeConfig {
            http_workers: 2,
            scoring: ScoringConfig {
                workers: 2,
                max_batch: 16,
                max_wait: Duration::from_millis(1),
                ..ScoringConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Health reflects bundle A.
    let (status, body) = client.get("/healthz").expect("healthz");
    assert_eq!(status, 200, "{body}");
    let health: sqlan_serve::HealthResponse = serde_json::from_str(&body).expect("health json");
    assert_eq!(health.generation, 1);
    assert_eq!(health.bundle, "sdss-a");
    assert!(health
        .problems
        .contains(&"error_classification".to_string()));

    // Batched classification over HTTP == in-process, bit for bit.
    let test_statements: Vec<String> = cls_ds.statements.iter().take(48).cloned().collect();
    let body_a = predict_body(Problem::ErrorClassification, &test_statements);
    let (status, first) = client.post("/predict", &body_a).expect("predict");
    assert_eq!(status, 200, "{first}");
    let response: PredictResponse = serde_json::from_str(&first).expect("predict json");
    assert_eq!(response.generation, 1);
    assert_matches_in_process(&response, &classifier_a, &test_statements);

    // Regression too (f64 bit equality).
    let reg_statements: Vec<String> = reg_ds.statements.iter().take(16).cloned().collect();
    let (status, body) = client
        .post(
            "/predict",
            &predict_body(Problem::AnswerSize, &reg_statements),
        )
        .expect("predict reg");
    assert_eq!(status, 200, "{body}");
    let reg_response: PredictResponse = serde_json::from_str(&body).expect("reg json");
    let expect = regressor_a.predict_value_batch(&reg_statements);
    for (i, p) in reg_response.predictions.iter().enumerate() {
        assert_eq!(p.value.expect("value").to_bits(), expect[i].to_bits());
        assert_eq!(p.class, None);
    }

    // The identical request again is served from the cache — same bytes.
    let (status, second) = client.post("/predict", &body_a).expect("cached predict");
    assert_eq!(status, 200);
    assert_eq!(first, second, "cached response must be byte-identical");
    let (_, metrics_body) = client.get("/metrics").expect("metrics");
    let metrics: sqlan_serve::MetricsSnapshot =
        serde_json::from_str(&metrics_body).expect("metrics json");
    assert!(
        metrics.cache_hits >= test_statements.len() as u64,
        "expected cache hits, got {}",
        metrics.cache_hits
    );
    assert!(metrics.predict_requests >= 3);
    assert!(metrics.batches >= 1);

    // Hot swap to bundle B over HTTP; readers see generation 2 and the
    // new model's (different) predictions, again bit-identical.
    let (status, body) = client
        .post(
            "/reload",
            &format!("{{\"dir\": {:?}}}", dir_b.display().to_string()),
        )
        .expect("reload");
    assert_eq!(status, 200, "{body}");
    let (status, body) = client
        .post("/predict", &body_a)
        .expect("predict after swap");
    assert_eq!(status, 200, "{body}");
    let response_b: PredictResponse = serde_json::from_str(&body).expect("swap json");
    assert_eq!(response_b.generation, 2);
    assert_matches_in_process(&response_b, &classifier_b, &test_statements);
    // mfreq predicts one constant class everywhere, wtfidf does not (it
    // must separate at least one statement) — so the swap is observable.
    assert_ne!(
        response.predictions, response_b.predictions,
        "hot swap must change predictions"
    );

    // Unknown problem and malformed JSON are client errors, not crashes.
    let (status, _) = client
        .post("/predict", "{\"problem\": \"nope\", \"statements\": []}")
        .expect("bad problem");
    assert_eq!(status, 400);
    let (status, _) = client.post("/predict", "{not json").expect("bad json");
    assert_eq!(status, 400);
    let (status, _) = client.get("/no-such-route").expect("404");
    assert_eq!(status, 404);

    drop(client);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// The two front ends must be indistinguishable on the wire: for every
/// request shape — happy path, routing errors, and each hardened parse
/// error — the complete response byte stream (status line, headers,
/// body) is compared across a threaded and an epoll server booted on
/// the same bundle.
#[cfg(target_os = "linux")]
#[test]
fn front_ends_serve_byte_identical_responses() {
    use std::io::{Read, Write};
    use std::net::{SocketAddr, TcpStream};

    let (cls_ds, _) = datasets();
    let cfg = TrainConfig {
        epochs: 1,
        ..TrainConfig::tiny()
    };
    let classifier = train_classifier(ModelKind::WTfidf, &cls_ds, &cfg);
    let dir = tmp_dir("byte-identity");
    save_bundle(
        &dir,
        "byte-identity",
        2020,
        &[(Problem::ErrorClassification, &classifier)],
    )
    .expect("save");
    let registry = Arc::new(ModelRegistry::open(&dir).expect("open"));
    let boot = |mode: HttpMode| {
        sqlan_serve::start(
            Arc::clone(&registry),
            ServeConfig {
                http_workers: 2,
                http_mode: mode,
                scoring: ScoringConfig {
                    workers: 1,
                    max_batch: 16,
                    max_wait: Duration::from_millis(1),
                    ..ScoringConfig::default()
                },
                ..ServeConfig::default()
            },
        )
        .expect("start server")
    };
    let epoll = boot(HttpMode::Epoll);
    let threads = boot(HttpMode::Threads);
    assert_eq!(epoll.http_mode(), HttpMode::Epoll);
    assert_eq!(threads.http_mode(), HttpMode::Threads);

    /// One connection, one request, read to EOF (every probe either sends
    /// `Connection: close` or triggers an error that closes).
    fn raw_exchange(addr: SocketAddr, raw: &[u8]) -> Vec<u8> {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        stream.write_all(raw).expect("write");
        let mut response = Vec::new();
        stream.read_to_end(&mut response).expect("read");
        response
    }

    let predict = predict_body(Problem::ErrorClassification, &cls_ds.statements[..8]);
    let probes: Vec<(&str, Vec<u8>)> = vec![
        (
            "predict",
            format!(
                "POST /predict HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{}",
                predict.len(),
                predict
            )
            .into_bytes(),
        ),
        (
            "bad json",
            b"POST /predict HTTP/1.1\r\ncontent-length: 9\r\nconnection: close\r\n\r\n{not json"
                .to_vec(),
        ),
        (
            "404",
            b"GET /no-such-route HTTP/1.1\r\nconnection: close\r\n\r\n".to_vec(),
        ),
        (
            "405",
            b"DELETE /predict HTTP/1.1\r\nconnection: close\r\n\r\n".to_vec(),
        ),
        (
            "signed content-length",
            b"POST /predict HTTP/1.1\r\ncontent-length: +4\r\n\r\nabcd".to_vec(),
        ),
        (
            "conflicting content-lengths",
            b"POST /predict HTTP/1.1\r\ncontent-length: 4\r\ncontent-length: 5\r\n\r\nabcd"
                .to_vec(),
        ),
        ("non-UTF-8 head", b"GET /\xff\xfe HTTP/1.1\r\n\r\n".to_vec()),
        ("oversized head", {
            let mut raw = b"GET / HTTP/1.1\r\nx-filler: ".to_vec();
            raw.resize(20 * 1024, b'a'); // > MAX_HEAD_BYTES in one write
            raw
        }),
    ];
    for (name, raw) in &probes {
        let from_epoll = raw_exchange(epoll.addr(), raw);
        let from_threads = raw_exchange(threads.addr(), raw);
        assert_eq!(
            String::from_utf8_lossy(&from_epoll),
            String::from_utf8_lossy(&from_threads),
            "probe `{name}` must serve identical bytes in both modes"
        );
        assert!(!from_epoll.is_empty(), "probe `{name}` got no response");
    }

    // `/healthz` intentionally differs per instance (uptime, HTTP tier),
    // so it is compared structurally with those fields masked.
    let health_probe = b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n";
    let parse_health = |raw: Vec<u8>| -> sqlan_serve::HealthResponse {
        let text = String::from_utf8(raw).expect("utf8 health response");
        let body = text.split("\r\n\r\n").nth(1).expect("health body");
        serde_json::from_str(body).expect("health json")
    };
    let mut from_epoll = parse_health(raw_exchange(epoll.addr(), health_probe));
    let mut from_threads = parse_health(raw_exchange(threads.addr(), health_probe));
    assert_eq!(from_epoll.http_tier, "epoll");
    assert_eq!(from_threads.http_tier, "threads");
    assert!(from_epoll.uptime_s >= 0.0 && from_threads.uptime_s >= 0.0);
    from_epoll.uptime_s = 0.0;
    from_threads.uptime_s = 0.0;
    from_epoll.http_tier.clear();
    from_threads.http_tier.clear();
    assert_eq!(
        serde_json::to_string(&from_epoll).expect("health json"),
        serde_json::to_string(&from_threads).expect("health json"),
        "healthz must be identical across modes apart from uptime/tier"
    );

    epoll.shutdown();
    threads.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn saturation_sheds_with_503() {
    let (cls_ds, _) = datasets();
    let cfg = TrainConfig {
        epochs: 1,
        ..TrainConfig::tiny()
    };
    let classifier = train_classifier(ModelKind::MFreq, &cls_ds, &cfg);
    let dir = tmp_dir("shed");
    save_bundle(
        &dir,
        "shed",
        1,
        &[(Problem::ErrorClassification, &classifier)],
    )
    .expect("save");
    let registry = Arc::new(ModelRegistry::open(&dir).expect("open"));
    // queue_capacity 0: every cache miss overflows the queue — the
    // deterministic way to exercise the shedding path end to end.
    let handle = sqlan_serve::start(
        registry,
        ServeConfig {
            http_workers: 1,
            scoring: ScoringConfig {
                workers: 1,
                queue_capacity: 0,
                cache_capacity: 0,
                ..ScoringConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .expect("start");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let (status, body) = client
        .post(
            "/predict",
            &predict_body(Problem::ErrorClassification, &["SELECT 1".to_string()]),
        )
        .expect("shed request");
    assert_eq!(status, 503, "{body}");
    let (_, metrics_body) = client.get("/metrics").expect("metrics");
    let metrics: sqlan_serve::MetricsSnapshot =
        serde_json::from_str(&metrics_body).expect("metrics json");
    assert_eq!(metrics.shed, 1);
    drop(client);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
