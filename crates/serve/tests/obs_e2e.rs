//! End-to-end observability: boot the server, drive a real `/predict`,
//! and assert over HTTP that
//!
//! * `GET /debug/trace` returns per-stage spans (parse → cache probe →
//!   queue wait → batch score) for that request, in **both** HTTP front
//!   ends;
//! * `GET /metrics?format=prom` is well-formed Prometheus text
//!   exposition (HELP/TYPE headers, cumulative `_bucket` series with a
//!   `+Inf` bound, `_sum`/`_count`);
//! * prediction bytes are identical with observability on and off
//!   (`SQLAN_OBS` is a pure observer);
//! * `/healthz` reports the active front end and an uptime.
//!
//! Everything lives in one `#[test]` because `sqlan_obs::set_enabled`
//! is process-global: parallel test threads flipping it would race.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use sqlan_core::{
    train_model, Dataset, Labels, ModelKind, Problem, Task, TrainConfig, TrainData, TrainedModel,
};
use sqlan_serve::{
    save_bundle, Client, HttpMode, ModelRegistry, PredictRequest, ScoringConfig, ServeConfig,
    ServerHandle, TraceDump,
};
use sqlan_workload::{build_sdss, Scale, SdssConfig};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqlan-obs-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn dataset() -> Dataset {
    let w = build_sdss(SdssConfig {
        n_sessions: 120,
        scale: Scale(0.02),
        seed: 2020,
    });
    Dataset::build(&w, Problem::ErrorClassification)
}

fn train_classifier(ds: &Dataset) -> TrainedModel {
    let cfg = TrainConfig {
        epochs: 1,
        ..TrainConfig::tiny()
    };
    let n = ds.len();
    let cut = n * 4 / 5;
    train_model(
        ModelKind::WTfidf,
        Task::Classify(Problem::ErrorClassification.n_classes()),
        &TrainData {
            statements: &ds.statements[..cut],
            labels: Labels::Classes(&ds.class_labels[..cut]),
            valid_statements: &ds.statements[cut..],
            valid_labels: Labels::Classes(&ds.class_labels[cut..]),
        },
        &cfg,
        None,
    )
}

fn boot(registry: &Arc<ModelRegistry>, mode: HttpMode) -> ServerHandle {
    sqlan_serve::start(
        Arc::clone(registry),
        ServeConfig {
            http_workers: 2,
            http_mode: mode,
            scoring: ScoringConfig {
                workers: 1,
                max_batch: 16,
                max_wait: Duration::from_millis(1),
                ..ScoringConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .expect("start server")
}

fn predict_body(statements: &[String]) -> String {
    serde_json::to_string(&PredictRequest {
        problem: Problem::ErrorClassification.name().to_string(),
        statements: statements.to_vec(),
    })
    .expect("request serializes")
}

/// Span names recorded for the most recent `/predict` trace.
fn predict_span_names(client: &mut Client) -> Vec<String> {
    let (status, body) = client.get("/debug/trace?n=16").expect("debug trace");
    assert_eq!(status, 200, "{body}");
    let dump: TraceDump = serde_json::from_str(&body).expect("trace json");
    assert!(dump.enabled, "obs must be on for this probe");
    let trace = dump
        .traces
        .iter()
        .find(|t| t.route == "/predict")
        .expect("a /predict trace in the ring");
    assert!(trace.total_ns > 0);
    assert_eq!(trace.status, 200);
    trace.spans.iter().map(|s| s.name.clone()).collect()
}

/// One front end's worth of assertions: trace spans, Prometheus text,
/// healthz shape. Returns the `/predict` response bytes for obs-on.
fn exercise(handle: &ServerHandle, tier: &str, statements: &[String]) -> String {
    let mut client = Client::connect(handle.addr()).expect("connect");
    let body = predict_body(statements);

    // Drive a real prediction with obs on; its trace must land in the
    // ring with the per-stage spans.
    sqlan_obs::set_enabled(true);
    let (status, on_bytes) = client.post("/predict", &body).expect("predict");
    assert_eq!(status, 200, "{on_bytes}");
    let spans = predict_span_names(&mut client);
    for expected in ["parse", "normalize", "cache_probe", "batch_score"] {
        assert!(
            spans.iter().any(|s| s == expected),
            "[{tier}] expected span `{expected}`, got {spans:?}"
        );
    }

    // Prometheus exposition: HELP/TYPE headers, histogram series with a
    // cumulative +Inf bucket and _sum/_count, and the serve counters.
    let (status, prom) = client.get("/metrics?format=prom").expect("prom");
    assert_eq!(status, 200);
    assert!(prom.contains("# HELP sqlan_http_requests_total"));
    assert!(prom.contains("# TYPE sqlan_http_requests_total counter"));
    assert!(prom.contains("# TYPE sqlan_request_duration_seconds histogram"));
    assert!(prom.contains("sqlan_request_duration_seconds_bucket{le=\"+Inf\"}"));
    assert!(prom.contains("sqlan_request_duration_seconds_sum"));
    assert!(prom.contains("sqlan_request_duration_seconds_count"));
    assert!(prom.contains("sqlan_statements_total{problem=\"error_classification\"}"));
    assert!(prom.contains("sqlan_http_responses_total{class=\"2xx\"}"));
    // The features crate reports featurize wall time into the global
    // registry, merged into the same exposition.
    assert!(prom.contains("# TYPE sqlan_featurize_seconds histogram"));
    for line in prom.lines() {
        assert!(
            line.starts_with('#') || line.contains(' '),
            "sample lines are `name value`: {line:?}"
        );
    }

    // Healthz names the active front end and carries an uptime.
    let (status, health) = client.get("/healthz").expect("healthz");
    assert_eq!(status, 200);
    let health: sqlan_serve::HealthResponse = serde_json::from_str(&health).expect("health json");
    assert_eq!(health.http_tier, tier);
    assert!(health.uptime_s >= 0.0);
    assert_eq!(health.generation, 1);

    // Pure observer: the same request with obs off serves byte-identical
    // prediction bytes, and /debug/trace reports itself disabled.
    sqlan_obs::set_enabled(false);
    let (status, off_bytes) = client.post("/predict", &body).expect("predict obs-off");
    assert_eq!(status, 200);
    assert_eq!(
        on_bytes, off_bytes,
        "[{tier}] SQLAN_OBS must not change served bytes"
    );
    let (status, dump) = client.get("/debug/trace").expect("trace obs-off");
    assert_eq!(status, 200);
    let dump: TraceDump = serde_json::from_str(&dump).expect("trace json");
    assert!(!dump.enabled);
    sqlan_obs::set_enabled(true);

    on_bytes
}

#[test]
fn tracing_and_prometheus_cover_both_front_ends() {
    let ds = dataset();
    let classifier = train_classifier(&ds);
    let dir = tmp_dir("bundle");
    save_bundle(
        &dir,
        "obs-e2e",
        2020,
        &[(Problem::ErrorClassification, &classifier)],
    )
    .expect("save bundle");
    let registry = Arc::new(ModelRegistry::open(&dir).expect("open registry"));
    let statements: Vec<String> = ds.statements.iter().take(8).cloned().collect();

    let threads = boot(&registry, HttpMode::Threads);
    let from_threads = exercise(&threads, "threads", &statements);
    threads.shutdown();

    #[cfg(target_os = "linux")]
    {
        let epoll = boot(&registry, HttpMode::Epoll);
        let from_epoll = exercise(&epoll, "epoll", &statements);
        epoll.shutdown();
        assert_eq!(
            from_threads, from_epoll,
            "prediction bytes must also match across front ends"
        );
    }
    let _ = from_threads;

    let _ = std::fs::remove_dir_all(&dir);
}
