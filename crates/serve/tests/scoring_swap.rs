//! Regression: a hot swap that *removes* a problem must not strand jobs
//! already admitted for it. Jobs pin the bundle they were admitted
//! against, so the batch worker scores them under that generation even
//! if the live bundle no longer carries the model.

use std::sync::Arc;
use std::time::Duration;

use sqlan_core::{train_model, Labels, ModelKind, Problem, Task, TrainConfig, TrainData};
use sqlan_serve::{save_bundle, ModelRegistry, ScoreError, ScoringConfig, ScoringEngine};

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sqlan-swap-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

#[test]
fn swap_removing_problem_does_not_strand_admitted_jobs() {
    let xs: Vec<String> = (0..40).map(|i| format!("SELECT {i} FROM t")).collect();
    let cls: Vec<usize> = (0..40).map(|i| i % 2).collect();
    let vals: Vec<f64> = (0..40).map(|i| i as f64).collect();
    let cfg = TrainConfig::tiny();
    let classifier = train_model(
        ModelKind::MFreq,
        Task::Classify(2),
        &TrainData {
            statements: &xs[..30],
            labels: Labels::Classes(&cls[..30]),
            valid_statements: &xs[30..],
            valid_labels: Labels::Classes(&cls[30..]),
        },
        &cfg,
        None,
    );
    let regressor = train_model(
        ModelKind::Median,
        Task::Regress,
        &TrainData {
            statements: &xs[..30],
            labels: Labels::Values(&vals[..30]),
            valid_statements: &xs[30..],
            valid_labels: Labels::Values(&vals[30..]),
        },
        &cfg,
        None,
    );

    let dir_a = tmp_dir("a");
    let dir_b = tmp_dir("b");
    save_bundle(
        &dir_a,
        "a",
        1,
        &[(Problem::ErrorClassification, &classifier)],
    )
    .expect("save a");
    // Bundle B has no error_classification model at all.
    save_bundle(&dir_b, "b", 1, &[(Problem::AnswerSize, &regressor)]).expect("save b");

    let registry = Arc::new(ModelRegistry::open(&dir_a).expect("open"));
    // One worker that holds its batch open long enough for the reload
    // below to land before scoring starts.
    let engine = ScoringEngine::start(
        Arc::clone(&registry),
        ScoringConfig {
            workers: 1,
            max_batch: 64,
            max_wait: Duration::from_millis(300),
            ..ScoringConfig::default()
        },
    );

    let result = std::thread::scope(|s| {
        let engine = &engine;
        let scorer = s.spawn(move || {
            engine.score(
                Problem::ErrorClassification,
                &["SELECT 1 FROM t".to_string()],
            )
        });
        // Let the job be admitted and picked up, then swap the problem
        // away while the worker is still holding the batch open.
        std::thread::sleep(Duration::from_millis(50));
        registry.reload(&dir_b).expect("reload");
        scorer.join().expect("scorer thread must not panic")
    });
    let scored = result.expect("admitted job must be served from its pinned bundle");
    assert_eq!(scored.generation, 1, "scored under the admitted generation");
    assert_eq!(scored.predictions.len(), 1);
    assert!(scored.predictions[0].class.is_some());

    // New admissions, by contrast, see the swapped bundle and reject.
    assert!(matches!(
        engine.score(Problem::ErrorClassification, &["SELECT 2".to_string()]),
        Err(ScoreError::UnknownProblem(_))
    ));
    engine.shutdown();
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
