//! Regression: a hot swap that *removes* a problem must not strand jobs
//! already admitted for it. Jobs pin the bundle they were admitted
//! against, so the batch worker scores them under that generation even
//! if the live bundle no longer carries the model.
//!
//! Plus the reload-storm regression: under a barrage of concurrent
//! reloads, every scored batch must come from exactly one bundle
//! (bitwise — the generation-aware cache and the pinned-bundle worker
//! must never mix generations within a batch), and displaced
//! generations must actually free — only the live bundle and the single
//! pinned `previous` may stay alive.

use std::sync::Arc;
use std::time::Duration;

use sqlan_core::{train_model, Labels, ModelKind, Problem, Task, TrainConfig, TrainData};
use sqlan_serve::{save_bundle, ModelRegistry, ScoreError, ScoringConfig, ScoringEngine};

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sqlan-swap-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

#[test]
fn swap_removing_problem_does_not_strand_admitted_jobs() {
    let xs: Vec<String> = (0..40).map(|i| format!("SELECT {i} FROM t")).collect();
    let cls: Vec<usize> = (0..40).map(|i| i % 2).collect();
    let vals: Vec<f64> = (0..40).map(|i| i as f64).collect();
    let cfg = TrainConfig::tiny();
    let classifier = train_model(
        ModelKind::MFreq,
        Task::Classify(2),
        &TrainData {
            statements: &xs[..30],
            labels: Labels::Classes(&cls[..30]),
            valid_statements: &xs[30..],
            valid_labels: Labels::Classes(&cls[30..]),
        },
        &cfg,
        None,
    );
    let regressor = train_model(
        ModelKind::Median,
        Task::Regress,
        &TrainData {
            statements: &xs[..30],
            labels: Labels::Values(&vals[..30]),
            valid_statements: &xs[30..],
            valid_labels: Labels::Values(&vals[30..]),
        },
        &cfg,
        None,
    );

    let dir_a = tmp_dir("a");
    let dir_b = tmp_dir("b");
    save_bundle(
        &dir_a,
        "a",
        1,
        &[(Problem::ErrorClassification, &classifier)],
    )
    .expect("save a");
    // Bundle B has no error_classification model at all.
    save_bundle(&dir_b, "b", 1, &[(Problem::AnswerSize, &regressor)]).expect("save b");

    let registry = Arc::new(ModelRegistry::open(&dir_a).expect("open"));
    // One worker that holds its batch open long enough for the reload
    // below to land before scoring starts.
    let engine = ScoringEngine::start(
        Arc::clone(&registry),
        ScoringConfig {
            workers: 1,
            max_batch: 64,
            max_wait: Duration::from_millis(300),
            ..ScoringConfig::default()
        },
    );

    let result = std::thread::scope(|s| {
        let engine = &engine;
        let scorer = s.spawn(move || {
            engine.score(
                Problem::ErrorClassification,
                &["SELECT 1 FROM t".to_string()],
            )
        });
        // Let the job be admitted and picked up, then swap the problem
        // away while the worker is still holding the batch open.
        std::thread::sleep(Duration::from_millis(50));
        registry.reload(&dir_b).expect("reload");
        scorer.join().expect("scorer thread must not panic")
    });
    let scored = result.expect("admitted job must be served from its pinned bundle");
    assert_eq!(scored.generation, 1, "scored under the admitted generation");
    assert_eq!(scored.predictions.len(), 1);
    assert!(scored.predictions[0].class.is_some());

    // New admissions, by contrast, see the swapped bundle and reject.
    assert!(matches!(
        engine.score(Problem::ErrorClassification, &["SELECT 2".to_string()]),
        Err(ScoreError::UnknownProblem(_))
    ));
    engine.shutdown();
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// Train a classifier whose per-statement probabilities depend on
/// `flip`, so bundles built from the two are bitwise distinguishable.
fn train_flip_classifier(flip: bool) -> sqlan_core::TrainedModel {
    let mut xs = Vec::new();
    let mut cls = Vec::new();
    for i in 0..60 {
        let heavy = (i % 3 == 0) ^ flip;
        xs.push(if heavy {
            format!("SELECT * FROM huge WHERE f(x) > {i}")
        } else {
            format!("SELECT 1 FROM small WHERE id = {i}")
        });
        cls.push(heavy as usize);
    }
    train_model(
        ModelKind::WTfidf,
        Task::Classify(2),
        &TrainData {
            statements: &xs[..40],
            labels: Labels::Classes(&cls[..40]),
            valid_statements: &xs[40..],
            valid_labels: Labels::Classes(&cls[40..]),
        },
        &TrainConfig::tiny(),
        None,
    )
}

fn proba_bits(p: &[f32]) -> Vec<u32> {
    p.iter().map(|f| f.to_bits()).collect()
}

#[test]
fn reload_storm_never_mixes_generations_within_a_batch() {
    let model_a = train_flip_classifier(false);
    let model_b = train_flip_classifier(true);
    let probes: Vec<String> = (0..8)
        .map(|i| format!("SELECT * FROM huge WHERE f(x) > {}", 100 + i))
        .collect();
    let expect_a: Vec<Vec<u32>> = probes
        .iter()
        .map(|s| proba_bits(&model_a.predict_proba(s)))
        .collect();
    let expect_b: Vec<Vec<u32>> = probes
        .iter()
        .map(|s| proba_bits(&model_b.predict_proba(s)))
        .collect();
    for (i, (a, b)) in expect_a.iter().zip(&expect_b).enumerate() {
        assert_ne!(a, b, "probe {i} cannot distinguish the bundles");
    }

    let dir_a = tmp_dir("storm-a");
    let dir_b = tmp_dir("storm-b");
    save_bundle(&dir_a, "a", 1, &[(Problem::ErrorClassification, &model_a)]).expect("save a");
    save_bundle(&dir_b, "b", 1, &[(Problem::ErrorClassification, &model_b)]).expect("save b");

    let registry = Arc::new(ModelRegistry::open(&dir_a).expect("open"));
    // A generation that will be displaced early in the storm: if the
    // swap path leaks pinned Arcs, this is the one that stays alive.
    let displaced_early = Arc::downgrade(&registry.current());
    let engine = ScoringEngine::start(
        Arc::clone(&registry),
        ScoringConfig {
            workers: 2,
            ..ScoringConfig::default()
        },
    );

    std::thread::scope(|s| {
        for r in 0..4 {
            let registry = Arc::clone(&registry);
            let (dir_a, dir_b) = (dir_a.clone(), dir_b.clone());
            s.spawn(move || {
                for i in 0..25 {
                    let dir = if (i + r) % 2 == 0 { &dir_a } else { &dir_b };
                    registry.reload(dir).expect("storm reload");
                    std::thread::sleep(Duration::from_micros(200));
                }
            });
        }
        for _ in 0..4 {
            let engine = &engine;
            let (probes, expect_a, expect_b) = (&probes, &expect_a, &expect_b);
            s.spawn(move || {
                for i in 0..50 {
                    let scored = engine
                        .score(Problem::ErrorClassification, probes)
                        .expect("storm score");
                    assert_eq!(scored.predictions.len(), probes.len());
                    let got: Vec<Vec<u32>> = scored
                        .predictions
                        .iter()
                        .map(|p| proba_bits(p.proba.as_deref().expect("classifier proba")))
                        .collect();
                    // All-A or all-B; anything else is a mixed batch.
                    assert!(
                        got == *expect_a || got == *expect_b,
                        "iteration {i}: batch mixes generations \
                         (admitted generation {})",
                        scored.generation
                    );
                }
            });
        }
    });

    engine.shutdown();
    // 100 reloads displaced ~100 generations. All but the live bundle
    // and the one pinned `previous` must have freed.
    assert!(
        displaced_early.upgrade().is_none(),
        "generation 1 still pinned after the storm — reload leaks bundles"
    );
    assert!(registry.previous().is_some(), "previous generation pinned");
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
