//! Bundle save → load → registry hot-swap, plus every validation error
//! path (truncation, corruption, version skew, kind mismatch), and a
//! partial-write sweep: any prefix of an artifact or the manifest must
//! come back as a typed [`BundleError`] — never a panic, never a
//! half-loaded bundle.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use sqlan_core::{train_model, Labels, ModelKind, Problem, Task, TrainConfig, TrainData};
use sqlan_serve::bundle::{load_bundle, save_bundle, BundleError, MANIFEST_FILE};
use sqlan_serve::ModelRegistry;

/// Resolve the on-disk artifact path for `problem` through the manifest
/// (artifact file names are content-addressed, so tests must not guess
/// them).
fn artifact_path(dir: &Path, problem: Problem) -> PathBuf {
    let manifest: sqlan_serve::bundle::BundleManifest = serde_json::from_str(
        &std::fs::read_to_string(dir.join(MANIFEST_FILE)).expect("read manifest"),
    )
    .expect("parse manifest");
    let entry = manifest
        .entries
        .iter()
        .find(|e| e.problem == problem)
        .expect("entry for problem");
    dir.join(&entry.file)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqlan-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn toy() -> (Vec<String>, Vec<usize>, Vec<f64>) {
    let mut xs = Vec::new();
    let mut cls = Vec::new();
    let mut vals = Vec::new();
    for i in 0..60 {
        let heavy = i % 3 == 0;
        xs.push(if heavy {
            format!("SELECT * FROM huge WHERE f(x) > {i}")
        } else {
            format!("SELECT 1 FROM small WHERE id = {i}")
        });
        cls.push(heavy as usize);
        vals.push(if heavy { 4.0 } else { 1.0 });
    }
    (xs, cls, vals)
}

fn train_pair() -> (sqlan_core::TrainedModel, sqlan_core::TrainedModel) {
    let (xs, cls, vals) = toy();
    let cfg = TrainConfig::tiny();
    let classifier = train_model(
        ModelKind::WTfidf,
        Task::Classify(2),
        &TrainData {
            statements: &xs[..40],
            labels: Labels::Classes(&cls[..40]),
            valid_statements: &xs[40..],
            valid_labels: Labels::Classes(&cls[40..]),
        },
        &cfg,
        None,
    );
    let regressor = train_model(
        ModelKind::Median,
        Task::Regress,
        &TrainData {
            statements: &xs[..40],
            labels: Labels::Values(&vals[..40]),
            valid_statements: &xs[40..],
            valid_labels: Labels::Values(&vals[40..]),
        },
        &cfg,
        None,
    );
    (classifier, regressor)
}

#[test]
fn save_load_preserves_predictions_and_manifest() {
    let dir = tmp_dir("roundtrip");
    let (classifier, regressor) = train_pair();
    let manifest = save_bundle(
        &dir,
        "toy",
        7,
        &[
            (Problem::ErrorClassification, &classifier),
            (Problem::AnswerSize, &regressor),
        ],
    )
    .expect("save");
    assert_eq!(manifest.entries.len(), 2);
    assert_eq!(manifest.format_version, sqlan_serve::bundle::FORMAT_VERSION);

    let bundle = load_bundle(&dir).expect("load");
    let restored = bundle.model(Problem::ErrorClassification).expect("model");
    let (xs, _, _) = toy();
    for s in &xs {
        assert_eq!(restored.predict_class(s), classifier.predict_class(s));
        let (a, b) = (restored.predict_proba(s), classifier.predict_proba(s));
        assert_eq!(
            a.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
        );
    }
    let reg = bundle.model(Problem::AnswerSize).expect("regressor");
    assert_eq!(
        reg.predict_value(&xs[0]).to_bits(),
        regressor.predict_value(&xs[0]).to_bits()
    );
    assert!(bundle.model(Problem::CpuTime).is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_manifest_means_no_bundle() {
    let dir = tmp_dir("nomanifest");
    assert!(matches!(load_bundle(&dir), Err(BundleError::Io(_, _))));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_artifact_is_rejected() {
    let dir = tmp_dir("truncated");
    let (classifier, _) = train_pair();
    save_bundle(
        &dir,
        "toy",
        7,
        &[(Problem::ErrorClassification, &classifier)],
    )
    .expect("save");
    let artifact = artifact_path(&dir, Problem::ErrorClassification);
    let full = std::fs::read_to_string(&artifact).expect("read");
    std::fs::write(&artifact, &full[..full.len() / 2]).expect("truncate");
    assert!(matches!(
        load_bundle(&dir),
        Err(BundleError::Truncated { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_artifact_json_is_rejected() {
    let dir = tmp_dir("corrupt");
    let (classifier, _) = train_pair();
    save_bundle(
        &dir,
        "toy",
        7,
        &[(Problem::ErrorClassification, &classifier)],
    )
    .expect("save");
    let artifact = artifact_path(&dir, Problem::ErrorClassification);
    let full = std::fs::read_to_string(&artifact).expect("read");
    // Same byte count (the manifest's size check passes), broken JSON.
    let corrupted = format!("#{}", &full[1..]);
    std::fs::write(&artifact, corrupted).expect("corrupt");
    assert!(matches!(load_bundle(&dir), Err(BundleError::Json(_, _))));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn any_partial_write_prefix_is_a_typed_error() {
    let dir = tmp_dir("prefix");
    let (classifier, _) = train_pair();
    save_bundle(
        &dir,
        "toy",
        7,
        &[(Problem::ErrorClassification, &classifier)],
    )
    .expect("save");
    let artifact = artifact_path(&dir, Problem::ErrorClassification);
    let manifest = dir.join(MANIFEST_FILE);

    for target in [&artifact, &manifest] {
        let full = std::fs::read(target).expect("read");
        // Every prefix class matters (empty, mid-JSON, off-by-one), but
        // sweeping all of them byte-by-byte is slow; a prime stride
        // covers misaligned cut points, and the endpoints are explicit.
        let mut cuts: Vec<usize> = (0..full.len()).step_by(127).collect();
        cuts.extend([1, full.len().saturating_sub(1)]);
        for cut in cuts {
            std::fs::write(target, &full[..cut]).expect("truncate");
            let outcome = std::panic::catch_unwind(|| load_bundle(&dir));
            let result = outcome.unwrap_or_else(|_| {
                panic!(
                    "load_bundle panicked on a {cut}-byte prefix of {}",
                    target.display()
                )
            });
            let err = result.expect_err("a torn file must never load");
            // Typed, not stringly: every arm the loader can take.
            assert!(
                matches!(
                    err,
                    BundleError::Io(_, _)
                        | BundleError::Json(_, _)
                        | BundleError::Truncated { .. }
                        | BundleError::Version { .. }
                        | BundleError::KindMismatch { .. }
                ),
                "unexpected error class for cut {cut}: {err:?}"
            );
        }
        std::fs::write(target, &full).expect("restore");
        load_bundle(&dir).expect("restored bundle loads again");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_skew_is_rejected() {
    let dir = tmp_dir("version");
    let (classifier, _) = train_pair();
    save_bundle(
        &dir,
        "toy",
        7,
        &[(Problem::ErrorClassification, &classifier)],
    )
    .expect("save");
    let manifest = dir.join(MANIFEST_FILE);
    let text = std::fs::read_to_string(&manifest).expect("read");
    std::fs::write(
        &manifest,
        text.replace("\"format_version\": 1", "\"format_version\": 99"),
    )
    .expect("write");
    assert!(matches!(
        load_bundle(&dir),
        Err(BundleError::Version { found: 99, .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn registry_hot_swap_is_atomic_for_readers() {
    let dir_a = tmp_dir("swap-a");
    let dir_b = tmp_dir("swap-b");
    let (classifier, regressor) = train_pair();
    save_bundle(
        &dir_a,
        "a",
        1,
        &[(Problem::ErrorClassification, &classifier)],
    )
    .expect("save a");
    save_bundle(&dir_b, "b", 2, &[(Problem::AnswerSize, &regressor)]).expect("save b");

    let registry = Arc::new(ModelRegistry::open(&dir_a).expect("open"));
    assert_eq!(registry.generation(), 1);
    // A reader pins generation 1 across the swap.
    let pinned = registry.current();
    let generation = registry.reload(&dir_b).expect("reload");
    assert_eq!(generation, 2);
    assert_eq!(pinned.generation, 1);
    assert!(pinned.bundle.model(Problem::ErrorClassification).is_some());
    let live = registry.current();
    assert_eq!(live.generation, 2);
    assert!(live.bundle.model(Problem::ErrorClassification).is_none());
    assert!(live.bundle.model(Problem::AnswerSize).is_some());

    // A failed reload keeps the previous bundle live.
    let bogus = dir_a.join("does-not-exist");
    assert!(registry.reload(&bogus).is_err());
    assert_eq!(registry.generation(), 2);
    assert!(registry
        .current()
        .bundle
        .model(Problem::AnswerSize)
        .is_some());
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
