//! Model and training configuration.
//!
//! Defaults are scaled for a single-core laptop run of the full experiment
//! harness (the paper trained on GPUs with embedding 100 / hidden 150–300;
//! we default to embedding 24 / hidden 32 — EXPERIMENTS.md records the
//! exact configuration behind every reported number).

use serde::{Deserialize, Serialize};

/// Token granularity: the paper's `c*` vs `w*` model families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Granularity {
    Char,
    Word,
}

impl Granularity {
    pub fn prefix(self) -> &'static str {
        match self {
            Granularity::Char => "c",
            Granularity::Word => "w",
        }
    }
}

/// Hyper-parameters shared by the neural and traditional models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    // Sequence handling.
    pub max_len_char: usize,
    pub max_len_word: usize,
    // Neural architecture.
    pub embed_dim: usize,
    pub hidden: usize,
    pub lstm_depth: usize,
    pub kernels_per_width: usize,
    pub dropout: f32,
    // Optimization (paper §6.1: lr 1e-3, batch 16, clip 0.25).
    pub lr: f32,
    pub batch: usize,
    pub epochs: usize,
    pub clip: f32,
    pub huber_delta: f32,
    /// Early stopping patience in epochs (0 disables).
    pub patience: usize,
    // Vocabularies.
    pub vocab_cap_char: usize,
    pub vocab_cap_word: usize,
    pub tfidf_features: usize,
    pub tfidf_max_ngram: usize,
    // Infrastructure.
    pub seed: u64,
    pub threads: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            max_len_char: 160,
            max_len_word: 48,
            embed_dim: 24,
            hidden: 32,
            lstm_depth: 3,
            kernels_per_width: 32,
            dropout: 0.5,
            lr: 1e-3,
            batch: 16,
            epochs: 3,
            clip: 0.25,
            huber_delta: 1.0,
            patience: 2,
            vocab_cap_char: 512,
            vocab_cap_word: 8_000,
            tfidf_features: 20_000,
            tfidf_max_ngram: 5,
            seed: 20,
            threads: 1,
        }
    }
}

impl TrainConfig {
    /// A tiny configuration for unit tests (seconds, not minutes).
    pub fn tiny() -> TrainConfig {
        TrainConfig {
            max_len_char: 60,
            max_len_word: 24,
            embed_dim: 8,
            hidden: 12,
            lstm_depth: 2,
            kernels_per_width: 8,
            epochs: 2,
            vocab_cap_word: 1_000,
            tfidf_features: 2_000,
            tfidf_max_ngram: 3,
            ..TrainConfig::default()
        }
    }

    pub fn max_len(&self, g: Granularity) -> usize {
        match g {
            Granularity::Char => self.max_len_char,
            Granularity::Word => self.max_len_word,
        }
    }

    pub fn vocab_cap(&self, g: Granularity) -> usize {
        match g {
            Granularity::Char => self.vocab_cap_char,
            Granularity::Word => self.vocab_cap_word,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = TrainConfig::default();
        assert!(c.max_len_char > c.max_len_word);
        assert!(c.dropout > 0.0 && c.dropout < 1.0);
        assert_eq!(c.lstm_depth, 3); // the paper's three-layer LSTM
    }

    #[test]
    fn granularity_accessors() {
        let c = TrainConfig::default();
        assert_eq!(c.max_len(Granularity::Char), c.max_len_char);
        assert_eq!(c.vocab_cap(Granularity::Word), c.vocab_cap_word);
        assert_eq!(Granularity::Char.prefix(), "c");
    }
}
