//! Model and training configuration.
//!
//! Defaults are scaled for a single-core laptop run of the full experiment
//! harness (the paper trained on GPUs with embedding 100 / hidden 150–300;
//! we default to embedding 24 / hidden 32 — EXPERIMENTS.md records the
//! exact configuration behind every reported number).

use serde::{Deserialize, Serialize};

/// Token granularity: the paper's `c*` vs `w*` model families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Granularity {
    Char,
    Word,
}

impl Granularity {
    pub fn prefix(self) -> &'static str {
        match self {
            Granularity::Char => "c",
            Granularity::Word => "w",
        }
    }
}

/// Hyper-parameters shared by the neural and traditional models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    // Sequence handling.
    pub max_len_char: usize,
    pub max_len_word: usize,
    // Neural architecture.
    pub embed_dim: usize,
    pub hidden: usize,
    pub lstm_depth: usize,
    pub kernels_per_width: usize,
    pub dropout: f32,
    // Optimization (paper §6.1: lr 1e-3, batch 16, clip 0.25).
    pub lr: f32,
    pub batch: usize,
    pub epochs: usize,
    pub clip: f32,
    pub huber_delta: f32,
    /// Early stopping patience in epochs (0 disables).
    pub patience: usize,
    // Vocabularies.
    pub vocab_cap_char: usize,
    pub vocab_cap_word: usize,
    pub tfidf_features: usize,
    pub tfidf_max_ngram: usize,
    // Infrastructure.
    pub seed: u64,
    /// Worker threads for data-parallel training stages. `0` (the
    /// default) inherits the global setting (`SQLAN_THREADS` env var or
    /// available parallelism); any other value pins the count. Results
    /// are bit-identical either way — this knob only trades wall-clock.
    pub threads: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            max_len_char: 160,
            max_len_word: 48,
            embed_dim: 24,
            hidden: 32,
            lstm_depth: 3,
            kernels_per_width: 32,
            dropout: 0.5,
            lr: 1e-3,
            batch: 16,
            epochs: 3,
            clip: 0.25,
            huber_delta: 1.0,
            patience: 2,
            vocab_cap_char: 512,
            vocab_cap_word: 8_000,
            tfidf_features: 20_000,
            tfidf_max_ngram: 5,
            seed: 20,
            threads: 0,
        }
    }
}

impl TrainConfig {
    /// A tiny configuration for unit tests (seconds, not minutes).
    pub fn tiny() -> TrainConfig {
        TrainConfig {
            max_len_char: 60,
            max_len_word: 24,
            embed_dim: 8,
            hidden: 12,
            lstm_depth: 2,
            kernels_per_width: 8,
            epochs: 2,
            vocab_cap_word: 1_000,
            tfidf_features: 2_000,
            tfidf_max_ngram: 3,
            ..TrainConfig::default()
        }
    }

    /// The worker pool this configuration selects: pinned when `threads`
    /// is nonzero, otherwise the global `SQLAN_THREADS` default. A pinned
    /// count is clamped to any already-installed scoped budget (we may be
    /// running inside a pool worker that carries a share of its parent's
    /// threads), so nesting never multiplies past the outer knob.
    pub fn pool(&self) -> sqlan_par::Pool {
        match (self.threads, sqlan_par::thread_override()) {
            (0, _) => sqlan_par::Pool::current(),
            (n, Some(budget)) => sqlan_par::Pool::new(n.min(budget)),
            (n, None) => sqlan_par::Pool::new(n),
        }
    }

    pub fn max_len(&self, g: Granularity) -> usize {
        match g {
            Granularity::Char => self.max_len_char,
            Granularity::Word => self.max_len_word,
        }
    }

    pub fn vocab_cap(&self, g: Granularity) -> usize {
        match g {
            Granularity::Char => self.vocab_cap_char,
            Granularity::Word => self.vocab_cap_word,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = TrainConfig::default();
        assert!(c.max_len_char > c.max_len_word);
        assert!(c.dropout > 0.0 && c.dropout < 1.0);
        assert_eq!(c.lstm_depth, 3); // the paper's three-layer LSTM
    }

    #[test]
    fn pinned_pool_clamps_to_installed_budget() {
        let cfg = TrainConfig {
            threads: 4,
            ..TrainConfig::default()
        };
        // Inside a scoped budget of 2 (e.g. a pool worker), a pin of 4
        // must clamp so nesting cannot multiply threads.
        let clamped = sqlan_par::with_threads(2, || cfg.pool().threads());
        assert_eq!(clamped, 2);
        // A tighter pin than the budget stays tighter.
        let tighter = sqlan_par::with_threads(8, || cfg.pool().threads());
        assert_eq!(tighter, 4);
    }

    #[test]
    fn granularity_accessors() {
        let c = TrainConfig::default();
        assert_eq!(c.max_len(Granularity::Char), c.max_len_char);
        assert_eq!(c.vocab_cap(Granularity::Word), c.vocab_cap_word);
        assert_eq!(Granularity::Char.prefix(), "c");
    }
}
