//! # sqlan-core
//!
//! The public API of `sqlan` — a from-scratch Rust reproduction of
//! *"Facilitating SQL Query Composition and Analysis"* (Zolaktaf, Milani,
//! Pottinger; SIGMOD 2020): predicting SQL query properties **prior to
//! execution** from the raw statement text and a historical workload,
//! with no access to database statistics or execution plans.
//!
//! Four problems (Definition 4): error classification, session
//! classification, CPU-time and answer-size regression. Three settings
//! (Definition 5): Homogeneous Instance / Homogeneous Schema /
//! Heterogeneous Schema. Nine models (§5–6): `mfreq`, `median`, `opt`,
//! `ctfidf`, `wtfidf`, `ccnn`, `wcnn`, `clstm`, `wlstm`.
//!
//! ```
//! use sqlan_core::prelude::*;
//!
//! // A tiny synthetic SDSS-like workload (see sqlan-workload).
//! let workload = build_sdss(SdssConfig { n_sessions: 120, scale: Scale(0.02), seed: 5 });
//! let split = random_split(workload.len(), 1);
//! let cfg = TrainConfig::tiny();
//!
//! let exp = run_experiment(
//!     &workload,
//!     Problem::ErrorClassification,
//!     split,
//!     &[ModelKind::MFreq, ModelKind::CTfidf],
//!     &cfg,
//!     None,
//! );
//! assert_eq!(exp.runs.len(), 2);
//! ```

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod config;
pub mod dataset;
pub mod eval;
pub mod models;
pub mod pipeline;
pub mod problem;
pub mod text;

pub use config::{Granularity, TrainConfig};
pub use dataset::{Dataset, LogTransform};
pub use eval::{
    evaluate_classifier, evaluate_regressor, evaluate_regressor_with_shift, ClassificationEval,
    RegressionEval, QERROR_PERCENTILES,
};
pub use models::neural::{ArchKind, Labels, NeuralModel, Task};
pub use models::traditional::TfidfModel;
pub use models::zoo::{train_model, ModelKind, PersistError, TrainData, TrainedModel};
pub use pipeline::{run_experiment, Experiment, ModelRun, SummaryRow};
pub use problem::{Problem, Setting};

/// Convenient glob import for examples and the experiment harness.
pub mod prelude {
    pub use crate::{
        run_experiment, train_model, ClassificationEval, Dataset, Experiment, Granularity, Labels,
        LogTransform, ModelKind, ModelRun, Problem, RegressionEval, Setting, Task, TrainConfig,
        TrainData, TrainedModel,
    };
    pub use sqlan_workload::{
        build_sdss, build_sqlshare, random_split, sdss_database, split_by_user, sqlshare_database,
        Scale, SdssConfig, SqlShareConfig, Workload,
    };
}
