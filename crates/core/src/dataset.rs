//! Turning a labeled workload into a training dataset for one problem:
//! label extraction plus the paper's log transformation (§4.4.1).

use serde::{Deserialize, Serialize};

use sqlan_workload::{Workload, WorkloadEntry};

use crate::problem::Problem;

/// The paper's regression-label transform `y' = ln(y + ε − min(y))` with
/// ε = 1, making the transform non-negative. Stored so predictions can be
/// mapped back to the raw scale for qerror.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogTransform {
    pub min: f64,
    pub eps: f64,
}

impl LogTransform {
    /// Fit on raw labels.
    pub fn fit(raw: &[f64]) -> LogTransform {
        let min = raw.iter().cloned().fold(f64::INFINITY, f64::min);
        let min = if min.is_finite() { min } else { 0.0 };
        LogTransform { min, eps: 1.0 }
    }

    pub fn apply(&self, y: f64) -> f64 {
        (y + self.eps - self.min).max(self.eps * 1e-12).ln()
    }

    /// Inverse transform back to the raw scale.
    pub fn invert(&self, y_log: f64) -> f64 {
        y_log.exp() - self.eps + self.min
    }
}

/// A problem-specific dataset view over a workload.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub problem: Problem,
    pub statements: Vec<String>,
    /// Class indices (classification problems).
    pub class_labels: Vec<usize>,
    /// Raw numeric labels (regression problems).
    pub raw_labels: Vec<f64>,
    /// Log-transformed labels (regression problems).
    pub log_labels: Vec<f64>,
    pub transform: Option<LogTransform>,
}

impl Dataset {
    /// Build from workload entries. Entries lacking the problem's label
    /// (e.g. session class on SQLShare) are skipped.
    pub fn build(workload: &Workload, problem: Problem) -> Dataset {
        let mut statements = Vec::new();
        let mut class_labels = Vec::new();
        let mut raw_labels = Vec::new();
        for e in &workload.entries {
            match problem {
                Problem::ErrorClassification => {
                    statements.push(e.statement.clone());
                    class_labels.push(e.error_class.index());
                }
                Problem::SessionClassification => {
                    if let Some(c) = e.session_class {
                        statements.push(e.statement.clone());
                        class_labels.push(c.index());
                    }
                }
                Problem::CpuTime => {
                    statements.push(e.statement.clone());
                    raw_labels.push(e.cpu_seconds);
                }
                Problem::AnswerSize => {
                    statements.push(e.statement.clone());
                    raw_labels.push(e.answer_size);
                }
            }
        }
        let (transform, log_labels) = if problem.is_classification() {
            (None, Vec::new())
        } else {
            let t = LogTransform::fit(&raw_labels);
            let logs = raw_labels.iter().map(|&y| t.apply(y)).collect();
            (Some(t), logs)
        };
        Dataset {
            problem,
            statements,
            class_labels,
            raw_labels,
            log_labels,
            transform,
        }
    }

    pub fn len(&self) -> usize {
        self.statements.len()
    }

    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }

    /// Entry accessor for filtered index sets (splits).
    pub fn entry_matches<'a>(
        &self,
        workload: &'a Workload,
        idx: usize,
    ) -> Option<&'a WorkloadEntry> {
        workload.entries.get(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlan_workload::{build_sdss, Scale, SdssConfig};

    fn workload() -> Workload {
        build_sdss(SdssConfig {
            n_sessions: 150,
            scale: Scale(0.02),
            seed: 3,
        })
    }

    #[test]
    fn log_transform_roundtrip() {
        let t = LogTransform::fit(&[-1.0, 0.0, 100.0]);
        assert_eq!(t.min, -1.0);
        for y in [-1.0, 0.0, 5.0, 1e6] {
            let back = t.invert(t.apply(y));
            assert!((back - y).abs() < 1e-6 * y.abs().max(1.0), "{y} -> {back}");
        }
        // Non-negative after transform at the minimum.
        assert!(t.apply(-1.0) >= 0.0);
    }

    #[test]
    fn error_dataset_covers_all_entries() {
        let w = workload();
        let d = Dataset::build(&w, Problem::ErrorClassification);
        assert_eq!(d.len(), w.len());
        assert!(d.class_labels.iter().all(|&c| c < 3));
    }

    #[test]
    fn session_dataset_covers_sdss_entries() {
        let w = workload();
        let d = Dataset::build(&w, Problem::SessionClassification);
        assert_eq!(d.len(), w.len()); // SDSS entries all carry a session class
        assert!(d.class_labels.iter().all(|&c| c < 7));
    }

    #[test]
    fn regression_dataset_has_transform() {
        let w = workload();
        let d = Dataset::build(&w, Problem::AnswerSize);
        assert!(d.transform.is_some());
        assert_eq!(d.log_labels.len(), d.raw_labels.len());
        // Transformed labels are finite and ≥ 0.
        assert!(d.log_labels.iter().all(|&y| y.is_finite() && y >= 0.0));
    }
}
