//! Statement → token-id encoding shared by the neural models.

use sqlan_features::{char_tokens, word_tokens, Vocab};

use crate::config::{Granularity, TrainConfig};

/// Tokenize one statement at the given granularity.
pub fn tokenize(statement: &str, g: Granularity) -> Vec<String> {
    match g {
        Granularity::Char => char_tokens(statement),
        Granularity::Word => word_tokens(statement),
    }
}

/// Build a vocabulary from training statements.
pub fn build_vocab(statements: &[String], g: Granularity, cfg: &TrainConfig) -> Vocab {
    let streams: Vec<Vec<String>> = statements.iter().map(|s| tokenize(s, g)).collect();
    Vocab::build(streams.iter().map(Vec::as_slice), cfg.vocab_cap(g), 1)
}

/// Encode a statement to padded/truncated token ids. `min_len` covers the
/// CNN's widest kernel; empty statements become all-PAD sequences.
pub fn encode(
    statement: &str,
    g: Granularity,
    vocab: &Vocab,
    cfg: &TrainConfig,
    min_len: usize,
) -> Vec<u32> {
    let tokens = tokenize(statement, g);
    vocab.encode(&tokens, cfg.max_len(g), min_len.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_and_word_granularities_differ() {
        let s = "SELECT * FROM PhotoObj".to_string();
        let c = tokenize(&s, Granularity::Char);
        let w = tokenize(&s, Granularity::Word);
        assert!(c.len() > w.len());
        assert_eq!(w[0], "select");
    }

    #[test]
    fn encode_pads_empty_statements() {
        let cfg = TrainConfig::tiny();
        let vocab = build_vocab(&["SELECT 1".to_string()], Granularity::Word, &cfg);
        let ids = encode("", Granularity::Word, &vocab, &cfg, 5);
        assert_eq!(ids.len(), 5);
        assert!(ids.iter().all(|&i| i == sqlan_features::PAD));
    }

    #[test]
    fn encode_truncates_long_statements() {
        let cfg = TrainConfig::tiny();
        let long = "x ".repeat(500);
        let vocab = build_vocab(std::slice::from_ref(&long), Granularity::Word, &cfg);
        let ids = encode(&long, Granularity::Word, &vocab, &cfg, 1);
        assert_eq!(ids.len(), cfg.max_len_word);
    }
}
