//! End-to-end experiment pipeline: dataset → split → train each model →
//! evaluate on the test slice. This is what the per-table experiment
//! binaries and the examples drive.

use serde::{Deserialize, Serialize};

use sqlan_engine::Database;
use sqlan_workload::{Split, Workload};

use crate::config::TrainConfig;
use crate::dataset::Dataset;
use crate::eval::{
    evaluate_classifier, evaluate_regressor_with_shift, ClassificationEval, RegressionEval,
};
use crate::models::neural::{Labels, Task};
use crate::models::zoo::{train_model, ModelKind, TrainData, TrainedModel};
use crate::problem::Problem;

/// One model's results on one problem.
#[derive(Debug)]
pub struct ModelRun {
    pub kind: ModelKind,
    pub vocab_size: Option<usize>,
    pub n_parameters: Option<usize>,
    pub classification: Option<ClassificationEval>,
    pub regression: Option<RegressionEval>,
    pub model: TrainedModel,
}

/// Results for a whole experiment (one problem, one split, many models).
#[derive(Debug)]
pub struct Experiment {
    pub problem: Problem,
    pub dataset: Dataset,
    pub split: Split,
    pub runs: Vec<ModelRun>,
}

/// Serializable summary row (EXPERIMENTS.md artifacts).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SummaryRow {
    pub model: String,
    pub vocab_size: Option<usize>,
    pub n_parameters: Option<usize>,
    pub loss: f64,
    pub accuracy: Option<f64>,
    pub mse: Option<f64>,
}

impl Experiment {
    pub fn summary_rows(&self) -> Vec<SummaryRow> {
        self.runs
            .iter()
            .map(|r| SummaryRow {
                model: r.kind.name().to_string(),
                vocab_size: r.vocab_size,
                n_parameters: r.n_parameters,
                loss: r
                    .classification
                    .as_ref()
                    .map(|c| c.loss)
                    .or_else(|| r.regression.as_ref().map(|g| g.loss))
                    .unwrap_or(f64::NAN),
                accuracy: r.classification.as_ref().map(|c| c.accuracy),
                mse: r.regression.as_ref().map(|g| g.mse),
            })
            .collect()
    }

    /// Test-set statement texts, in evaluation order.
    pub fn test_statements(&self) -> Vec<&str> {
        self.split
            .test
            .iter()
            .map(|&i| self.dataset.statements[i].as_str())
            .collect()
    }
}

fn gather<T: Clone>(xs: &[T], idx: &[usize]) -> Vec<T> {
    idx.iter().map(|&i| xs[i].clone()).collect()
}

/// Run one experiment: train every `kind` on the split's train slice
/// (validation slice for early stopping) and evaluate on the test slice.
///
/// `opt_db` supplies optimizer estimates for [`ModelKind::Opt`]; models
/// that don't need it ignore it.
pub fn run_experiment(
    workload: &Workload,
    problem: Problem,
    split: Split,
    kinds: &[ModelKind],
    cfg: &TrainConfig,
    opt_db: Option<&Database>,
) -> Experiment {
    let dataset = Dataset::build(workload, problem);
    assert!(
        split
            .train
            .iter()
            .chain(&split.valid)
            .chain(&split.test)
            .all(|&i| i < dataset.len()),
        "split indices out of range for dataset"
    );

    let train_stmts = gather(&dataset.statements, &split.train);
    let valid_stmts = gather(&dataset.statements, &split.valid);
    let test_stmts = gather(&dataset.statements, &split.test);

    // Models are independent given the (shared, read-only) split slices,
    // so the whole zoo trains and evaluates on the [`sqlan_par`] pool —
    // one worker per model, results merged in `kinds` order. Each model's
    // internal minibatch fan-out inherits the same thread budget.
    let runs: Vec<ModelRun> = if problem.is_classification() {
        let n = problem.n_classes();
        let train_y = gather(&dataset.class_labels, &split.train);
        let valid_y = gather(&dataset.class_labels, &split.valid);
        let test_y = gather(&dataset.class_labels, &split.test);
        cfg.pool().par_map(kinds, |&kind| {
            let data = TrainData {
                statements: &train_stmts,
                labels: Labels::Classes(&train_y),
                valid_statements: &valid_stmts,
                valid_labels: Labels::Classes(&valid_y),
            };
            let model = train_model(kind, Task::Classify(n), &data, cfg, opt_db);
            let eval = evaluate_classifier(&model, &test_stmts, &test_y, n);
            ModelRun {
                kind,
                vocab_size: model.vocab_size(),
                n_parameters: model.n_parameters(),
                classification: Some(eval),
                regression: None,
                model,
            }
        })
    } else {
        let transform = dataset.transform.expect("regression dataset has transform");
        let train_y = gather(&dataset.log_labels, &split.train);
        let valid_y = gather(&dataset.log_labels, &split.valid);
        let test_y = gather(&dataset.log_labels, &split.test);
        let test_raw = gather(&dataset.raw_labels, &split.test);
        cfg.pool().par_map(kinds, |&kind| {
            let data = TrainData {
                statements: &train_stmts,
                labels: Labels::Values(&train_y),
                valid_statements: &valid_stmts,
                valid_labels: Labels::Values(&valid_y),
            };
            let model = train_model(kind, Task::Regress, &data, cfg, opt_db);
            // qerror shift matched to the label scale: counts use 1 row,
            // CPU seconds use 10 ms (medians sit far below one second).
            let shift = match problem {
                Problem::CpuTime => 0.01,
                _ => 1.0,
            };
            let eval = evaluate_regressor_with_shift(
                &model,
                &test_stmts,
                &test_y,
                &test_raw,
                transform,
                cfg.huber_delta as f64,
                shift,
            );
            ModelRun {
                kind,
                vocab_size: model.vocab_size(),
                n_parameters: model.n_parameters(),
                classification: None,
                regression: Some(eval),
                model,
            }
        })
    };
    Experiment {
        problem,
        dataset,
        split,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlan_workload::{build_sdss, random_split, Scale, SdssConfig};

    fn workload() -> Workload {
        build_sdss(SdssConfig {
            n_sessions: 250,
            scale: Scale(0.02),
            seed: 11,
        })
    }

    #[test]
    fn classification_experiment_end_to_end() {
        let w = workload();
        let split = random_split(w.len(), 1);
        let cfg = TrainConfig {
            epochs: 2,
            ..TrainConfig::tiny()
        };
        let exp = run_experiment(
            &w,
            Problem::ErrorClassification,
            split,
            &[ModelKind::MFreq, ModelKind::CTfidf],
            &cfg,
            None,
        );
        assert_eq!(exp.runs.len(), 2);
        for r in &exp.runs {
            let c = r.classification.as_ref().unwrap();
            assert!(c.accuracy >= 0.0 && c.accuracy <= 1.0);
            assert_eq!(c.per_class.len(), 3);
        }
        // mfreq must be beaten or matched on accuracy by the learned model
        // (not guaranteed in theory, but at this separability it holds).
        let rows = exp.summary_rows();
        assert_eq!(rows[0].model, "mfreq");
        assert!(rows[1].loss <= rows[0].loss + 1.0);
    }

    #[test]
    fn regression_experiment_end_to_end() {
        let w = workload();
        let split = random_split(w.len(), 2);
        let cfg = TrainConfig {
            epochs: 2,
            ..TrainConfig::tiny()
        };
        let db = sqlan_workload::sdss_database(SdssConfig {
            n_sessions: 250,
            scale: Scale(0.02),
            seed: 11,
        });
        let exp = run_experiment(
            &w,
            Problem::AnswerSize,
            split,
            &[ModelKind::Median, ModelKind::Opt, ModelKind::CTfidf],
            &cfg,
            Some(&db),
        );
        for r in &exp.runs {
            let g = r.regression.as_ref().unwrap();
            assert!(g.loss.is_finite(), "{}: loss", r.kind.name());
            assert!(g.mse.is_finite());
            assert_eq!(g.preds_log.len(), exp.split.test.len());
        }
    }
}
