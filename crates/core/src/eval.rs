//! Evaluation of trained models with the paper's metrics (§6.1).

use serde::{Deserialize, Serialize};

use sqlan_metrics::{
    accuracy, huber_loss, mean_cross_entropy, mse, per_class_f_measure,
    qerror_percentiles_with_shift, ClassReport, ConfusionMatrix, QErrorTable,
};

use crate::dataset::LogTransform;
use crate::models::zoo::TrainedModel;

/// Classification results: test loss (cross-entropy), accuracy, per-class
/// precision/recall/F.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassificationEval {
    pub loss: f64,
    pub accuracy: f64,
    pub per_class: Vec<ClassReport>,
    pub preds: Vec<usize>,
}

/// Regression results: test loss (mean Huber), MSE (both over transformed
/// labels), raw-scale qerror percentiles, and the per-query predictions
/// (log space) for the qualitative breakdowns of §6.3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressionEval {
    pub loss: f64,
    pub mse: f64,
    pub qerror: QErrorTable,
    pub preds_log: Vec<f64>,
}

/// Evaluate a classifier on test statements.
pub fn evaluate_classifier(
    model: &TrainedModel,
    statements: &[String],
    labels: &[usize],
    n_classes: usize,
) -> ClassificationEval {
    assert_eq!(statements.len(), labels.len());
    let mut preds = Vec::with_capacity(statements.len());
    let mut probs = Vec::with_capacity(statements.len());
    for s in statements {
        let p = model.predict_proba(s);
        preds.push(sqlan_ml::argmax(&p));
        probs.push(p);
    }
    let cm = ConfusionMatrix::compute(n_classes, labels, &preds);
    ClassificationEval {
        loss: mean_cross_entropy(labels, &probs),
        accuracy: accuracy(labels, &preds),
        per_class: per_class_f_measure(&cm),
        preds,
    }
}

/// qerror percentiles reported by the paper's Tables 3/6/7.
pub const QERROR_PERCENTILES: [f64; 9] = [10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 75.0, 90.0, 95.0];

/// Evaluate a regressor on test statements; `log_labels`/`raw_labels` are
/// the transformed and raw truths, `transform` maps predictions back for
/// qerror.
pub fn evaluate_regressor(
    model: &TrainedModel,
    statements: &[String],
    log_labels: &[f64],
    raw_labels: &[f64],
    transform: LogTransform,
    huber_delta: f64,
) -> RegressionEval {
    evaluate_regressor_with_shift(
        model,
        statements,
        log_labels,
        raw_labels,
        transform,
        huber_delta,
        1.0,
    )
}

/// [`evaluate_regressor`] with an explicit qerror shift: 1.0 for row
/// counts, ~0.01 for CPU seconds (whose medians sit far below 1 s).
#[allow(clippy::too_many_arguments)]
pub fn evaluate_regressor_with_shift(
    model: &TrainedModel,
    statements: &[String],
    log_labels: &[f64],
    raw_labels: &[f64],
    transform: LogTransform,
    huber_delta: f64,
    qerror_shift: f64,
) -> RegressionEval {
    assert_eq!(statements.len(), log_labels.len());
    assert_eq!(statements.len(), raw_labels.len());
    let preds_log: Vec<f64> = statements.iter().map(|s| model.predict_value(s)).collect();
    let loss = if preds_log.is_empty() {
        f64::NAN
    } else {
        preds_log
            .iter()
            .zip(log_labels)
            .map(|(&p, &y)| huber_loss(y, p, huber_delta))
            .sum::<f64>()
            / preds_log.len() as f64
    };
    let preds_raw: Vec<f64> = preds_log.iter().map(|&p| transform.invert(p)).collect();
    RegressionEval {
        loss,
        mse: mse(log_labels, &preds_log),
        qerror: qerror_percentiles_with_shift(
            raw_labels,
            &preds_raw,
            &QERROR_PERCENTILES,
            qerror_shift,
        ),
        preds_log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::models::neural::{Labels, Task};
    use crate::models::zoo::{train_model, ModelKind, TrainData};

    #[test]
    fn mfreq_eval_matches_class_share() {
        let xs: Vec<String> = (0..50).map(|i| format!("SELECT {i}")).collect();
        let ys: Vec<usize> = (0..50).map(|i| usize::from(i % 5 == 0)).collect();
        let data = TrainData {
            statements: &xs,
            labels: Labels::Classes(&ys),
            valid_statements: &xs,
            valid_labels: Labels::Classes(&ys),
        };
        let m = train_model(
            ModelKind::MFreq,
            Task::Classify(2),
            &data,
            &TrainConfig::tiny(),
            None,
        );
        let e = evaluate_classifier(&m, &xs, &ys, 2);
        // Majority class share = 40/50.
        assert!((e.accuracy - 0.8).abs() < 1e-9);
        // Minority F is 0, majority F is high.
        assert_eq!(e.per_class[1].f_measure, 0.0);
        assert!(e.per_class[0].f_measure > 0.85);
    }

    #[test]
    fn median_eval_has_finite_metrics() {
        let xs: Vec<String> = (0..30).map(|i| format!("SELECT {i}")).collect();
        let raw: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let t = LogTransform::fit(&raw);
        let logs: Vec<f64> = raw.iter().map(|&y| t.apply(y)).collect();
        let data = TrainData {
            statements: &xs,
            labels: Labels::Values(&logs),
            valid_statements: &xs,
            valid_labels: Labels::Values(&logs),
        };
        let m = train_model(
            ModelKind::Median,
            Task::Regress,
            &data,
            &TrainConfig::tiny(),
            None,
        );
        let e = evaluate_regressor(&m, &xs, &logs, &raw, t, 1.0);
        assert!(e.loss.is_finite());
        assert!(e.mse.is_finite());
        assert!(!e.qerror.rows.is_empty());
        // Median-of-log predicts every query identically.
        assert!(e.preds_log.windows(2).all(|w| w[0] == w[1]));
    }
}
