//! The model zoo: every model of §5/§6.1 behind one enum —
//! `mfreq`/`median` baselines, `opt`, `ctfidf`/`wtfidf`, `ccnn`/`wcnn`,
//! `clstm`/`wlstm`.

use serde::{Deserialize, Serialize};

use sqlan_engine::Database;
use sqlan_ml::{MedianBaseline, MostFrequent, OptBaseline};

use crate::config::{Granularity, TrainConfig};
use crate::models::neural::{ArchKind, Labels, NeuralModel, Task};
use crate::models::traditional::TfidfModel;

/// Every model the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ModelKind {
    MFreq,
    Median,
    Opt,
    CTfidf,
    WTfidf,
    CCnn,
    WCnn,
    CLstm,
    WLstm,
}

impl ModelKind {
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::MFreq => "mfreq",
            ModelKind::Median => "median",
            ModelKind::Opt => "opt",
            ModelKind::CTfidf => "ctfidf",
            ModelKind::WTfidf => "wtfidf",
            ModelKind::CCnn => "ccnn",
            ModelKind::WCnn => "wcnn",
            ModelKind::CLstm => "clstm",
            ModelKind::WLstm => "wlstm",
        }
    }

    /// The learned models (everything except the trivial baselines), in
    /// the row order of Table 2.
    pub const LEARNED: [ModelKind; 6] = [
        ModelKind::CTfidf,
        ModelKind::CCnn,
        ModelKind::CLstm,
        ModelKind::WTfidf,
        ModelKind::WCnn,
        ModelKind::WLstm,
    ];

    pub fn granularity(self) -> Option<Granularity> {
        match self {
            ModelKind::CTfidf | ModelKind::CCnn | ModelKind::CLstm => Some(Granularity::Char),
            ModelKind::WTfidf | ModelKind::WCnn | ModelKind::WLstm => Some(Granularity::Word),
            _ => None,
        }
    }
}

/// Bundled training inputs.
#[derive(Debug, Clone)]
pub struct TrainData<'a> {
    pub statements: &'a [String],
    pub labels: Labels<'a>,
    pub valid_statements: &'a [String],
    pub valid_labels: Labels<'a>,
}

/// A trained model of any kind.
#[derive(Debug)]
pub struct TrainedModel {
    pub kind: ModelKind,
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    MFreq(MostFrequent),
    Median(f64),
    Opt { model: OptBaseline, db: Database },
    Tfidf(TfidfModel),
    // Boxed: the neural bundle (config + vocab + params + layers) dwarfs
    // every other variant.
    Neural(Box<NeuralModel>),
}

impl TrainedModel {
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// `v` column of Tables 2/4/5: vocabulary / feature-space size.
    pub fn vocab_size(&self) -> Option<usize> {
        match &self.inner {
            Inner::Tfidf(m) => Some(m.vocab_size()),
            Inner::Neural(m) => Some(m.vocab_size()),
            _ => None,
        }
    }

    /// `p` column: learned parameter count.
    pub fn n_parameters(&self) -> Option<usize> {
        match &self.inner {
            Inner::Tfidf(m) => Some(m.n_parameters()),
            Inner::Neural(m) => Some(m.n_parameters()),
            Inner::Opt { model, .. } => Some(model.weights.len() + 1),
            _ => None,
        }
    }

    pub fn predict_class(&self, statement: &str) -> usize {
        match &self.inner {
            Inner::MFreq(m) => m.predict(),
            Inner::Tfidf(m) => m.predict_class(statement),
            Inner::Neural(m) => m.predict_class(statement),
            _ => panic!("{} is not a classifier", self.name()),
        }
    }

    pub fn predict_proba(&self, statement: &str) -> Vec<f32> {
        match &self.inner {
            Inner::MFreq(m) => m.predict_proba(),
            Inner::Tfidf(m) => m.predict_proba(statement),
            Inner::Neural(m) => m.predict_proba(statement),
            _ => panic!("{} is not a classifier", self.name()),
        }
    }

    /// Regression prediction in log-label space.
    pub fn predict_value(&self, statement: &str) -> f64 {
        match &self.inner {
            Inner::Median(v) => *v,
            Inner::Opt { model, db } => {
                let feats = db
                    .estimate(statement)
                    .map(|e| e.features().to_vec())
                    .unwrap_or_else(|| vec![0.0, 0.0]);
                model.predict(&feats)
            }
            Inner::Tfidf(m) => m.predict_value(statement),
            Inner::Neural(m) => m.predict_value(statement),
            Inner::MFreq(_) => panic!("mfreq is not a regressor"),
        }
    }

    /// Batch twin of [`Self::predict_proba`]: statements featurize and
    /// score in one fan-out over the [`sqlan_par`] pool instead of a
    /// per-statement round trip. Output is bit-identical to mapping the
    /// per-statement API (every backend scores statements independently
    /// with input-order merge).
    pub fn predict_proba_batch(&self, statements: &[String]) -> Vec<Vec<f32>> {
        sqlan_obs::trace::timed("model_forward", statements.len() as u64, || {
            match &self.inner {
                Inner::MFreq(m) => statements.iter().map(|_| m.predict_proba()).collect(),
                Inner::Tfidf(m) => m.predict_proba_batch(statements),
                Inner::Neural(m) => m.predict_proba_batch(statements),
                _ => panic!("{} is not a classifier", self.name()),
            }
        })
    }

    /// Batch twin of [`Self::predict_class`].
    pub fn predict_class_batch(&self, statements: &[String]) -> Vec<usize> {
        sqlan_obs::trace::timed("model_forward", statements.len() as u64, || {
            match &self.inner {
                Inner::MFreq(m) => statements.iter().map(|_| m.predict()).collect(),
                Inner::Tfidf(m) => m.predict_class_batch(statements),
                Inner::Neural(m) => m.predict_class_batch(statements),
                _ => panic!("{} is not a classifier", self.name()),
            }
        })
    }

    /// Batch twin of [`Self::predict_value`].
    pub fn predict_value_batch(&self, statements: &[String]) -> Vec<f64> {
        sqlan_obs::trace::timed("model_forward", statements.len() as u64, || {
            match &self.inner {
                Inner::Median(v) => vec![*v; statements.len()],
                Inner::Opt { model, db } => sqlan_par::par_map(statements, |s| {
                    let feats = db
                        .estimate(s)
                        .map(|e| e.features().to_vec())
                        .unwrap_or_else(|| vec![0.0, 0.0]);
                    model.predict(&feats)
                }),
                Inner::Tfidf(m) => m.predict_value_batch(statements),
                Inner::Neural(m) => m.predict_value_batch(statements),
                Inner::MFreq(_) => panic!("mfreq is not a regressor"),
            }
        })
    }
}

/// Serializable snapshot of a trained model (everything except `opt`,
/// whose predictions depend on live catalog statistics).
#[derive(Debug, Serialize, Deserialize)]
enum SavedModel {
    MFreq(MostFrequent),
    Median(f64),
    Tfidf(TfidfModel),
    Neural(Box<NeuralModel>),
}

/// Error from [`TrainedModel::save_json`] / [`TrainedModel::load_json`].
#[derive(Debug)]
pub enum PersistError {
    /// `opt` cannot be persisted: it reads catalog statistics at predict
    /// time.
    NotPersistable(&'static str),
    Json(serde_json::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::NotPersistable(name) => {
                write!(f, "model `{name}` cannot be persisted")
            }
            PersistError::Json(e) => write!(f, "serialization error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl TrainedModel {
    /// Serialize the trained model to JSON.
    pub fn save_json(&self) -> Result<String, PersistError> {
        let saved = match &self.inner {
            Inner::MFreq(m) => serde_json::to_value(SavedModel::MFreq(*m)),
            Inner::Median(v) => serde_json::to_value(SavedModel::Median(*v)),
            Inner::Tfidf(m) => {
                // Serialize by reference through the enum's shape.
                return serde_json::to_string(&serde_json::json!({
                    "kind": self.kind,
                    "model": {"Tfidf": m},
                }))
                .map_err(PersistError::Json);
            }
            Inner::Neural(m) => {
                return serde_json::to_string(&serde_json::json!({
                    "kind": self.kind,
                    "model": {"Neural": m},
                }))
                .map_err(PersistError::Json);
            }
            Inner::Opt { .. } => return Err(PersistError::NotPersistable("opt")),
        }
        .map_err(PersistError::Json)?;
        serde_json::to_string(&serde_json::json!({"kind": self.kind, "model": saved}))
            .map_err(PersistError::Json)
    }

    /// Restore a model saved with [`TrainedModel::save_json`].
    pub fn load_json(json: &str) -> Result<TrainedModel, PersistError> {
        #[derive(Deserialize)]
        struct Envelope {
            kind: ModelKind,
            model: SavedModel,
        }
        let env: Envelope = serde_json::from_str(json).map_err(PersistError::Json)?;
        let inner = match env.model {
            SavedModel::MFreq(m) => Inner::MFreq(m),
            SavedModel::Median(v) => Inner::Median(v),
            SavedModel::Tfidf(m) => Inner::Tfidf(m),
            SavedModel::Neural(m) => Inner::Neural(m),
        };
        Ok(TrainedModel {
            kind: env.kind,
            inner,
        })
    }
}

/// Train one model. `task` must match the label kind in `data`; `opt_db`
/// is required only for [`ModelKind::Opt`] (the optimizer-estimate
/// baseline needs catalog statistics).
pub fn train_model(
    kind: ModelKind,
    task: Task,
    data: &TrainData<'_>,
    cfg: &TrainConfig,
    opt_db: Option<&Database>,
) -> TrainedModel {
    let inner = match kind {
        ModelKind::MFreq => {
            let (labels, n) = match (&data.labels, task) {
                (Labels::Classes(ys), Task::Classify(n)) => (*ys, n),
                _ => panic!("mfreq requires classification labels"),
            };
            Inner::MFreq(MostFrequent::fit(labels, n))
        }
        ModelKind::Median => {
            let ys = match &data.labels {
                Labels::Values(ys) => *ys,
                _ => panic!("median requires regression labels"),
            };
            Inner::Median(MedianBaseline::fit(ys).predict())
        }
        ModelKind::Opt => {
            let ys = match &data.labels {
                Labels::Values(ys) => *ys,
                _ => panic!("opt requires regression labels"),
            };
            let db = opt_db
                .expect("opt baseline needs a Database for estimates")
                .clone();
            let xs: Vec<Vec<f64>> = data
                .statements
                .iter()
                .map(|s| {
                    db.estimate(s)
                        .map(|e| e.features().to_vec())
                        .unwrap_or_else(|| vec![0.0, 0.0])
                })
                .collect();
            Inner::Opt {
                model: OptBaseline::fit(&xs, ys),
                db,
            }
        }
        ModelKind::CTfidf | ModelKind::WTfidf => {
            let g = kind.granularity().expect("tfidf has granularity");
            let m = match (&data.labels, task) {
                (Labels::Classes(ys), Task::Classify(n)) => {
                    TfidfModel::train_classifier(g, data.statements, ys, n, cfg)
                }
                (Labels::Values(ys), Task::Regress) => {
                    TfidfModel::train_regressor(g, data.statements, ys, cfg)
                }
                _ => panic!("label/task mismatch for {}", kind.name()),
            };
            Inner::Tfidf(m)
        }
        ModelKind::CCnn | ModelKind::WCnn | ModelKind::CLstm | ModelKind::WLstm => {
            let g = kind.granularity().expect("neural has granularity");
            let arch = match kind {
                ModelKind::CCnn | ModelKind::WCnn => ArchKind::Cnn,
                _ => ArchKind::Lstm,
            };
            Inner::Neural(Box::new(NeuralModel::train(arch, g, task, data, cfg)))
        }
    };
    TrainedModel { kind, inner }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Vec<String>, Vec<usize>, Vec<f64>) {
        let mut xs = Vec::new();
        let mut cls = Vec::new();
        let mut vals = Vec::new();
        for i in 0..60 {
            let heavy = i % 3 == 0;
            xs.push(if heavy {
                format!("SELECT * FROM huge WHERE f(x) > {i}")
            } else {
                format!("SELECT 1 FROM small WHERE id = {i}")
            });
            cls.push(heavy as usize);
            vals.push(if heavy { 4.0 } else { 1.0 });
        }
        (xs, cls, vals)
    }

    #[test]
    fn zoo_trains_all_classifier_kinds() {
        let (xs, ys, _) = toy();
        let cfg = TrainConfig {
            epochs: 2,
            ..TrainConfig::tiny()
        };
        let data = TrainData {
            statements: &xs[..40],
            labels: Labels::Classes(&ys[..40]),
            valid_statements: &xs[40..],
            valid_labels: Labels::Classes(&ys[40..]),
        };
        for kind in [
            ModelKind::MFreq,
            ModelKind::CTfidf,
            ModelKind::WCnn,
            ModelKind::CLstm,
        ] {
            let m = train_model(kind, Task::Classify(2), &data, &cfg, None);
            let c = m.predict_class(&xs[0]);
            assert!(c < 2, "{}: class {c}", m.name());
            let p = m.predict_proba(&xs[0]);
            assert_eq!(p.len(), 2);
        }
    }

    #[test]
    fn zoo_trains_all_regressor_kinds() {
        let (xs, _, ys) = toy();
        let cfg = TrainConfig {
            epochs: 2,
            ..TrainConfig::tiny()
        };
        let data = TrainData {
            statements: &xs[..40],
            labels: Labels::Values(&ys[..40]),
            valid_statements: &xs[40..],
            valid_labels: Labels::Values(&ys[40..]),
        };
        let db = sqlan_workload::sdss_database(sqlan_workload::SdssConfig {
            n_sessions: 1,
            scale: sqlan_workload::Scale(0.01),
            seed: 1,
        });
        for kind in [
            ModelKind::Median,
            ModelKind::Opt,
            ModelKind::WTfidf,
            ModelKind::CCnn,
        ] {
            let m = train_model(kind, Task::Regress, &data, &cfg, Some(&db));
            let v = m.predict_value(&xs[0]);
            assert!(v.is_finite(), "{}: {v}", m.name());
        }
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let (xs, ys, vals) = toy();
        let cfg = TrainConfig {
            epochs: 2,
            ..TrainConfig::tiny()
        };
        let cls_data = TrainData {
            statements: &xs[..40],
            labels: Labels::Classes(&ys[..40]),
            valid_statements: &xs[40..],
            valid_labels: Labels::Classes(&ys[40..]),
        };
        let reg_data = TrainData {
            statements: &xs[..40],
            labels: Labels::Values(&vals[..40]),
            valid_statements: &xs[40..],
            valid_labels: Labels::Values(&vals[40..]),
        };
        for kind in [
            ModelKind::MFreq,
            ModelKind::CTfidf,
            ModelKind::WCnn,
            ModelKind::CLstm,
        ] {
            let m = train_model(kind, Task::Classify(2), &cls_data, &cfg, None);
            let restored = TrainedModel::load_json(&m.save_json().unwrap()).unwrap();
            for s in &xs[40..50] {
                assert_eq!(
                    m.predict_class(s),
                    restored.predict_class(s),
                    "{}",
                    kind.name()
                );
                let (a, b) = (m.predict_proba(s), restored.predict_proba(s));
                for (x, y) in a.iter().zip(&b) {
                    assert!((x - y).abs() < 1e-6);
                }
            }
        }
        for kind in [ModelKind::Median, ModelKind::WTfidf, ModelKind::CCnn] {
            let m = train_model(kind, Task::Regress, &reg_data, &cfg, None);
            let restored = TrainedModel::load_json(&m.save_json().unwrap()).unwrap();
            for s in &xs[40..50] {
                let (a, b) = (m.predict_value(s), restored.predict_value(s));
                assert!((a - b).abs() < 1e-9, "{}", kind.name());
            }
        }
    }

    #[test]
    fn opt_is_not_persistable() {
        let (xs, _, vals) = toy();
        let cfg = TrainConfig::tiny();
        let data = TrainData {
            statements: &xs[..40],
            labels: Labels::Values(&vals[..40]),
            valid_statements: &xs[40..],
            valid_labels: Labels::Values(&vals[40..]),
        };
        let db = sqlan_workload::sdss_database(sqlan_workload::SdssConfig {
            n_sessions: 1,
            scale: sqlan_workload::Scale(0.01),
            seed: 1,
        });
        let m = train_model(ModelKind::Opt, Task::Regress, &data, &cfg, Some(&db));
        assert!(matches!(
            m.save_json(),
            Err(PersistError::NotPersistable(_))
        ));
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(ModelKind::CCnn.name(), "ccnn");
        assert_eq!(ModelKind::WLstm.name(), "wlstm");
        assert_eq!(ModelKind::LEARNED.len(), 6);
    }

    #[test]
    #[should_panic(expected = "is not a classifier")]
    fn regressor_rejects_class_prediction() {
        let (xs, _, ys) = toy();
        let cfg = TrainConfig::tiny();
        let data = TrainData {
            statements: &xs[..40],
            labels: Labels::Values(&ys[..40]),
            valid_statements: &xs[40..],
            valid_labels: Labels::Values(&ys[40..]),
        };
        let m = train_model(ModelKind::Median, Task::Regress, &data, &cfg, None);
        let _ = m.predict_class("SELECT 1");
    }
}
