//! The traditional TF-IDF models (`ctfidf` / `wtfidf`, §5.1): two-stage
//! feature extraction (bag-of-ngrams up to 5-grams, TF-IDF weighting) plus
//! a linear prediction model.

use serde::{Deserialize, Serialize};
use sqlan_features::{SparseVec, TfidfVectorizer};
use sqlan_ml::{HuberRegression, LinearConfig, LogisticRegression};

use crate::config::{Granularity, TrainConfig};
use crate::text::tokenize;

/// A trained TF-IDF model (classifier or regressor).
#[derive(Debug, Serialize, Deserialize)]
pub struct TfidfModel {
    pub granularity: Granularity,
    vectorizer: TfidfVectorizer,
    kind: TfidfKind,
}

#[derive(Debug, Serialize, Deserialize)]
enum TfidfKind {
    Classifier(LogisticRegression),
    Regressor(HuberRegression),
}

impl TfidfModel {
    pub fn name(&self) -> String {
        format!("{}tfidf", self.granularity.prefix())
    }

    pub fn vocab_size(&self) -> usize {
        self.vectorizer.dim()
    }

    pub fn n_parameters(&self) -> usize {
        match &self.kind {
            TfidfKind::Classifier(m) => m.n_parameters(),
            TfidfKind::Regressor(m) => m.n_parameters(),
        }
    }

    fn featurize(&self, statement: &str) -> SparseVec {
        self.vectorizer
            .transform(&tokenize(statement, self.granularity))
    }

    /// Tokenize and vectorize many statements at once on the [`sqlan_par`]
    /// pool. Each statement is a pure per-item function of the fitted
    /// vectorizer, so the result equals mapping [`Self::featurize`] —
    /// bit-identical at any thread count.
    fn featurize_batch(&self, statements: &[String]) -> Vec<SparseVec> {
        let streams: Vec<Vec<String>> =
            sqlan_par::par_map(statements, |s| tokenize(s, self.granularity));
        self.vectorizer.transform_batch(&streams)
    }

    /// Train a classifier.
    pub fn train_classifier(
        granularity: Granularity,
        statements: &[String],
        labels: &[usize],
        n_classes: usize,
        cfg: &TrainConfig,
    ) -> TfidfModel {
        // The whole body runs under the configuration's thread budget so
        // the vectorizer's internal fan-outs honor a pinned count too.
        cfg.pool().install(|| {
            let streams: Vec<Vec<String>> =
                sqlan_par::par_map(statements, |s| tokenize(s, granularity));
            let vectorizer =
                TfidfVectorizer::fit(&streams, cfg.tfidf_max_ngram, cfg.tfidf_features);
            let xs: Vec<SparseVec> = vectorizer.transform_batch(&streams);
            let lcfg = LinearConfig {
                seed: cfg.seed,
                ..LinearConfig::default()
            };
            let model = LogisticRegression::train(&xs, labels, n_classes, vectorizer.dim(), lcfg);
            TfidfModel {
                granularity,
                vectorizer,
                kind: TfidfKind::Classifier(model),
            }
        })
    }

    /// Train a regressor on log-transformed labels.
    pub fn train_regressor(
        granularity: Granularity,
        statements: &[String],
        labels: &[f64],
        cfg: &TrainConfig,
    ) -> TfidfModel {
        cfg.pool().install(|| {
            let streams: Vec<Vec<String>> =
                sqlan_par::par_map(statements, |s| tokenize(s, granularity));
            let vectorizer =
                TfidfVectorizer::fit(&streams, cfg.tfidf_max_ngram, cfg.tfidf_features);
            let xs: Vec<SparseVec> = vectorizer.transform_batch(&streams);
            let ys: Vec<f32> = labels.iter().map(|&y| y as f32).collect();
            let lcfg = LinearConfig {
                seed: cfg.seed,
                huber_delta: cfg.huber_delta,
                ..LinearConfig::default()
            };
            let model = HuberRegression::train(&xs, &ys, vectorizer.dim(), lcfg);
            TfidfModel {
                granularity,
                vectorizer,
                kind: TfidfKind::Regressor(model),
            }
        })
    }

    pub fn predict_proba(&self, statement: &str) -> Vec<f32> {
        match &self.kind {
            TfidfKind::Classifier(m) => m.predict_proba(&self.featurize(statement)),
            TfidfKind::Regressor(_) => panic!("regression model has no class probabilities"),
        }
    }

    pub fn predict_class(&self, statement: &str) -> usize {
        match &self.kind {
            TfidfKind::Classifier(m) => m.predict(&self.featurize(statement)),
            TfidfKind::Regressor(_) => panic!("regression model has no classes"),
        }
    }

    pub fn predict_value(&self, statement: &str) -> f64 {
        match &self.kind {
            TfidfKind::Regressor(m) => m.predict(&self.featurize(statement)) as f64,
            TfidfKind::Classifier(_) => panic!("classifier has no scalar output"),
        }
    }

    /// Batch twin of [`Self::predict_proba`]: one tokenize/transform fan-out
    /// instead of a per-statement round trip. Output equals mapping the
    /// per-statement API.
    pub fn predict_proba_batch(&self, statements: &[String]) -> Vec<Vec<f32>> {
        match &self.kind {
            TfidfKind::Classifier(m) => self
                .featurize_batch(statements)
                .iter()
                .map(|x| m.predict_proba(x))
                .collect(),
            TfidfKind::Regressor(_) => panic!("regression model has no class probabilities"),
        }
    }

    /// Batch twin of [`Self::predict_class`].
    pub fn predict_class_batch(&self, statements: &[String]) -> Vec<usize> {
        match &self.kind {
            TfidfKind::Classifier(m) => self
                .featurize_batch(statements)
                .iter()
                .map(|x| m.predict(x))
                .collect(),
            TfidfKind::Regressor(_) => panic!("regression model has no classes"),
        }
    }

    /// Batch twin of [`Self::predict_value`].
    pub fn predict_value_batch(&self, statements: &[String]) -> Vec<f64> {
        match &self.kind {
            TfidfKind::Regressor(m) => self
                .featurize_batch(statements)
                .iter()
                .map(|x| m.predict(x) as f64)
                .collect(),
            TfidfKind::Classifier(_) => panic!("classifier has no scalar output"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tfidf_classifier_separates_statement_types() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..100 {
            if i % 2 == 0 {
                xs.push(format!("SELECT a{} FROM t", i));
                ys.push(0usize);
            } else {
                xs.push(format!("DROP TABLE t{}", i));
                ys.push(1usize);
            }
        }
        let cfg = TrainConfig::tiny();
        let m = TfidfModel::train_classifier(Granularity::Word, &xs, &ys, 2, &cfg);
        assert_eq!(m.name(), "wtfidf");
        assert_eq!(m.predict_class("SELECT zz FROM t"), 0);
        assert_eq!(m.predict_class("DROP TABLE zz"), 1);
        assert!(m.vocab_size() > 0);
        assert!(m.n_parameters() > 0);
    }

    #[test]
    fn tfidf_regressor_tracks_textual_signal() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..100usize {
            let heavy = i % 2 == 0;
            xs.push(if heavy {
                format!("SELECT * FROM big_table WHERE f(x) > {i}")
            } else {
                format!("SELECT 1 FROM small WHERE id = {i}")
            });
            ys.push(if heavy { 5.0 } else { 1.0 });
        }
        let cfg = TrainConfig::tiny();
        let m = TfidfModel::train_regressor(Granularity::Char, &xs, &ys, &cfg);
        assert_eq!(m.name(), "ctfidf");
        let heavy = m.predict_value("SELECT * FROM big_table WHERE f(x) > 3");
        let light = m.predict_value("SELECT 1 FROM small WHERE id = 7");
        assert!(heavy > light, "heavy {heavy} vs light {light}");
    }

    #[test]
    fn unknown_text_predicts_without_panicking() {
        let xs: Vec<String> = (0..20).map(|i| format!("SELECT {i}")).collect();
        let ys = vec![0usize; 20];
        let m = TfidfModel::train_classifier(Granularity::Word, &xs, &ys, 2, &TrainConfig::tiny());
        let _ = m.predict_class("całkowicie nieznany tekst");
        let _ = m.predict_class("");
    }
}
