//! The neural models: shallow CNN (§5.3) and three-layer LSTM (§5.2), at
//! character or word granularity, for classification or regression.
//!
//! Training follows the paper: AdaMax, lr 1e-3, batch 16, gradient-norm
//! clipping, cross-entropy for classification, Huber for regression over
//! log-transformed labels, model selection on validation loss.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use sqlan_features::Vocab;
use sqlan_nn::{
    dropout_mask, AdaMax, Conv1dBank, Embedding, Grads, Graph, Linear, LstmStack, Optimizer,
    Params, Var,
};

use crate::config::{Granularity, TrainConfig};
use crate::models::zoo::TrainData;
use crate::text::{build_vocab, encode};

/// Which sequence encoder the model uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArchKind {
    Cnn,
    Lstm,
}

/// Training task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Task {
    /// `n` classes, cross-entropy.
    Classify(usize),
    /// Scalar regression with Huber loss on log-transformed labels.
    Regress,
}

impl Task {
    fn n_outputs(self) -> usize {
        match self {
            Task::Classify(n) => n,
            Task::Regress => 1,
        }
    }
}

/// Labels for training.
#[derive(Debug, Clone)]
pub enum Labels<'a> {
    Classes(&'a [usize]),
    Values(&'a [f64]),
}

#[derive(Serialize, Deserialize)]
enum Encoder {
    Cnn(Conv1dBank),
    Lstm(LstmStack),
}

impl std::fmt::Debug for Encoder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Encoder::Cnn(_) => f.write_str("Cnn"),
            Encoder::Lstm(_) => f.write_str("Lstm"),
        }
    }
}

/// A trained neural model.
#[derive(Debug, Serialize, Deserialize)]
pub struct NeuralModel {
    pub arch: ArchKind,
    pub granularity: Granularity,
    pub task: Task,
    cfg: TrainConfig,
    vocab: Vocab,
    params: Params,
    emb: Embedding,
    encoder: Encoder,
    head: Linear,
    min_len: usize,
}

/// The CNN's kernel widths, straight from §5.3 / Kim (2014).
const CNN_WIDTHS: [usize; 3] = [3, 4, 5];

impl NeuralModel {
    /// Paper-style name, e.g. `ccnn`, `wlstm`.
    pub fn name(&self) -> String {
        let arch = match self.arch {
            ArchKind::Cnn => "cnn",
            ArchKind::Lstm => "lstm",
        };
        format!("{}{}", self.granularity.prefix(), arch)
    }

    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    pub fn n_parameters(&self) -> usize {
        self.params.num_scalars()
    }

    /// Train on `data`'s train slice, selecting the best epoch by loss on
    /// its validation slice.
    ///
    /// Minibatch gradients are computed data-parallel: every example in a
    /// batch backpropagates into its own private [`Grads`] buffer on the
    /// [`sqlan_par`] pool, and the buffers merge in example order — a
    /// fixed association order, so losses and trained parameters are
    /// bit-identical at any `SQLAN_THREADS`. Dropout masks are pre-drawn
    /// sequentially from the seeded RNG for the same reason.
    pub fn train(
        arch: ArchKind,
        granularity: Granularity,
        task: Task,
        data: &TrainData<'_>,
        cfg: &TrainConfig,
    ) -> NeuralModel {
        // Run under the configuration's thread budget so every nested
        // stage (including `eval_loss` re-resolving the pool) honors a
        // pinned count.
        cfg.pool()
            .install(|| Self::train_inner(arch, granularity, task, data, cfg))
    }

    fn train_inner(
        arch: ArchKind,
        granularity: Granularity,
        task: Task,
        data: &TrainData<'_>,
        cfg: &TrainConfig,
    ) -> NeuralModel {
        let train_statements = data.statements;
        let train_labels = data.labels.clone();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let vocab = build_vocab(train_statements, granularity, cfg);
        let min_len = match arch {
            ArchKind::Cnn => *CNN_WIDTHS.iter().max().expect("non-empty"),
            ArchKind::Lstm => 1,
        };

        let mut params = Params::new();
        let emb = Embedding::new(&mut params, "emb", vocab.len(), cfg.embed_dim, &mut rng);
        let (encoder, feat_dim) = match arch {
            ArchKind::Cnn => {
                let bank = Conv1dBank::new(
                    &mut params,
                    "cnn",
                    &CNN_WIDTHS,
                    cfg.kernels_per_width,
                    cfg.embed_dim,
                    &mut rng,
                );
                let dim = bank.out_dim();
                (Encoder::Cnn(bank), dim)
            }
            ArchKind::Lstm => {
                let stack = LstmStack::new(
                    &mut params,
                    "lstm",
                    cfg.embed_dim,
                    cfg.hidden,
                    cfg.lstm_depth,
                    &mut rng,
                );
                (Encoder::Lstm(stack), cfg.hidden)
            }
        };
        let head = Linear::new(&mut params, "head", feat_dim, task.n_outputs(), &mut rng);

        let mut model = NeuralModel {
            arch,
            granularity,
            task,
            cfg: *cfg,
            vocab,
            params,
            emb,
            encoder,
            head,
            min_len,
        };

        // Pre-encode all statements once (order-preserving parallel map).
        let pool = cfg.pool();
        let train_seqs: Vec<Vec<u32>> = pool.par_map(train_statements, |s| {
            encode(s, granularity, &model.vocab, cfg, min_len)
        });
        let valid_seqs: Vec<Vec<u32>> = pool.par_map(data.valid_statements, |s| {
            encode(s, granularity, &model.vocab, cfg, min_len)
        });

        let mut optimizer = AdaMax::new(cfg.lr);
        let mut order: Vec<usize> = (0..train_seqs.len()).collect();
        let mut best: Option<(f64, Params)> = None;
        let mut since_best = 0usize;

        for _epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch.max(1)) {
                // Dropout masks come off the shared RNG sequentially, in
                // example order: the stream is independent of worker
                // scheduling (mask length is architecture-constant).
                let keep = 1.0 - model.cfg.dropout;
                let jobs: Vec<(usize, Option<Vec<bool>>)> = chunk
                    .iter()
                    .map(|&i| {
                        let mask = (model.cfg.dropout > 0.0)
                            .then(|| dropout_mask(feat_dim, keep, &mut rng));
                        (i, mask)
                    })
                    .collect();
                let scale = 1.0 / chunk.len() as f32;
                // Per-example private gradient buffers, merged in example
                // order — the fixed reduction order of the determinism
                // contract.
                let per_example: Vec<Grads> = pool.par_map(&jobs, |(i, mask)| {
                    let mut item_grads = model.params.zero_grads();
                    let mut g = Graph::new(&model.params);
                    let feats = model.encode_features(&mut g, &train_seqs[*i], mask.as_deref());
                    let out = model.head.forward(&mut g, feats);
                    let loss = match (&model.task, &train_labels) {
                        (Task::Classify(_), Labels::Classes(ys)) => g.softmax_ce(out, ys[*i]),
                        (Task::Regress, Labels::Values(ys)) => {
                            g.huber(out, ys[*i] as f32, model.cfg.huber_delta)
                        }
                        _ => panic!("task/label kind mismatch"),
                    };
                    g.backward(loss, scale, &mut item_grads);
                    item_grads
                });
                let mut grads = model.params.zero_grads();
                for item in &per_example {
                    grads.merge(item);
                }
                if model.cfg.clip > 0.0 {
                    grads.clip_global_norm(model.cfg.clip);
                }
                optimizer.step(&mut model.params, &grads);
            }

            // Validation for early stopping / model selection.
            let vloss = model.eval_loss(&valid_seqs, &data.valid_labels);
            let improved = best.as_ref().map(|(b, _)| vloss < *b).unwrap_or(true);
            if improved {
                best = Some((vloss, model.params.clone()));
                since_best = 0;
            } else {
                since_best += 1;
                if model.cfg.patience > 0 && since_best >= model.cfg.patience {
                    break;
                }
            }
        }
        if let Some((_, p)) = best {
            model.params = p;
        }
        model
    }

    /// Mean loss over pre-encoded sequences (no dropout). Per-example
    /// losses are computed in parallel and summed in example order, so
    /// the mean is bit-identical at any thread count.
    fn eval_loss(&self, seqs: &[Vec<u32>], labels: &Labels<'_>) -> f64 {
        if seqs.is_empty() {
            return f64::INFINITY;
        }
        let indexed: Vec<usize> = (0..seqs.len()).collect();
        let losses: Vec<f64> = self.cfg.pool().par_map(&indexed, |&i| {
            let mut g = Graph::new(&self.params);
            let feats = self.encode_features(&mut g, &seqs[i], None);
            let out = self.head.forward(&mut g, feats);
            match (&self.task, labels) {
                (Task::Classify(_), Labels::Classes(ys)) => {
                    g.softmax_ce(out, ys[i]);
                    let probs = g.softmax_probs(out);
                    -(probs[ys[i]].max(1e-12) as f64).ln()
                }
                (Task::Regress, Labels::Values(ys)) => {
                    let pred = g.value(out).item() as f64;
                    sqlan_metrics::huber_loss(ys[i], pred, self.cfg.huber_delta as f64)
                }
                _ => panic!("task/label kind mismatch"),
            }
        });
        losses.iter().sum::<f64>() / seqs.len() as f64
    }

    /// Shared encoder: embedding → CNN bank or LSTM stack → (1, feat_dim).
    /// A pre-drawn `mask` enables dropout (training); `None` disables it
    /// (inference). Masks are drawn by the caller so this stays a pure
    /// function, safe to fan out across gradient workers.
    fn encode_features(&self, g: &mut Graph<'_>, seq: &[u32], mask: Option<&[bool]>) -> Var {
        let x = self.emb.forward(g, seq);
        let feats = match &self.encoder {
            Encoder::Cnn(bank) => bank.forward(g, x),
            Encoder::Lstm(stack) => stack.forward(g, x),
        };
        match mask {
            Some(mask) if self.cfg.dropout > 0.0 => {
                let keep = 1.0 - self.cfg.dropout;
                g.dropout(feats, mask.to_vec(), keep)
            }
            _ => feats,
        }
    }

    fn encode_statement(&self, statement: &str) -> Vec<u32> {
        encode(
            statement,
            self.granularity,
            &self.vocab,
            &self.cfg,
            self.min_len,
        )
    }

    /// Inference forward pass (no dropout) for one pre-encoded sequence.
    fn proba_for_seq(&self, seq: &[u32]) -> Vec<f32> {
        let mut g = Graph::new(&self.params);
        let feats = self.encode_features(&mut g, seq, None);
        let out = self.head.forward(&mut g, feats);
        g.softmax_probs(out)
    }

    /// Inference forward pass (no dropout) for one pre-encoded sequence,
    /// scalar head.
    fn value_for_seq(&self, seq: &[u32]) -> f64 {
        let mut g = Graph::new(&self.params);
        let feats = self.encode_features(&mut g, seq, None);
        let out = self.head.forward(&mut g, feats);
        g.value(out).item() as f64
    }

    /// Class probabilities for one statement (classification models).
    pub fn predict_proba(&self, statement: &str) -> Vec<f32> {
        self.proba_for_seq(&self.encode_statement(statement))
    }

    /// Predicted class index.
    pub fn predict_class(&self, statement: &str) -> usize {
        sqlan_ml::argmax(&self.predict_proba(statement))
    }

    /// Predicted value in log-label space (regression models).
    pub fn predict_value(&self, statement: &str) -> f64 {
        self.value_for_seq(&self.encode_statement(statement))
    }

    /// Batch twin of [`Self::predict_proba`]: statements encode and
    /// forward-pass in one fan-out on the [`sqlan_par`] pool (input-order
    /// merge). Each statement is a pure function of the frozen parameters,
    /// so the output is bit-identical to mapping the per-statement API.
    pub fn predict_proba_batch(&self, statements: &[String]) -> Vec<Vec<f32>> {
        sqlan_par::par_map(statements, |s| {
            self.proba_for_seq(&self.encode_statement(s))
        })
    }

    /// Batch twin of [`Self::predict_class`].
    pub fn predict_class_batch(&self, statements: &[String]) -> Vec<usize> {
        self.predict_proba_batch(statements)
            .iter()
            .map(|p| sqlan_ml::argmax(p))
            .collect()
    }

    /// Batch twin of [`Self::predict_value`].
    pub fn predict_value_batch(&self, statements: &[String]) -> Vec<f64> {
        sqlan_par::par_map(statements, |s| {
            self.value_for_seq(&self.encode_statement(s))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivially separable task: statements mentioning DROP are class 1.
    fn toy_classification() -> (Vec<String>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..120 {
            if i % 2 == 0 {
                xs.push(format!("SELECT col{} FROM t WHERE x = {}", i % 7, i));
                ys.push(0);
            } else {
                xs.push(format!("DROP TABLE t{}", i % 5));
                ys.push(1);
            }
        }
        (xs, ys)
    }

    #[test]
    fn cnn_classifier_learns_toy_task() {
        let (xs, ys) = toy_classification();
        let cfg = TrainConfig {
            epochs: 6,
            ..TrainConfig::tiny()
        };
        let m = NeuralModel::train(
            ArchKind::Cnn,
            Granularity::Word,
            Task::Classify(2),
            &TrainData {
                statements: &xs[..100],
                labels: Labels::Classes(&ys[..100]),
                valid_statements: &xs[100..],
                valid_labels: Labels::Classes(&ys[100..]),
            },
            &cfg,
        );
        assert_eq!(m.name(), "wcnn");
        let acc = xs[100..]
            .iter()
            .zip(&ys[100..])
            .filter(|(s, &y)| m.predict_class(s) == y)
            .count() as f64
            / 20.0;
        assert!(acc > 0.9, "wcnn should solve the toy task, acc={acc}");
    }

    #[test]
    fn lstm_classifier_learns_toy_task() {
        let (xs, ys) = toy_classification();
        let cfg = TrainConfig {
            epochs: 6,
            ..TrainConfig::tiny()
        };
        let m = NeuralModel::train(
            ArchKind::Lstm,
            Granularity::Char,
            Task::Classify(2),
            &TrainData {
                statements: &xs[..100],
                labels: Labels::Classes(&ys[..100]),
                valid_statements: &xs[100..],
                valid_labels: Labels::Classes(&ys[100..]),
            },
            &cfg,
        );
        assert_eq!(m.name(), "clstm");
        let acc = xs[100..]
            .iter()
            .zip(&ys[100..])
            .filter(|(s, &y)| m.predict_class(s) == y)
            .count() as f64
            / 20.0;
        assert!(acc > 0.8, "clstm should solve the toy task, acc={acc}");
    }

    #[test]
    fn cnn_regressor_tracks_signal() {
        // Label = number of 'x' tokens, a purely textual signal.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..120usize {
            let n = i % 6;
            xs.push(format!("SELECT {} FROM t", vec!["x"; n + 1].join(", ")));
            ys.push(n as f64);
        }
        let cfg = TrainConfig {
            epochs: 12,
            ..TrainConfig::tiny()
        };
        let m = NeuralModel::train(
            ArchKind::Cnn,
            Granularity::Word,
            Task::Regress,
            &TrainData {
                statements: &xs[..100],
                labels: Labels::Values(&ys[..100]),
                valid_statements: &xs[100..],
                valid_labels: Labels::Values(&ys[100..]),
            },
            &cfg,
        );
        // Predictions should at least order extremes correctly.
        let low = m.predict_value("SELECT x FROM t");
        let high = m.predict_value("SELECT x, x, x, x, x, x FROM t");
        assert!(
            high > low,
            "regressor should track token count: {low} vs {high}"
        );
    }

    #[test]
    fn probabilities_are_normalized() {
        let (xs, ys) = toy_classification();
        let cfg = TrainConfig {
            epochs: 1,
            ..TrainConfig::tiny()
        };
        let m = NeuralModel::train(
            ArchKind::Cnn,
            Granularity::Char,
            Task::Classify(2),
            &TrainData {
                statements: &xs[..40],
                labels: Labels::Classes(&ys[..40]),
                valid_statements: &xs[40..60],
                valid_labels: Labels::Classes(&ys[40..60]),
            },
            &cfg,
        );
        let p = m.predict_proba("SELECT 1");
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn handles_arbitrary_prediction_input() {
        let (xs, ys) = toy_classification();
        let cfg = TrainConfig {
            epochs: 1,
            ..TrainConfig::tiny()
        };
        let m = NeuralModel::train(
            ArchKind::Cnn,
            Granularity::Word,
            Task::Classify(2),
            &TrainData {
                statements: &xs[..40],
                labels: Labels::Classes(&ys[..40]),
                valid_statements: &xs[40..60],
                valid_labels: Labels::Classes(&ys[40..60]),
            },
            &cfg,
        );
        // Unknown tokens, empty strings, unicode — all must predict.
        let _ = m.predict_class("");
        let _ = m.predict_class("¿donde están las galaxias?");
        let _ = m.predict_class(&"z".repeat(10_000));
    }
}
