//! The neural models: shallow CNN (§5.3) and three-layer LSTM (§5.2), at
//! character or word granularity, for classification or regression.
//!
//! Training follows the paper: AdaMax, lr 1e-3, batch 16, gradient-norm
//! clipping, cross-entropy for classification, Huber for regression over
//! log-transformed labels, model selection on validation loss.
//!
//! Execution is **tensorized**: a minibatch is planned into
//! length-bucketed tiles ([`sqlan_nn::plan_tiles`]) and each tile runs
//! one batched tape — packed-segment convolution for the CNN, padded
//! batch with per-row masks for the LSTM, one `(B,K)·(K,N)` matmul per
//! linear layer — instead of one graph per example. Inference rows are
//! bit-identical to the per-example path (the kernels batch along rows
//! only); training gradients accumulate across a tile's rows in example
//! order and per-tile buffers merge in tile order, so trained parameters
//! are bit-identical at any `SQLAN_THREADS`. Set
//! `SQLAN_NN_TRAIN=per_example` to fall back to the pre-batching
//! one-graph-per-example training loop (kept as the benchmark baseline).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use sqlan_features::Vocab;
use sqlan_nn::{
    dropout_mask, plan_tiles, AdaMax, Conv1dBank, Embedding, Grads, Graph, Linear, LstmStack,
    Optimizer, Params, Var,
};

use crate::config::{Granularity, TrainConfig};
use crate::models::zoo::TrainData;
use crate::text::{build_vocab, encode};

/// Historical training tile: small enough that one 16-example paper
/// minibatch still fans out across workers; large enough to amortize
/// tape/clone overhead ~an order of magnitude.
const TRAIN_TILE_DEFAULT: usize = 8;

/// Examples per batched tape during training, resolved once per
/// process: `SQLAN_NN_TILE=<n>` pins it; otherwise a one-shot
/// micro-measurement of the training-shaped matmul picks between the
/// historical tile and a wider one (wider tiles amortize better when
/// the AVX2 kernel tier is active, but the win is machine-dependent).
///
/// The winner must beat the default *decisively* (>20% per example) so
/// scheduling noise cannot flip the choice run to run. Note the tile
/// does shape gradient summation: per-tile gradient sums merge in tile
/// order, so a different tile width regroups the float adds. Parameters
/// stay bit-identical across thread counts and SIMD tiers for whatever
/// tile is chosen (the battery pins that); pin `SQLAN_NN_TILE` when two
/// *separate runs* must train byte-identical parameters.
fn train_tile() -> usize {
    static TILE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *TILE.get_or_init(|| {
        if let Ok(v) = std::env::var("SQLAN_NN_TILE") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
            eprintln!("[sqlan-core] ignoring invalid SQLAN_NN_TILE={v:?}");
        }
        measure_train_tile()
    })
}

/// Time the LSTM-gate-shaped matmul `(tile, h)·(h, 4h)` per example for
/// each candidate tile and keep the historical default unless a wider
/// tile is decisively faster.
fn measure_train_tile() -> usize {
    const HIDDEN: usize = 32; // default `TrainConfig::hidden`
    let mut best = (TRAIN_TILE_DEFAULT, f64::INFINITY);
    for (ci, &tile) in [TRAIN_TILE_DEFAULT, 16, 32].iter().enumerate() {
        let a = sqlan_nn::Tensor::from_vec(
            tile,
            HIDDEN,
            (0..tile * HIDDEN)
                .map(|i| (i as f32 * 0.37).sin())
                .collect(),
        );
        let b = sqlan_nn::Tensor::from_vec(
            HIDDEN,
            4 * HIDDEN,
            (0..HIDDEN * 4 * HIDDEN)
                .map(|i| (i as f32 * 0.11).cos())
                .collect(),
        );
        let mut out = sqlan_nn::Tensor::zeros(tile, 4 * HIDDEN);
        // Min over batches: scheduling noise only ever inflates a
        // sample, so the minimum is the stable estimate.
        let mut t_min = f64::INFINITY;
        for _ in 0..5 {
            let t0 = std::time::Instant::now();
            for _ in 0..50 {
                out.matmul_acc(&a, &b);
            }
            t_min = t_min.min(t0.elapsed().as_secs_f64());
        }
        let per_example = t_min / tile as f64;
        let decisive = if ci == 0 { 1.0 } else { 0.8 };
        if per_example < best.1 * decisive {
            best = (tile, per_example);
        }
    }
    best.0
}

/// Examples per batched tape during inference (serving batches are
/// bigger and have no gradient memory, so tiles can be wider).
const PREDICT_TILE: usize = 32;

/// Batched training unless `SQLAN_NN_TRAIN=per_example` (the
/// pre-batching baseline, kept for `bench_train`'s comparison).
fn batched_training() -> bool {
    std::env::var("SQLAN_NN_TRAIN")
        .map(|v| v != "per_example")
        .unwrap_or(true)
}

/// Which sequence encoder the model uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArchKind {
    Cnn,
    Lstm,
}

/// Training task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Task {
    /// `n` classes, cross-entropy.
    Classify(usize),
    /// Scalar regression with Huber loss on log-transformed labels.
    Regress,
}

impl Task {
    fn n_outputs(self) -> usize {
        match self {
            Task::Classify(n) => n,
            Task::Regress => 1,
        }
    }
}

/// Labels for training.
#[derive(Debug, Clone)]
pub enum Labels<'a> {
    Classes(&'a [usize]),
    Values(&'a [f64]),
}

#[derive(Serialize, Deserialize)]
enum Encoder {
    Cnn(Conv1dBank),
    Lstm(LstmStack),
}

impl std::fmt::Debug for Encoder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Encoder::Cnn(_) => f.write_str("Cnn"),
            Encoder::Lstm(_) => f.write_str("Lstm"),
        }
    }
}

/// A trained neural model.
#[derive(Debug, Serialize, Deserialize)]
pub struct NeuralModel {
    pub arch: ArchKind,
    pub granularity: Granularity,
    pub task: Task,
    cfg: TrainConfig,
    vocab: Vocab,
    params: Params,
    emb: Embedding,
    encoder: Encoder,
    head: Linear,
    min_len: usize,
}

/// The CNN's kernel widths, straight from §5.3 / Kim (2014).
const CNN_WIDTHS: [usize; 3] = [3, 4, 5];

impl NeuralModel {
    /// Paper-style name, e.g. `ccnn`, `wlstm`.
    pub fn name(&self) -> String {
        let arch = match self.arch {
            ArchKind::Cnn => "cnn",
            ArchKind::Lstm => "lstm",
        };
        format!("{}{}", self.granularity.prefix(), arch)
    }

    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    pub fn n_parameters(&self) -> usize {
        self.params.num_scalars()
    }

    /// Train on `data`'s train slice, selecting the best epoch by loss on
    /// its validation slice.
    ///
    /// Each minibatch is planned into length-bucketed tiles and every
    /// tile forward/backwards as one batched tape on the [`sqlan_par`]
    /// pool. Determinism contract (pinned by `tests/par_determinism.rs`):
    /// the tile plan is a pure function of sequence lengths; per-example
    /// gradient rows accumulate inside a tape in example order (the
    /// matmul-transpose kernels walk batch rows ascending); and per-tile
    /// gradient buffers merge in tile order — so losses and trained
    /// parameters are bit-identical at any `SQLAN_THREADS`. Dropout
    /// masks are pre-drawn sequentially from the seeded RNG in chunk
    /// order and travel with their example into its tile.
    pub fn train(
        arch: ArchKind,
        granularity: Granularity,
        task: Task,
        data: &TrainData<'_>,
        cfg: &TrainConfig,
    ) -> NeuralModel {
        // Run under the configuration's thread budget so every nested
        // stage (including `eval_loss` re-resolving the pool) honors a
        // pinned count.
        cfg.pool()
            .install(|| Self::train_inner(arch, granularity, task, data, cfg))
    }

    fn train_inner(
        arch: ArchKind,
        granularity: Granularity,
        task: Task,
        data: &TrainData<'_>,
        cfg: &TrainConfig,
    ) -> NeuralModel {
        let train_statements = data.statements;
        let train_labels = data.labels.clone();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let vocab = build_vocab(train_statements, granularity, cfg);
        let min_len = match arch {
            ArchKind::Cnn => *CNN_WIDTHS.iter().max().expect("non-empty"),
            ArchKind::Lstm => 1,
        };

        let mut params = Params::new();
        let emb = Embedding::new(&mut params, "emb", vocab.len(), cfg.embed_dim, &mut rng);
        let (encoder, feat_dim) = match arch {
            ArchKind::Cnn => {
                let bank = Conv1dBank::new(
                    &mut params,
                    "cnn",
                    &CNN_WIDTHS,
                    cfg.kernels_per_width,
                    cfg.embed_dim,
                    &mut rng,
                );
                let dim = bank.out_dim();
                (Encoder::Cnn(bank), dim)
            }
            ArchKind::Lstm => {
                let stack = LstmStack::new(
                    &mut params,
                    "lstm",
                    cfg.embed_dim,
                    cfg.hidden,
                    cfg.lstm_depth,
                    &mut rng,
                );
                (Encoder::Lstm(stack), cfg.hidden)
            }
        };
        let head = Linear::new(&mut params, "head", feat_dim, task.n_outputs(), &mut rng);

        let mut model = NeuralModel {
            arch,
            granularity,
            task,
            cfg: *cfg,
            vocab,
            params,
            emb,
            encoder,
            head,
            min_len,
        };

        // Pre-encode all statements once (order-preserving parallel map).
        let pool = cfg.pool();
        let train_seqs: Vec<Vec<u32>> = pool.par_map(train_statements, |s| {
            encode(s, granularity, &model.vocab, cfg, min_len)
        });
        let valid_seqs: Vec<Vec<u32>> = pool.par_map(data.valid_statements, |s| {
            encode(s, granularity, &model.vocab, cfg, min_len)
        });

        let mut optimizer = AdaMax::new(cfg.lr);
        let mut order: Vec<usize> = (0..train_seqs.len()).collect();
        let mut best: Option<(f64, Params)> = None;
        let mut since_best = 0usize;

        let batched = batched_training();
        for _epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch.max(1)) {
                // Dropout masks come off the shared RNG sequentially, in
                // chunk order: the stream is independent of both worker
                // scheduling and the tile plan (mask length is
                // architecture-constant).
                let keep = 1.0 - model.cfg.dropout;
                let masks: Vec<Option<Vec<bool>>> = chunk
                    .iter()
                    .map(|_| {
                        (model.cfg.dropout > 0.0).then(|| dropout_mask(feat_dim, keep, &mut rng))
                    })
                    .collect();
                let scale = 1.0 / chunk.len() as f32;
                let mut grads = model.params.zero_grads();
                if batched {
                    // Length-bucketed tiles; one batched tape per tile.
                    let lens: Vec<usize> = chunk.iter().map(|&i| train_seqs[i].len()).collect();
                    let tiles = plan_tiles(&lens, train_tile());
                    let per_tile: Vec<Grads> = pool.par_map(&tiles, |tile| {
                        let mut tile_grads = model.params.zero_grads();
                        let mut g = Graph::new(&model.params);
                        let seqs: Vec<&[u32]> = tile
                            .indices
                            .iter()
                            .map(|&p| train_seqs[chunk[p]].as_slice())
                            .collect();
                        let mask_cat: Option<Vec<bool>> = (model.cfg.dropout > 0.0).then(|| {
                            tile.indices
                                .iter()
                                .flat_map(|&p| {
                                    masks[p].as_deref().expect("mask drawn").iter().copied()
                                })
                                .collect()
                        });
                        let logits = model.logits_for_tile(&mut g, &seqs, mask_cat.as_deref());
                        let losses = match (&model.task, &train_labels) {
                            (Task::Classify(_), Labels::Classes(ys)) => {
                                let ts: Vec<usize> =
                                    tile.indices.iter().map(|&p| ys[chunk[p]]).collect();
                                g.softmax_ce_rows(logits, ts)
                            }
                            (Task::Regress, Labels::Values(ys)) => {
                                let ts: Vec<f32> =
                                    tile.indices.iter().map(|&p| ys[chunk[p]] as f32).collect();
                                g.huber_rows(logits, ts, model.cfg.huber_delta)
                            }
                            _ => panic!("task/label kind mismatch"),
                        };
                        // Seeding the summed loss with 1/batch hands every
                        // per-row loss the same 1/batch gradient the
                        // per-example path seeds directly.
                        let loss = g.sum_all(losses);
                        g.backward(loss, scale, &mut tile_grads);
                        tile_grads
                    });
                    for tg in per_tile {
                        grads.merge(&tg);
                        tg.recycle();
                    }
                } else {
                    // Pre-batching baseline: one graph per example with
                    // fresh per-node allocations (no buffer arena — the
                    // exact pre-tentpole behavior), private buffers
                    // merged in example order.
                    let jobs: Vec<(usize, Option<Vec<bool>>)> =
                        chunk.iter().zip(masks).map(|(&i, m)| (i, m)).collect();
                    let per_example: Vec<Grads> = pool.par_map(&jobs, |(i, mask)| {
                        sqlan_nn::without_buffer_pool(|| {
                            let mut item_grads = model.params.zero_grads();
                            let mut g = Graph::new(&model.params);
                            let feats = model.encode_features_legacy(
                                &mut g,
                                &train_seqs[*i],
                                mask.as_deref(),
                            );
                            let out = model.head.forward(&mut g, feats);
                            let loss = match (&model.task, &train_labels) {
                                (Task::Classify(_), Labels::Classes(ys)) => {
                                    g.softmax_ce(out, ys[*i])
                                }
                                (Task::Regress, Labels::Values(ys)) => {
                                    g.huber(out, ys[*i] as f32, model.cfg.huber_delta)
                                }
                                _ => panic!("task/label kind mismatch"),
                            };
                            g.backward(loss, scale, &mut item_grads);
                            item_grads
                        })
                    });
                    for item in per_example {
                        grads.merge(&item);
                        item.recycle();
                    }
                }
                if model.cfg.clip > 0.0 {
                    grads.clip_global_norm(model.cfg.clip);
                }
                optimizer.step(&mut model.params, &grads);
                grads.recycle();
            }

            // Validation for early stopping / model selection.
            let vloss = model.eval_loss(&valid_seqs, &data.valid_labels);
            let improved = best.as_ref().map(|(b, _)| vloss < *b).unwrap_or(true);
            if improved {
                best = Some((vloss, model.params.clone()));
                since_best = 0;
            } else {
                since_best += 1;
                if model.cfg.patience > 0 && since_best >= model.cfg.patience {
                    break;
                }
            }
        }
        if let Some((_, p)) = best {
            model.params = p;
        }
        model
    }

    /// Mean loss over pre-encoded sequences (no dropout). Tiles are
    /// planned deterministically and per-tile sums reduce in tile order
    /// (rows in example order within a tile), so the mean is
    /// bit-identical at any thread count.
    fn eval_loss(&self, seqs: &[Vec<u32>], labels: &Labels<'_>) -> f64 {
        if seqs.is_empty() {
            return f64::INFINITY;
        }
        if !batched_training() {
            return self.eval_loss_per_example(seqs, labels);
        }
        let lens: Vec<usize> = seqs.iter().map(Vec::len).collect();
        let tiles = plan_tiles(&lens, PREDICT_TILE);
        let per_tile: Vec<f64> = self.cfg.pool().par_map(&tiles, |tile| {
            let mut g = Graph::new(&self.params);
            let tile_seqs: Vec<&[u32]> = tile.indices.iter().map(|&i| seqs[i].as_slice()).collect();
            let logits = self.logits_for_tile(&mut g, &tile_seqs, None);
            match (&self.task, labels) {
                (Task::Classify(_), Labels::Classes(ys)) => {
                    let probs = g.softmax_probs_rows(logits);
                    let mut sum = 0.0;
                    for (r, &i) in tile.indices.iter().enumerate() {
                        sum += -(probs.at(r, ys[i]).max(1e-12) as f64).ln();
                    }
                    probs.recycle();
                    sum
                }
                (Task::Regress, Labels::Values(ys)) => {
                    let out = g.value(logits);
                    let mut sum = 0.0;
                    for (r, &i) in tile.indices.iter().enumerate() {
                        let pred = out.data[r] as f64;
                        sum += sqlan_metrics::huber_loss(ys[i], pred, self.cfg.huber_delta as f64);
                    }
                    sum
                }
                _ => panic!("task/label kind mismatch"),
            }
        });
        per_tile.iter().sum::<f64>() / seqs.len() as f64
    }

    /// The pre-batching evaluation loop (per-example graphs, summed in
    /// example order) — the `SQLAN_NN_TRAIN=per_example` baseline.
    fn eval_loss_per_example(&self, seqs: &[Vec<u32>], labels: &Labels<'_>) -> f64 {
        let indexed: Vec<usize> = (0..seqs.len()).collect();
        let losses: Vec<f64> = self.cfg.pool().par_map(&indexed, |&i| {
            sqlan_nn::without_buffer_pool(|| {
                let mut g = Graph::new(&self.params);
                let feats = self.encode_features_legacy(&mut g, &seqs[i], None);
                let out = self.head.forward(&mut g, feats);
                match (&self.task, labels) {
                    (Task::Classify(_), Labels::Classes(ys)) => {
                        g.softmax_ce(out, ys[i]);
                        let probs = g.softmax_probs(out);
                        -(probs[ys[i]].max(1e-12) as f64).ln()
                    }
                    (Task::Regress, Labels::Values(ys)) => {
                        let pred = g.value(out).item() as f64;
                        sqlan_metrics::huber_loss(ys[i], pred, self.cfg.huber_delta as f64)
                    }
                    _ => panic!("task/label kind mismatch"),
                }
            })
        });
        losses.iter().sum::<f64>() / seqs.len() as f64
    }

    /// Batched tile forward: embeddings → encoder batch twin → optional
    /// dropout (per-example masks concatenated in tile row order) → head
    /// logits, (B, n_outputs). Row i is bit-identical to the per-example
    /// forward of `seqs[i]`: the CNN consumes exact packed segments, the
    /// LSTM pads to the tile max with masked (frozen-state) steps, and
    /// every kernel batches along rows only.
    fn logits_for_tile(&self, g: &mut Graph<'_>, seqs: &[&[u32]], mask: Option<&[bool]>) -> Var {
        assert!(!seqs.is_empty(), "empty tile");
        let feats = match &self.encoder {
            Encoder::Cnn(bank) => {
                let total: usize = seqs.iter().map(|s| s.len()).sum();
                let mut flat: Vec<u32> = Vec::with_capacity(total);
                let mut segs: Vec<(usize, usize)> = Vec::with_capacity(seqs.len());
                for s in seqs {
                    segs.push((flat.len(), s.len()));
                    flat.extend_from_slice(s);
                }
                let x = g.embed(self.emb.table, &flat);
                bank.forward_packed(g, x, &segs)
            }
            Encoder::Lstm(stack) => {
                let lens: Vec<usize> = seqs.iter().map(|s| s.len()).collect();
                let padded = lens.iter().copied().max().expect("non-empty tile");
                let mut flat: Vec<u32> = Vec::with_capacity(seqs.len() * padded);
                for s in seqs {
                    flat.extend_from_slice(s);
                    flat.resize(flat.len() + (padded - s.len()), sqlan_features::PAD);
                }
                let x = g.embed(self.emb.table, &flat);
                stack.forward_batch(g, x, &lens, padded)
            }
        };
        let feats = match mask {
            Some(mask) if self.cfg.dropout > 0.0 => {
                let keep = 1.0 - self.cfg.dropout;
                g.dropout(feats, mask.to_vec(), keep)
            }
            _ => feats,
        };
        self.head.forward(g, feats)
    }

    /// Shared encoder: embedding → CNN bank or LSTM stack → (1, feat_dim).
    /// A pre-drawn `mask` enables dropout (training); `None` disables it
    /// (inference). Masks are drawn by the caller so this stays a pure
    /// function, safe to fan out across gradient workers.
    fn encode_features(&self, g: &mut Graph<'_>, seq: &[u32], mask: Option<&[bool]>) -> Var {
        let x = self.emb.forward(g, seq);
        let feats = match &self.encoder {
            Encoder::Cnn(bank) => bank.forward(g, x),
            Encoder::Lstm(stack) => stack.forward(g, x),
        };
        match mask {
            Some(mask) if self.cfg.dropout > 0.0 => {
                let keep = 1.0 - self.cfg.dropout;
                g.dropout(feats, mask.to_vec(), keep)
            }
            _ => feats,
        }
    }

    /// The pre-batching encoder (seed conv kernel, op-by-op LSTM cell
    /// with per-step parameter pushes). Used only by the
    /// `SQLAN_NN_TRAIN=per_example` baseline so `bench_train` measures
    /// this PR's batched path against what actually shipped before it.
    fn encode_features_legacy(&self, g: &mut Graph<'_>, seq: &[u32], mask: Option<&[bool]>) -> Var {
        let x = self.emb.forward(g, seq);
        let feats = match &self.encoder {
            Encoder::Cnn(bank) => bank.forward_legacy(g, x),
            Encoder::Lstm(stack) => stack.forward_legacy(g, x),
        };
        match mask {
            Some(mask) if self.cfg.dropout > 0.0 => {
                let keep = 1.0 - self.cfg.dropout;
                g.dropout(feats, mask.to_vec(), keep)
            }
            _ => feats,
        }
    }

    fn encode_statement(&self, statement: &str) -> Vec<u32> {
        encode(
            statement,
            self.granularity,
            &self.vocab,
            &self.cfg,
            self.min_len,
        )
    }

    /// Inference forward pass (no dropout) for one pre-encoded sequence.
    fn proba_for_seq(&self, seq: &[u32]) -> Vec<f32> {
        let mut g = Graph::new(&self.params);
        let feats = self.encode_features(&mut g, seq, None);
        let out = self.head.forward(&mut g, feats);
        g.softmax_probs(out)
    }

    /// Inference forward pass (no dropout) for one pre-encoded sequence,
    /// scalar head.
    fn value_for_seq(&self, seq: &[u32]) -> f64 {
        let mut g = Graph::new(&self.params);
        let feats = self.encode_features(&mut g, seq, None);
        let out = self.head.forward(&mut g, feats);
        g.value(out).item() as f64
    }

    /// Class probabilities for one statement (classification models).
    pub fn predict_proba(&self, statement: &str) -> Vec<f32> {
        self.proba_for_seq(&self.encode_statement(statement))
    }

    /// Predicted class index.
    pub fn predict_class(&self, statement: &str) -> usize {
        sqlan_ml::argmax(&self.predict_proba(statement))
    }

    /// Predicted value in log-label space (regression models).
    pub fn predict_value(&self, statement: &str) -> f64 {
        self.value_for_seq(&self.encode_statement(statement))
    }

    /// Batch twin of [`Self::predict_proba`], via *true batched
    /// forward*: statements encode in one fan-out, tiles plan by length,
    /// and each tile runs one batched tape (one `(B,K)·(K,N)` matmul per
    /// layer instead of B vector-matrix products). Because every kernel
    /// batches along rows only — preserving each row's accumulation
    /// order — the output is bit-identical to mapping the per-statement
    /// API, at any thread count.
    pub fn predict_proba_batch(&self, statements: &[String]) -> Vec<Vec<f32>> {
        let seqs: Vec<Vec<u32>> = sqlan_par::par_map(statements, |s| self.encode_statement(s));
        let lens: Vec<usize> = seqs.iter().map(Vec::len).collect();
        let tiles = plan_tiles(&lens, PREDICT_TILE);
        let per_tile: Vec<Vec<Vec<f32>>> = sqlan_par::par_map(&tiles, |tile| {
            let mut g = Graph::new(&self.params);
            let tile_seqs: Vec<&[u32]> = tile.indices.iter().map(|&i| seqs[i].as_slice()).collect();
            let logits = self.logits_for_tile(&mut g, &tile_seqs, None);
            let probs = g.softmax_probs_rows(logits);
            let rows: Vec<Vec<f32>> = (0..probs.rows)
                .map(|r| probs.row_slice(r).to_vec())
                .collect();
            probs.recycle();
            rows
        });
        let mut out: Vec<Vec<f32>> = vec![Vec::new(); statements.len()];
        for (tile, rows) in tiles.iter().zip(per_tile) {
            for (&i, row) in tile.indices.iter().zip(rows) {
                out[i] = row;
            }
        }
        out
    }

    /// Batch twin of [`Self::predict_class`].
    pub fn predict_class_batch(&self, statements: &[String]) -> Vec<usize> {
        self.predict_proba_batch(statements)
            .iter()
            .map(|p| sqlan_ml::argmax(p))
            .collect()
    }

    /// Batch twin of [`Self::predict_value`] (same true-batched forward
    /// as [`Self::predict_proba_batch`]).
    pub fn predict_value_batch(&self, statements: &[String]) -> Vec<f64> {
        let seqs: Vec<Vec<u32>> = sqlan_par::par_map(statements, |s| self.encode_statement(s));
        let lens: Vec<usize> = seqs.iter().map(Vec::len).collect();
        let tiles = plan_tiles(&lens, PREDICT_TILE);
        let per_tile: Vec<Vec<f64>> = sqlan_par::par_map(&tiles, |tile| {
            let mut g = Graph::new(&self.params);
            let tile_seqs: Vec<&[u32]> = tile.indices.iter().map(|&i| seqs[i].as_slice()).collect();
            let logits = self.logits_for_tile(&mut g, &tile_seqs, None);
            g.value(logits).data.iter().map(|&v| v as f64).collect()
        });
        let mut out: Vec<f64> = vec![0.0; statements.len()];
        for (tile, vals) in tiles.iter().zip(per_tile) {
            for (&i, v) in tile.indices.iter().zip(vals) {
                out[i] = v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivially separable task: statements mentioning DROP are class 1.
    fn toy_classification() -> (Vec<String>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..120 {
            if i % 2 == 0 {
                xs.push(format!("SELECT col{} FROM t WHERE x = {}", i % 7, i));
                ys.push(0);
            } else {
                xs.push(format!("DROP TABLE t{}", i % 5));
                ys.push(1);
            }
        }
        (xs, ys)
    }

    #[test]
    fn cnn_classifier_learns_toy_task() {
        let (xs, ys) = toy_classification();
        let cfg = TrainConfig {
            epochs: 6,
            ..TrainConfig::tiny()
        };
        let m = NeuralModel::train(
            ArchKind::Cnn,
            Granularity::Word,
            Task::Classify(2),
            &TrainData {
                statements: &xs[..100],
                labels: Labels::Classes(&ys[..100]),
                valid_statements: &xs[100..],
                valid_labels: Labels::Classes(&ys[100..]),
            },
            &cfg,
        );
        assert_eq!(m.name(), "wcnn");
        let acc = xs[100..]
            .iter()
            .zip(&ys[100..])
            .filter(|(s, &y)| m.predict_class(s) == y)
            .count() as f64
            / 20.0;
        assert!(acc > 0.9, "wcnn should solve the toy task, acc={acc}");
    }

    #[test]
    fn lstm_classifier_learns_toy_task() {
        let (xs, ys) = toy_classification();
        let cfg = TrainConfig {
            epochs: 6,
            ..TrainConfig::tiny()
        };
        let m = NeuralModel::train(
            ArchKind::Lstm,
            Granularity::Char,
            Task::Classify(2),
            &TrainData {
                statements: &xs[..100],
                labels: Labels::Classes(&ys[..100]),
                valid_statements: &xs[100..],
                valid_labels: Labels::Classes(&ys[100..]),
            },
            &cfg,
        );
        assert_eq!(m.name(), "clstm");
        let acc = xs[100..]
            .iter()
            .zip(&ys[100..])
            .filter(|(s, &y)| m.predict_class(s) == y)
            .count() as f64
            / 20.0;
        assert!(acc > 0.8, "clstm should solve the toy task, acc={acc}");
    }

    #[test]
    fn cnn_regressor_tracks_signal() {
        // Label = number of 'x' tokens, a purely textual signal.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..120usize {
            let n = i % 6;
            xs.push(format!("SELECT {} FROM t", vec!["x"; n + 1].join(", ")));
            ys.push(n as f64);
        }
        let cfg = TrainConfig {
            epochs: 12,
            ..TrainConfig::tiny()
        };
        let m = NeuralModel::train(
            ArchKind::Cnn,
            Granularity::Word,
            Task::Regress,
            &TrainData {
                statements: &xs[..100],
                labels: Labels::Values(&ys[..100]),
                valid_statements: &xs[100..],
                valid_labels: Labels::Values(&ys[100..]),
            },
            &cfg,
        );
        // Predictions should at least order extremes correctly.
        let low = m.predict_value("SELECT x FROM t");
        let high = m.predict_value("SELECT x, x, x, x, x, x FROM t");
        assert!(
            high > low,
            "regressor should track token count: {low} vs {high}"
        );
    }

    #[test]
    fn probabilities_are_normalized() {
        let (xs, ys) = toy_classification();
        let cfg = TrainConfig {
            epochs: 1,
            ..TrainConfig::tiny()
        };
        let m = NeuralModel::train(
            ArchKind::Cnn,
            Granularity::Char,
            Task::Classify(2),
            &TrainData {
                statements: &xs[..40],
                labels: Labels::Classes(&ys[..40]),
                valid_statements: &xs[40..60],
                valid_labels: Labels::Classes(&ys[40..60]),
            },
            &cfg,
        );
        let p = m.predict_proba("SELECT 1");
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn handles_arbitrary_prediction_input() {
        let (xs, ys) = toy_classification();
        let cfg = TrainConfig {
            epochs: 1,
            ..TrainConfig::tiny()
        };
        let m = NeuralModel::train(
            ArchKind::Cnn,
            Granularity::Word,
            Task::Classify(2),
            &TrainData {
                statements: &xs[..40],
                labels: Labels::Classes(&ys[..40]),
                valid_statements: &xs[40..60],
                valid_labels: Labels::Classes(&ys[40..60]),
            },
            &cfg,
        );
        // Unknown tokens, empty strings, unicode — all must predict.
        let _ = m.predict_class("");
        let _ = m.predict_class("¿donde están las galaxias?");
        let _ = m.predict_class(&"z".repeat(10_000));
    }
}
