//! The model zoo (§5): neural encoders, traditional TF-IDF models, and
//! baselines, unified behind [`zoo::TrainedModel`].

pub mod neural;
pub mod traditional;
pub mod zoo;
