//! The four query facilitation problems (Definition 4) and three problem
//! settings (Definition 5).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Definition 4: predict a query's label prior to execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Problem {
    /// 3-class: severe / success / non_severe.
    ErrorClassification,
    /// 7-class client identification (SDSS only).
    SessionClassification,
    /// Regression on log-transformed CPU seconds.
    CpuTime,
    /// Regression on log-transformed answer sizes (SDSS only).
    AnswerSize,
}

impl Problem {
    pub fn is_classification(self) -> bool {
        matches!(
            self,
            Problem::ErrorClassification | Problem::SessionClassification
        )
    }

    /// Number of classes for classification problems.
    pub fn n_classes(self) -> usize {
        match self {
            Problem::ErrorClassification => 3,
            Problem::SessionClassification => 7,
            _ => 0,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Problem::ErrorClassification => "error_classification",
            Problem::SessionClassification => "session_classification",
            Problem::CpuTime => "cpu_time",
            Problem::AnswerSize => "answer_size",
        }
    }

    /// All four problems, in Definition 4 order.
    pub const ALL: [Problem; 4] = [
        Problem::ErrorClassification,
        Problem::SessionClassification,
        Problem::CpuTime,
        Problem::AnswerSize,
    ];

    /// Inverse of [`Problem::name`] — the wire name used by the serving
    /// API.
    pub fn from_name(name: &str) -> Option<Problem> {
        Problem::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl fmt::Display for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Definition 5: how related are the workload and the new query?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Setting {
    /// Same database instance (SDSS, random split).
    HomogeneousInstance,
    /// Same schema, different instances (SQLShare, random split — every
    /// user's uploads share the platform's conventions).
    HomogeneousSchema,
    /// Different schemas (SQLShare, split by user).
    HeterogeneousSchema,
}

impl Setting {
    pub fn name(self) -> &'static str {
        match self {
            Setting::HomogeneousInstance => "Homogeneous Instance",
            Setting::HomogeneousSchema => "Homogeneous Schema",
            Setting::HeterogeneousSchema => "Heterogeneous Schema",
        }
    }
}

impl fmt::Display for Setting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_flags() {
        assert!(Problem::ErrorClassification.is_classification());
        assert!(Problem::SessionClassification.is_classification());
        assert!(!Problem::CpuTime.is_classification());
        assert_eq!(Problem::ErrorClassification.n_classes(), 3);
        assert_eq!(Problem::SessionClassification.n_classes(), 7);
        assert_eq!(Problem::AnswerSize.n_classes(), 0);
    }

    #[test]
    fn names_render() {
        assert_eq!(Problem::CpuTime.to_string(), "cpu_time");
        assert_eq!(
            Setting::HomogeneousInstance.to_string(),
            "Homogeneous Instance"
        );
    }
}
