//! Property tests: the `predict_*_batch` APIs are equivalent — bit for
//! bit — to mapping the per-statement APIs, for every backend in the
//! zoo, on arbitrary input text and at any thread count. This is the
//! contract the serving layer's micro-batching relies on.

use std::sync::OnceLock;

use proptest::prelude::*;
use sqlan_core::{train_model, Labels, ModelKind, Task, TrainConfig, TrainData, TrainedModel};

fn toy() -> (Vec<String>, Vec<usize>, Vec<f64>) {
    let mut xs = Vec::new();
    let mut cls = Vec::new();
    let mut vals = Vec::new();
    for i in 0..60 {
        let heavy = i % 3 == 0;
        xs.push(if heavy {
            format!("SELECT * FROM huge WHERE f(x) > {i}")
        } else {
            format!("SELECT 1 FROM small WHERE id = {i}")
        });
        cls.push(heavy as usize);
        vals.push(if heavy { 4.0 } else { 1.0 });
    }
    (xs, cls, vals)
}

/// Every persistable classifier family (linear, CNN, LSTM, baseline),
/// trained once and shared across property cases.
fn classifiers() -> &'static Vec<TrainedModel> {
    static MODELS: OnceLock<Vec<TrainedModel>> = OnceLock::new();
    MODELS.get_or_init(|| {
        let (xs, cls, _) = toy();
        let cfg = TrainConfig {
            epochs: 1,
            ..TrainConfig::tiny()
        };
        let data = TrainData {
            statements: &xs[..40],
            labels: Labels::Classes(&cls[..40]),
            valid_statements: &xs[40..],
            valid_labels: Labels::Classes(&cls[40..]),
        };
        [
            ModelKind::MFreq,
            ModelKind::CTfidf,
            ModelKind::WTfidf,
            ModelKind::WCnn,
            ModelKind::CLstm,
        ]
        .into_iter()
        .map(|kind| train_model(kind, Task::Classify(2), &data, &cfg, None))
        .collect()
    })
}

/// Every regressor family (median, linear, neural).
fn regressors() -> &'static Vec<TrainedModel> {
    static MODELS: OnceLock<Vec<TrainedModel>> = OnceLock::new();
    MODELS.get_or_init(|| {
        let (xs, _, vals) = toy();
        let cfg = TrainConfig {
            epochs: 1,
            ..TrainConfig::tiny()
        };
        let data = TrainData {
            statements: &xs[..40],
            labels: Labels::Values(&vals[..40]),
            valid_statements: &xs[40..],
            valid_labels: Labels::Values(&vals[40..]),
        };
        [ModelKind::Median, ModelKind::CTfidf, ModelKind::WCnn]
            .into_iter()
            .map(|kind| train_model(kind, Task::Regress, &data, &cfg, None))
            .collect()
    })
}

fn proba_bits(p: &[Vec<f32>]) -> Vec<Vec<u32>> {
    p.iter()
        .map(|row| row.iter().map(|f| f.to_bits()).collect())
        .collect()
}

fn value_bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|f| f.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary printable statements (including empty and unicode-free
    /// edge shapes) score identically one-at-a-time and batched.
    #[test]
    fn batch_equals_per_statement_on_arbitrary_text(
        statements in prop::collection::vec("[ -~]{0,60}", 0..12),
        threads in 1usize..5,
    ) {
        sqlan_par::with_threads(threads, || {
            for model in classifiers() {
                let batch_proba = model.predict_proba_batch(&statements);
                let one_proba: Vec<Vec<f32>> =
                    statements.iter().map(|s| model.predict_proba(s)).collect();
                prop_assert_eq!(
                    proba_bits(&batch_proba),
                    proba_bits(&one_proba),
                    "proba mismatch for {}",
                    model.name()
                );
                let batch_class = model.predict_class_batch(&statements);
                let one_class: Vec<usize> =
                    statements.iter().map(|s| model.predict_class(s)).collect();
                prop_assert_eq!(batch_class, one_class, "class mismatch for {}", model.name());
            }
            for model in regressors() {
                let batch = model.predict_value_batch(&statements);
                let one: Vec<f64> = statements.iter().map(|s| model.predict_value(s)).collect();
                prop_assert_eq!(
                    value_bits(&batch),
                    value_bits(&one),
                    "value mismatch for {}",
                    model.name()
                );
            }
            Ok(())
        })?;
    }

    /// SQL-shaped statements (the serving hot path) as well.
    #[test]
    fn batch_equals_per_statement_on_sql_text(
        ids in prop::collection::vec(0usize..1000, 1..24),
        threads in 1usize..5,
    ) {
        let statements: Vec<String> = ids
            .iter()
            .map(|i| format!("SELECT c{} FROM t{} WHERE x > {}", i % 13, i % 7, i))
            .collect();
        sqlan_par::with_threads(threads, || {
            for model in classifiers() {
                prop_assert_eq!(
                    proba_bits(&model.predict_proba_batch(&statements)),
                    proba_bits(
                        &statements.iter().map(|s| model.predict_proba(s)).collect::<Vec<_>>()
                    ),
                    "{}",
                    model.name()
                );
            }
            for model in regressors() {
                prop_assert_eq!(
                    value_bits(&model.predict_value_batch(&statements)),
                    value_bits(
                        &statements.iter().map(|s| model.predict_value(s)).collect::<Vec<_>>()
                    ),
                    "{}",
                    model.name()
                );
            }
            Ok(())
        })?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The true-batched neural path specifically: statement lengths vary
    /// wildly (empty → hundreds of tokens) so one request spans many
    /// length buckets, and batch sizes exceed the predict tile width so
    /// tiles split — every composition must still be bit-identical to
    /// per-statement scoring.
    #[test]
    fn neural_batching_is_bit_identical_across_buckets_and_tiles(
        lens in prop::collection::vec(0usize..300, 1..40),
        threads in 1usize..5,
    ) {
        // Length `n` repeats of a token, so sequences land in distinct
        // buckets; the token itself varies with the length.
        let statements: Vec<String> = lens
            .iter()
            .map(|&n| {
                let tok = ["x", "sel", "FROM", "9", "?"][n % 5];
                vec![tok; n].join(" ")
            })
            .collect();
        sqlan_par::with_threads(threads, || {
            // Neural classifiers (wcnn + clstm) from the shared zoo.
            for model in classifiers()
                .iter()
                .filter(|m| matches!(m.kind, ModelKind::WCnn | ModelKind::CLstm))
            {
                let batch = model.predict_proba_batch(&statements);
                let solo: Vec<Vec<f32>> =
                    statements.iter().map(|s| model.predict_proba(s)).collect();
                prop_assert_eq!(proba_bits(&batch), proba_bits(&solo), "{}", model.name());
            }
            // Neural regressor (wcnn head with one output).
            for model in regressors()
                .iter()
                .filter(|m| matches!(m.kind, ModelKind::WCnn | ModelKind::CLstm))
            {
                let batch = model.predict_value_batch(&statements);
                let solo: Vec<f64> =
                    statements.iter().map(|s| model.predict_value(s)).collect();
                prop_assert_eq!(value_bits(&batch), value_bits(&solo), "{}", model.name());
            }
            Ok(())
        })?;
    }
}

#[test]
fn opt_baseline_batch_matches_per_statement() {
    let (xs, _, vals) = toy();
    let cfg = TrainConfig::tiny();
    let db = sqlan_workload::sdss_database(sqlan_workload::SdssConfig {
        n_sessions: 1,
        scale: sqlan_workload::Scale(0.01),
        seed: 1,
    });
    let data = TrainData {
        statements: &xs[..40],
        labels: Labels::Values(&vals[..40]),
        valid_statements: &xs[40..],
        valid_labels: Labels::Values(&vals[40..]),
    };
    let model = train_model(ModelKind::Opt, Task::Regress, &data, &cfg, Some(&db));
    let statements: Vec<String> = xs[40..].to_vec();
    let batch = model.predict_value_batch(&statements);
    let one: Vec<f64> = statements.iter().map(|s| model.predict_value(s)).collect();
    assert_eq!(value_bits(&batch), value_bits(&one));
}
