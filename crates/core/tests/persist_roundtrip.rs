//! Property tests for model persistence: `save_json` → `load_json`
//! round-trips to bit-identical predictions for every persistable model
//! kind in the zoo, and corrupted/truncated artifacts error instead of
//! panicking or silently mispredicting.

use std::sync::OnceLock;

use proptest::prelude::*;
use sqlan_core::{train_model, Labels, ModelKind, Task, TrainConfig, TrainData, TrainedModel};

fn toy() -> (Vec<String>, Vec<usize>, Vec<f64>) {
    let mut xs = Vec::new();
    let mut cls = Vec::new();
    let mut vals = Vec::new();
    for i in 0..60 {
        let heavy = i % 3 == 0;
        xs.push(if heavy {
            format!("SELECT * FROM huge WHERE f(x) > {i}")
        } else {
            format!("SELECT 1 FROM small WHERE id = {i}")
        });
        cls.push(heavy as usize);
        vals.push(if heavy { 4.0 } else { 1.0 });
    }
    (xs, cls, vals)
}

/// One trained model of every persistable kind (all of the zoo except
/// `opt`, which is rejected by `save_json` — see
/// `zoo::tests::opt_is_not_persistable`): five kinds trained as
/// classifiers, three as regressors, covering all eight.
fn zoo() -> &'static Vec<TrainedModel> {
    static MODELS: OnceLock<Vec<TrainedModel>> = OnceLock::new();
    MODELS.get_or_init(|| {
        let (xs, cls, vals) = toy();
        let cfg = TrainConfig {
            epochs: 1,
            ..TrainConfig::tiny()
        };
        let cls_data = TrainData {
            statements: &xs[..40],
            labels: Labels::Classes(&cls[..40]),
            valid_statements: &xs[40..],
            valid_labels: Labels::Classes(&cls[40..]),
        };
        let reg_data = TrainData {
            statements: &xs[..40],
            labels: Labels::Values(&vals[..40]),
            valid_statements: &xs[40..],
            valid_labels: Labels::Values(&vals[40..]),
        };
        let mut models: Vec<TrainedModel> = [
            ModelKind::MFreq,
            ModelKind::CTfidf,
            ModelKind::WTfidf,
            ModelKind::CCnn,
            ModelKind::CLstm,
        ]
        .into_iter()
        .map(|kind| train_model(kind, Task::Classify(2), &cls_data, &cfg, None))
        .collect();
        models.extend(
            [ModelKind::Median, ModelKind::WCnn, ModelKind::WLstm]
                .into_iter()
                .map(|kind| train_model(kind, Task::Regress, &reg_data, &cfg, None)),
        );
        models
    })
}

/// The kinds trained as classifiers in [`zoo`] (disjoint from the
/// regressor kinds there, so membership decides which API to compare).
fn zoo_classifier_kinds() -> [ModelKind; 5] {
    [
        ModelKind::MFreq,
        ModelKind::CTfidf,
        ModelKind::WTfidf,
        ModelKind::CCnn,
        ModelKind::CLstm,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Round-trip every kind, then compare predictions on arbitrary
    /// printable text — bit-identical, classifier and regressor alike.
    #[test]
    fn roundtrip_preserves_predictions(
        statements in prop::collection::vec("[ -~]{0,50}", 1..8),
    ) {
        for model in zoo() {
            let json = model.save_json().expect("persistable kind");
            let restored = TrainedModel::load_json(&json).expect("valid artifact");
            prop_assert_eq!(restored.kind, model.kind);
            let classifier = zoo_classifier_kinds().contains(&model.kind);
            for s in &statements {
                if classifier {
                    prop_assert_eq!(
                        model.predict_class(s),
                        restored.predict_class(s),
                        "class: {}",
                        model.name()
                    );
                    let (a, b) = (model.predict_proba(s), restored.predict_proba(s));
                    prop_assert_eq!(
                        a.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                        b.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                        "proba: {}",
                        model.name()
                    );
                } else {
                    prop_assert_eq!(
                        model.predict_value(s).to_bits(),
                        restored.predict_value(s).to_bits(),
                        "value: {}",
                        model.name()
                    );
                }
            }
        }
    }

    /// A strict prefix of an artifact never loads (a prefix of a JSON
    /// object is always unterminated) — it errors, it never panics.
    #[test]
    fn truncated_artifact_errors(
        model_idx in 0usize..8,
        cut_frac in 0.0f64..1.0,
    ) {
        let model = &zoo()[model_idx % zoo().len()];
        let json = model.save_json().expect("persistable kind");
        let cut = ((json.len() as f64) * cut_frac) as usize;
        let cut = cut.min(json.len().saturating_sub(1));
        // Truncate on a char boundary.
        let mut cut = cut;
        while !json.is_char_boundary(cut) {
            cut -= 1;
        }
        prop_assert!(
            TrainedModel::load_json(&json[..cut]).is_err(),
            "truncated at {cut}/{} must not load ({})",
            json.len(),
            model.name()
        );
    }

    /// Byte-level corruption either fails to load or loads to the same
    /// model kind (flips in whitespace/float digits can be benign) — it
    /// never panics and never changes the model kind.
    #[test]
    fn corrupted_artifact_never_panics(
        model_idx in 0usize..8,
        pos_frac in 0.0f64..1.0,
        replacement in "[a-z#!]",
    ) {
        let model = &zoo()[model_idx % zoo().len()];
        let json = model.save_json().expect("persistable kind");
        let pos = (((json.len() - 1) as f64) * pos_frac) as usize;
        let mut pos = pos.min(json.len() - 1);
        while !json.is_char_boundary(pos) {
            pos -= 1;
        }
        let mut corrupted = String::with_capacity(json.len());
        corrupted.push_str(&json[..pos]);
        corrupted.push_str(&replacement);
        let rest = &json[pos..];
        let skip = rest.chars().next().map(char::len_utf8).unwrap_or(0);
        corrupted.push_str(&rest[skip..]);
        if let Ok(loaded) = TrainedModel::load_json(&corrupted) {
            prop_assert_eq!(loaded.kind, model.kind, "corruption changed the kind");
        }
    }
}

#[test]
fn empty_and_garbage_json_error_cleanly() {
    assert!(TrainedModel::load_json("").is_err());
    assert!(TrainedModel::load_json("{}").is_err());
    assert!(TrainedModel::load_json("null").is_err());
    assert!(TrainedModel::load_json("{\"kind\": \"WTfidf\"}").is_err());
    assert!(TrainedModel::load_json("[1, 2, 3]").is_err());
}
