//! `sqlan-fault` — the workspace's seed-deterministic fault-injection
//! plane.
//!
//! Production code is threaded with *named injection points*
//! (`bundle.crash`, `net.write.reset`, `score.panic`, ...): a call to
//! [`fires`] at the point where a syscall could fail, a worker could
//! panic, or a process could die. With no fault plane installed every
//! point costs one relaxed atomic load — the same kill-switch discipline
//! as `SQLAN_OBS` — so the hooks ship in release builds.
//!
//! A *fault schedule* is installed either from the environment
//! (`SQLAN_FAULTS=<seed>:<spec>`) or programmatically ([`install`]).
//! Whether the *n*-th call of a point fires is a **pure function of
//! `(seed, point name, n, trigger)`** — see [`decide`] — so the same
//! seed always reproduces the same fault schedule, across runs and
//! across machines. No clocks, no OS randomness.
//!
//! Spec grammar (comma-separated rules, at most one per point):
//!
//! ```text
//! SQLAN_FAULTS="42:score.panic=0.03,score.stall=0.02/25,bundle.crash=@7,net.read.eagain=on"
//!               │   │            │                  │ │              │                  │
//!               seed point  probability      argument │         exactly the 7th call  always
//!                                            (ms, bytes, ...)   (0-based, fires once)
//! ```
//!
//! Triggers: `on` (every call), `@k` (exactly the k-th call, once),
//! or a probability in `[0,1]` (seeded per-call coin). An optional
//! `/arg` carries a point-specific integer (stall milliseconds, ...).
//!
//! Installation is process-global. Tests that inject faults must
//! serialize on [`exclusive`] — the guard returned by [`install`] holds
//! that lock and clears the plane on drop, so the idiom is simply:
//!
//! ```ignore
//! let _faults = sqlan_fault::install(42, "score.panic=@0").unwrap();
//! ```

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Environment variable carrying a fault schedule: `<seed>:<spec>`.
/// Unset (or unparsable, reported once to stderr) means no faults.
pub const FAULTS_ENV: &str = "SQLAN_FAULTS";

const STATE_UNRESOLVED: u8 = 0;
const STATE_ON: u8 = 1;
const STATE_OFF: u8 = 2;
static STATE: AtomicU8 = AtomicU8::new(STATE_UNRESOLVED);

static PLANE: RwLock<Option<Arc<Plane>>> = RwLock::new(None);

/// When the *n*-th call of a point fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Every call fires.
    Always,
    /// Exactly the k-th call (0-based) fires, once.
    Nth(u64),
    /// Seeded per-call coin with this probability.
    Prob(f64),
}

/// One parsed `point=trigger[/arg]` rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    pub point: String,
    pub trigger: Trigger,
    /// Point-specific integer payload (stall milliseconds, ...); 0 when
    /// omitted.
    pub arg: u64,
}

struct PointState {
    rule: Rule,
    calls: AtomicU64,
    fires: AtomicU64,
}

/// An installed fault schedule: a seed plus per-point rules and call
/// counters.
pub struct Plane {
    seed: u64,
    points: Vec<PointState>,
}

impl Plane {
    fn new(seed: u64, rules: Vec<Rule>) -> Plane {
        Plane {
            seed,
            points: rules
                .into_iter()
                .map(|rule| PointState {
                    rule,
                    calls: AtomicU64::new(0),
                    fires: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    fn fire(&self, point: &str) -> Option<u64> {
        let p = self.points.iter().find(|p| p.rule.point == point)?;
        let n = p.calls.fetch_add(1, Ordering::Relaxed);
        if decide(self.seed, point, n, p.rule.trigger) {
            p.fires.fetch_add(1, Ordering::Relaxed);
            Some(p.rule.arg)
        } else {
            None
        }
    }
}

/// Whether a fault plane is installed. Resolved from [`FAULTS_ENV`] on
/// first call and cached; one relaxed load afterwards, cheap enough for
/// every injection point to check.
pub fn active() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => resolve_env(),
    }
}

#[cold]
fn resolve_env() -> bool {
    // The write lock serializes racing first callers; re-check under it.
    let mut plane = PLANE.write().unwrap_or_else(|e| e.into_inner());
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => return true,
        STATE_OFF => return false,
        _ => {}
    }
    let installed = match std::env::var(FAULTS_ENV) {
        Ok(spec) if !spec.trim().is_empty() => match parse_env_spec(&spec) {
            Ok((seed, rules)) => {
                *plane = Some(Arc::new(Plane::new(seed, rules)));
                true
            }
            Err(e) => {
                eprintln!("[sqlan-fault] ignoring {FAULTS_ENV}={spec:?}: {e}");
                false
            }
        },
        _ => false,
    };
    STATE.store(
        if installed { STATE_ON } else { STATE_OFF },
        Ordering::Relaxed,
    );
    installed
}

fn current() -> Option<Arc<Plane>> {
    if !active() {
        return None;
    }
    PLANE
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map(Arc::clone)
}

/// Consult the plane at an injection point: `true` means inject the
/// fault now. Every call ticks the point's call counter (when a rule for
/// it is installed), so decisions are reproducible per seed.
pub fn fires(point: &str) -> bool {
    fire_arg(point).is_some()
}

/// [`fires`], returning the rule's `/arg` payload when the point fires
/// (0 when the rule carries none).
pub fn fire_arg(point: &str) -> Option<u64> {
    current()?.fire(point)
}

/// The pure decision function: does the `n`-th call (0-based) of `point`
/// fire under `trigger`? Public so tests can recompute an observed fault
/// schedule offline and prove it was the deterministic one.
pub fn decide(seed: u64, point: &str, n: u64, trigger: Trigger) -> bool {
    match trigger {
        Trigger::Always => true,
        Trigger::Nth(k) => n == k,
        Trigger::Prob(p) => unit(mix(seed ^ fnv1a(point.as_bytes()), n)) < p,
    }
}

/// splitmix64-style finalizer over (stream, counter).
fn mix(stream: u64, n: u64) -> u64 {
    let mut z = stream
        .wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A deterministic value in `[0,1)` derived from `(seed, tag, n)` —
/// for callers that need seeded *parameters* (which byte to corrupt,
/// jitter factors) rather than a fire/no-fire decision.
pub fn unit_value(seed: u64, tag: &str, n: u64) -> f64 {
    unit(mix(seed ^ fnv1a(tag.as_bytes()), n))
}

/// The installed plane's seed, if any.
pub fn seed() -> Option<u64> {
    current().map(|p| p.seed)
}

/// How many times `point` has been consulted under the current plane
/// (0 when no plane or no rule for it).
pub fn calls(point: &str) -> u64 {
    current()
        .and_then(|p| {
            p.points
                .iter()
                .find(|s| s.rule.point == point)
                .map(|s| s.calls.load(Ordering::Relaxed))
        })
        .unwrap_or(0)
}

/// How many times `point` has fired under the current plane.
pub fn fired(point: &str) -> u64 {
    current()
        .and_then(|p| {
            p.points
                .iter()
                .find(|s| s.rule.point == point)
                .map(|s| s.fires.load(Ordering::Relaxed))
        })
        .unwrap_or(0)
}

/// Per-point counters of the installed plane, for post-run audits.
pub fn stats() -> Vec<PointStats> {
    current()
        .map(|p| {
            p.points
                .iter()
                .map(|s| PointStats {
                    rule: s.rule.clone(),
                    calls: s.calls.load(Ordering::Relaxed),
                    fires: s.fires.load(Ordering::Relaxed),
                })
                .collect()
        })
        .unwrap_or_default()
}

/// One point's rule and counters, from [`stats`].
#[derive(Debug, Clone)]
pub struct PointStats {
    pub rule: Rule,
    pub calls: u64,
    pub fires: u64,
}

/// The process-wide lock tests must hold while a fault plane is
/// installed: the plane is global, and cargo runs a binary's tests as
/// parallel threads.
pub fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Clears the plane (and disables env resolution) when dropped; holds
/// [`exclusive`] for its lifetime.
pub struct FaultGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        clear();
    }
}

impl std::fmt::Debug for FaultGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FaultGuard")
    }
}

/// Install a fault schedule programmatically. Takes [`exclusive`]
/// (blocking until other injecting tests finish) and returns a guard
/// that clears the plane on drop.
pub fn install(seed: u64, spec: &str) -> Result<FaultGuard, SpecError> {
    let rules = parse_rules(spec)?;
    let lock = exclusive();
    *PLANE.write().unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(Plane::new(seed, rules)));
    STATE.store(STATE_ON, Ordering::Relaxed);
    Ok(FaultGuard { _lock: lock })
}

/// Remove any installed plane and pin the switch off (env is not
/// re-consulted — a cleared process stays fault-free).
pub fn clear() {
    *PLANE.write().unwrap_or_else(|e| e.into_inner()) = None;
    STATE.store(STATE_OFF, Ordering::Relaxed);
}

/// A malformed fault spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// Parse the full env form `<seed>:<rules>`.
pub fn parse_env_spec(s: &str) -> Result<(u64, Vec<Rule>), SpecError> {
    let (seed, rules) = s
        .trim()
        .split_once(':')
        .ok_or_else(|| SpecError(format!("expected <seed>:<rules>, got {s:?}")))?;
    let seed = seed
        .trim()
        .parse::<u64>()
        .map_err(|_| SpecError(format!("seed {seed:?} is not a u64")))?;
    Ok((seed, parse_rules(rules)?))
}

/// Parse the rule list `point=trigger[/arg],...`.
pub fn parse_rules(s: &str) -> Result<Vec<Rule>, SpecError> {
    let mut rules: Vec<Rule> = Vec::new();
    for part in s.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (point, rhs) = part
            .split_once('=')
            .ok_or_else(|| SpecError(format!("rule {part:?} lacks '='")))?;
        let point = point.trim();
        if point.is_empty() {
            return Err(SpecError(format!("rule {part:?} has an empty point name")));
        }
        if rules.iter().any(|r| r.point == point) {
            return Err(SpecError(format!("duplicate rule for point {point:?}")));
        }
        let (trig, arg) = match rhs.split_once('/') {
            Some((t, a)) => (
                t.trim(),
                a.trim()
                    .parse::<u64>()
                    .map_err(|_| SpecError(format!("arg {a:?} is not a u64")))?,
            ),
            None => (rhs.trim(), 0),
        };
        let trigger = if trig == "on" {
            Trigger::Always
        } else if let Some(k) = trig.strip_prefix('@') {
            Trigger::Nth(
                k.parse::<u64>()
                    .map_err(|_| SpecError(format!("call index {k:?} is not a u64")))?,
            )
        } else {
            let p = trig
                .parse::<f64>()
                .map_err(|_| SpecError(format!("trigger {trig:?} is not on/@k/probability")))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(SpecError(format!("probability {p} outside [0,1]")));
            }
            Trigger::Prob(p)
        };
        rules.push(Rule {
            point: point.to_string(),
            trigger,
            arg,
        });
    }
    if rules.is_empty() {
        return Err(SpecError("no rules".to_string()));
    }
    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_trigger_form() {
        let rules = parse_rules("a.b=on, c.d=@7/25 ,e.f=0.125").expect("parse");
        assert_eq!(
            rules,
            vec![
                Rule {
                    point: "a.b".into(),
                    trigger: Trigger::Always,
                    arg: 0
                },
                Rule {
                    point: "c.d".into(),
                    trigger: Trigger::Nth(7),
                    arg: 25
                },
                Rule {
                    point: "e.f".into(),
                    trigger: Trigger::Prob(0.125),
                    arg: 0
                },
            ]
        );
        let (seed, rules) = parse_env_spec("42:x.y=on").expect("env form");
        assert_eq!(seed, 42);
        assert_eq!(rules.len(), 1);
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "a.b",
            "a.b=maybe",
            "a.b=1.5",
            "a.b=-0.1",
            "a.b=@x",
            "a.b=on/zz",
            "a.b=on,a.b=on",
            "=on",
        ] {
            assert!(parse_rules(bad).is_err(), "accepted {bad:?}");
        }
        assert!(parse_env_spec("a.b=on").is_err(), "env form needs a seed");
        assert!(parse_env_spec("seed:a.b=on").is_err());
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let _g = install(1, "p=@3").expect("install");
        let fired: Vec<bool> = (0..8).map(|_| fires("p")).collect();
        assert_eq!(
            fired,
            vec![false, false, false, true, false, false, false, false]
        );
        assert_eq!(calls("p"), 8);
        assert_eq!(super::fired("p"), 1);
    }

    #[test]
    fn decisions_are_a_pure_function_of_seed_point_and_n() {
        // The same (seed, point, n) triple always lands the same side of
        // the coin, and the observed fire counter equals the offline
        // recomputation — the contract the chaos e2e audits.
        let trig = Trigger::Prob(0.25);
        let a: Vec<bool> = (0..256).map(|n| decide(7, "x.y", n, trig)).collect();
        let b: Vec<bool> = (0..256).map(|n| decide(7, "x.y", n, trig)).collect();
        assert_eq!(a, b);
        let c: Vec<bool> = (0..256).map(|n| decide(8, "x.y", n, trig)).collect();
        assert_ne!(a, c, "a different seed must yield a different schedule");
        let d: Vec<bool> = (0..256).map(|n| decide(7, "x.z", n, trig)).collect();
        assert_ne!(a, d, "a different point must yield a different stream");
        let hits = a.iter().filter(|&&f| f).count();
        assert!(
            (16..112).contains(&hits),
            "p=0.25 over 256 draws fired {hits} times"
        );

        let _g = install(7, "x.y=0.25").expect("install");
        for _ in 0..256 {
            let _ = fires("x.y");
        }
        let recomputed = (0..256).filter(|&n| decide(7, "x.y", n, trig)).count() as u64;
        assert_eq!(super::fired("x.y"), recomputed);
    }

    #[test]
    fn probability_endpoints_are_exact() {
        for n in 0..64 {
            assert!(!decide(3, "p", n, Trigger::Prob(0.0)));
            assert!(decide(3, "p", n, Trigger::Prob(1.0)));
        }
    }

    #[test]
    fn unknown_points_never_fire_and_cost_nothing_to_ask() {
        let _g = install(1, "known=on").expect("install");
        assert!(fires("known"));
        assert!(!fires("unknown.point"));
        assert_eq!(calls("unknown.point"), 0);
    }

    #[test]
    fn guard_drop_clears_the_plane() {
        {
            let _g = install(1, "p=on").expect("install");
            assert!(active());
            assert!(fires("p"));
        }
        assert!(!active());
        assert!(!fires("p"));
        assert!(stats().is_empty());
    }

    #[test]
    fn fire_arg_carries_the_payload() {
        let _g = install(1, "stall=on/40,plain=on").expect("install");
        assert_eq!(fire_arg("stall"), Some(40));
        assert_eq!(fire_arg("plain"), Some(0));
        assert_eq!(fire_arg("absent"), None);
        assert_eq!(seed(), Some(1));
    }

    #[test]
    fn unit_value_is_deterministic_and_in_range() {
        let a = unit_value(9, "corrupt.byte", 0);
        assert_eq!(a, unit_value(9, "corrupt.byte", 0));
        assert_ne!(a, unit_value(9, "corrupt.byte", 1));
        for n in 0..64 {
            let v = unit_value(9, "corrupt.byte", n);
            assert!((0.0..1.0).contains(&v));
        }
    }
}
