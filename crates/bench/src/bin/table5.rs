//! Table 5: CPU time prediction on SQLShare under Homogeneous Schema
//! (random split) and Heterogeneous Schema (split by user), including the
//! `opt` optimizer-estimate baseline.

use sqlan_bench::{f, regression_models_with_opt, save_json, Harness, TablePrinter};
use sqlan_core::prelude::*;

fn main() {
    let h = Harness::from_env();
    let cfg = h.train_config();
    eprintln!(
        "[table5] building SQLShare workload ({} queries)...",
        h.sqlshare_queries
    );
    let workload = h.sqlshare_workload();
    let db = h.sqlshare_db();

    // Homogeneous Schema: random split.
    eprintln!("[table5] Homogeneous Schema...");
    let hs_split = random_split(workload.len(), h.seed ^ 1);
    let hs = run_experiment(
        &workload,
        Problem::CpuTime,
        hs_split,
        &regression_models_with_opt(),
        &cfg,
        Some(&db),
    );

    // Heterogeneous Schema: split by user.
    eprintln!("[table5] Heterogeneous Schema...");
    let het_split = split_by_user(&workload.entries, 0.8, 0.07, h.seed ^ 2);
    let het = run_experiment(
        &workload,
        Problem::CpuTime,
        het_split,
        &regression_models_with_opt(),
        &cfg,
        Some(&db),
    );

    let mut t = TablePrinter::new(&["Model", "v", "p", "HomSchema Loss", "HetSchema Loss"]);
    for (a, b) in hs.runs.iter().zip(&het.runs) {
        assert_eq!(a.kind, b.kind);
        t.row(vec![
            a.kind.name().into(),
            a.vocab_size
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into()),
            a.n_parameters
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into()),
            f(a.regression.as_ref().expect("eval").loss),
            f(b.regression.as_ref().expect("eval").loss),
        ]);
    }
    t.print("Table 5: query CPU time prediction (SQLShare)");

    save_json(
        "table5",
        &serde_json::json!({
            "homogeneous_schema": hs.summary_rows(),
            "heterogeneous_schema": het.summary_rows(),
        }),
    );
}
