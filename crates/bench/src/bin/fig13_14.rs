//! Figures 13 & 14: squared error of the regression models broken down by
//! structural properties.
//!
//! Fig. 13: answer-size error vs #characters / #functions / #joins /
//! nestedness / nested aggregation (Homogeneous Instance).
//! Fig. 14: CPU-time error vs #characters and nestedness across all three
//! problem settings (error grows with heterogeneity).

use sqlan_bench::{
    f, regression_models, regression_models_with_opt, save_json, Harness, TablePrinter,
};
use sqlan_core::prelude::*;
use sqlan_metrics::squared_error;
use sqlan_sql::{extract_props, StructuralProps};

/// Log-spaced #chars buckets, as in the figures' log-x panels.
fn char_bucket(chars: u32) -> usize {
    match chars {
        0..=31 => 0,
        32..=63 => 1,
        64..=127 => 2,
        128..=255 => 3,
        256..=511 => 4,
        _ => 5,
    }
}

const CHAR_BUCKET_NAMES: [&str; 6] = ["<32", "32-63", "64-127", "128-255", "256-511", "≥512"];

struct Breakdown {
    /// (bucket name, per-model mean squared error, support).
    rows: Vec<(String, Vec<f64>, usize)>,
}

fn breakdown(
    exp: &Experiment,
    props: &[StructuralProps],
    n_buckets: usize,
    bucket_of: impl Fn(&StructuralProps) -> usize,
    names: &dyn Fn(usize) -> String,
) -> Breakdown {
    let n_models = exp.runs.len();
    let mut sums = vec![vec![0.0f64; n_models]; n_buckets];
    let mut counts = vec![0usize; n_buckets];
    for (k, &i) in exp.split.test.iter().enumerate() {
        let b = bucket_of(&props[i]).min(n_buckets - 1);
        counts[b] += 1;
        for (m, run) in exp.runs.iter().enumerate() {
            let eval = run.regression.as_ref().expect("regression eval");
            sums[b][m] += squared_error(exp.dataset.log_labels[i], eval.preds_log[k]);
        }
    }
    let rows = (0..n_buckets)
        .map(|b| {
            let mse: Vec<f64> = sums[b]
                .iter()
                .map(|s| {
                    if counts[b] > 0 {
                        s / counts[b] as f64
                    } else {
                        f64::NAN
                    }
                })
                .collect();
            (names(b), mse, counts[b])
        })
        .collect();
    Breakdown { rows }
}

fn print_breakdown(title: &str, exp: &Experiment, bd: &Breakdown) -> Vec<serde_json::Value> {
    let mut header: Vec<String> = vec!["Bucket".into(), "n".into()];
    header.extend(exp.runs.iter().map(|r| r.kind.name().to_string()));
    let headers: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TablePrinter::new(&headers);
    let mut json = Vec::new();
    for (name, mses, n) in &bd.rows {
        let mut cells = vec![name.clone(), n.to_string()];
        cells.extend(mses.iter().map(|&v| f(v)));
        t.row(cells);
        json.push(serde_json::json!({"bucket": name, "n": n, "mse": mses}));
    }
    t.print(title);
    json
}

fn main() {
    let h = Harness::from_env();
    let cfg = h.train_config();
    let mut out = serde_json::Map::new();

    // ---- Figure 13: answer size on SDSS -----------------------------
    eprintln!("[fig13_14] SDSS workload + answer-size models...");
    let sdss = h.sdss_workload();
    let props: Vec<StructuralProps> = sdss
        .entries
        .iter()
        .map(|e| extract_props(&e.statement))
        .collect();
    let split = random_split(sdss.len(), h.seed);
    let ans = run_experiment(
        &sdss,
        Problem::AnswerSize,
        split.clone(),
        &regression_models(),
        &cfg,
        None,
    );

    let by_chars = breakdown(&ans, &props, 6, |p| char_bucket(p.num_chars), &|b| {
        CHAR_BUCKET_NAMES[b].to_string()
    });
    out.insert(
        "fig13a_by_chars".into(),
        print_breakdown(
            "Figure 13a: answer-size squared error by #characters",
            &ans,
            &by_chars,
        )
        .into(),
    );
    let by_fns = breakdown(&ans, &props, 4, |p| p.num_functions.min(3) as usize, &|b| {
        if b < 3 {
            b.to_string()
        } else {
            "≥3".into()
        }
    });
    out.insert(
        "fig13b_by_functions".into(),
        print_breakdown(
            "Figure 13b: answer-size squared error by #functions",
            &ans,
            &by_fns,
        )
        .into(),
    );
    let by_joins = breakdown(&ans, &props, 3, |p| p.num_joins.min(2) as usize, &|b| {
        if b < 2 {
            b.to_string()
        } else {
            "≥2".into()
        }
    });
    out.insert(
        "fig13c_by_joins".into(),
        print_breakdown(
            "Figure 13c: answer-size squared error by #joins",
            &ans,
            &by_joins,
        )
        .into(),
    );
    let by_nest = breakdown(
        &ans,
        &props,
        4,
        |p| p.nestedness_level.min(3) as usize,
        &|b| {
            if b < 3 {
                b.to_string()
            } else {
                "≥3".into()
            }
        },
    );
    out.insert(
        "fig13d_by_nestedness".into(),
        print_breakdown(
            "Figure 13d: answer-size squared error by nestedness",
            &ans,
            &by_nest,
        )
        .into(),
    );
    let by_nagg = breakdown(&ans, &props, 2, |p| p.nested_aggregation as usize, &|b| {
        if b == 0 {
            "false".into()
        } else {
            "true".into()
        }
    });
    out.insert(
        "fig13e_by_nested_aggregation".into(),
        print_breakdown(
            "Figure 13e: answer-size squared error by nested aggregation",
            &ans,
            &by_nagg,
        )
        .into(),
    );

    // ---- Figure 14: CPU time across the three settings ---------------
    eprintln!("[fig13_14] CPU time, Homogeneous Instance...");
    let cpu_hi = run_experiment(
        &sdss,
        Problem::CpuTime,
        split,
        &regression_models(),
        &cfg,
        None,
    );
    let hi_chars = breakdown(&cpu_hi, &props, 6, |p| char_bucket(p.num_chars), &|b| {
        CHAR_BUCKET_NAMES[b].to_string()
    });
    out.insert(
        "fig14a_hi_by_chars".into(),
        print_breakdown(
            "Figure 14a: CPU-time squared error by #characters (Homogeneous Instance)",
            &cpu_hi,
            &hi_chars,
        )
        .into(),
    );
    let hi_nest = breakdown(
        &cpu_hi,
        &props,
        4,
        |p| p.nestedness_level.min(3) as usize,
        &|b| {
            if b < 3 {
                b.to_string()
            } else {
                "≥3".into()
            }
        },
    );
    out.insert(
        "fig14b_hi_by_nestedness".into(),
        print_breakdown(
            "Figure 14b: CPU-time squared error by nestedness (Homogeneous Instance)",
            &cpu_hi,
            &hi_nest,
        )
        .into(),
    );

    eprintln!("[fig13_14] CPU time, SQLShare settings...");
    let share = h.sqlshare_workload();
    let share_props: Vec<StructuralProps> = share
        .entries
        .iter()
        .map(|e| extract_props(&e.statement))
        .collect();
    let db = h.sqlshare_db();
    for (key, title, split) in [
        (
            "fig14cd_homschema",
            "Figure 14c/d: CPU-time squared error (Homogeneous Schema)",
            random_split(share.len(), h.seed ^ 1),
        ),
        (
            "fig14ef_hetschema",
            "Figure 14e/f: CPU-time squared error (Heterogeneous Schema)",
            split_by_user(&share.entries, 0.8, 0.07, h.seed ^ 2),
        ),
    ] {
        let exp = run_experiment(
            &share,
            Problem::CpuTime,
            split,
            &regression_models_with_opt(),
            &cfg,
            Some(&db),
        );
        let by_chars = breakdown(&exp, &share_props, 6, |p| char_bucket(p.num_chars), &|b| {
            CHAR_BUCKET_NAMES[b].to_string()
        });
        let chars_json = print_breakdown(&format!("{title} by #characters"), &exp, &by_chars);
        let by_nest = breakdown(
            &exp,
            &share_props,
            4,
            |p| p.nestedness_level.min(3) as usize,
            &|b| {
                if b < 3 {
                    b.to_string()
                } else {
                    "≥3".into()
                }
            },
        );
        let nest_json = print_breakdown(&format!("{title} by nestedness"), &exp, &by_nest);
        out.insert(
            key.into(),
            serde_json::json!({"by_chars": chars_json, "by_nestedness": nest_json}),
        );
    }

    save_json("fig13_14", &out);
}
