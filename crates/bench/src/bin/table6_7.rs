//! Tables 6 & 7: CPU time prediction qerror percentiles on SQLShare —
//! Homogeneous Schema (Table 6) and Heterogeneous Schema (Table 7).

use sqlan_bench::{regression_models_with_opt, save_json, Harness, TablePrinter};
use sqlan_core::prelude::*;
use sqlan_metrics::QErrorTable;

fn qerror_row(name: &str, q: &sqlan_metrics::QErrorTable, wanted: &[f64]) -> Vec<String> {
    let mut cells = vec![name.to_string()];
    for &w in wanted {
        let v = q
            .rows
            .iter()
            .find(|(p, _)| *p == w)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN);
        cells.push(QErrorTable::display_value(v, 5e4));
    }
    cells
}

fn main() {
    let h = Harness::from_env();
    let cfg = h.train_config();
    eprintln!("[table6_7] building SQLShare workload...");
    let workload = h.sqlshare_workload();
    let db = h.sqlshare_db();

    // Table 6 — Homogeneous Schema, percentiles 40..80.
    let hs_split = random_split(workload.len(), h.seed ^ 1);
    let hs = run_experiment(
        &workload,
        Problem::CpuTime,
        hs_split,
        &regression_models_with_opt(),
        &cfg,
        Some(&db),
    );
    let wanted6 = [40.0, 50.0, 60.0, 75.0];
    let mut t6 = TablePrinter::new(&["Model", "40%", "50%", "60%", "75%"]);
    for r in &hs.runs {
        t6.row(qerror_row(
            r.kind.name(),
            &r.regression.as_ref().expect("eval").qerror,
            &wanted6,
        ));
    }
    t6.print("Table 6: CPU time prediction qerror (SQLShare, Homogeneous Schema)");

    // Table 7 — Heterogeneous Schema, percentiles 10..60.
    let het_split = split_by_user(&workload.entries, 0.8, 0.07, h.seed ^ 2);
    let het = run_experiment(
        &workload,
        Problem::CpuTime,
        het_split,
        &regression_models_with_opt(),
        &cfg,
        Some(&db),
    );
    let wanted7 = [10.0, 20.0, 30.0, 40.0, 50.0, 60.0];
    let mut t7 = TablePrinter::new(&["Model", "10%", "20%", "30%", "40%", "50%", "60%"]);
    for r in &het.runs {
        t7.row(qerror_row(
            r.kind.name(),
            &r.regression.as_ref().expect("eval").qerror,
            &wanted7,
        ));
    }
    t7.print("Table 7: CPU time prediction qerror (SQLShare, Heterogeneous Schema)");

    let dump = |exp: &Experiment| -> Vec<serde_json::Value> {
        exp.runs
            .iter()
            .map(|r| {
                serde_json::json!({
                    "model": r.kind.name(),
                    "qerror": r.regression.as_ref().unwrap().qerror.rows,
                })
            })
            .collect()
    };
    save_json(
        "table6_7",
        &serde_json::json!({"table6": dump(&hs), "table7": dump(&het)}),
    );
}
