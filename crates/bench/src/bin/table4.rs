//! Table 4: query session classification in Homogeneous Instance (SDSS) —
//! loss, per-class F-measure for the seven session classes, accuracy.

use sqlan_bench::{classification_models, f, save_json, Harness, TablePrinter};
use sqlan_core::prelude::*;
use sqlan_workload::SessionClass;

fn main() {
    let h = Harness::from_env();
    let cfg = h.train_config();
    eprintln!("[table4] building SDSS workload...");
    let workload = h.sdss_workload();
    let split = random_split(workload.len(), h.seed);

    let exp = run_experiment(
        &workload,
        Problem::SessionClassification,
        split.clone(),
        &classification_models(),
        &cfg,
        None,
    );

    let mut header: Vec<String> = vec!["Model".into(), "v".into(), "p".into(), "Loss".into()];
    header.extend(SessionClass::ALL.iter().map(|c| format!("F{}", c.name())));
    header.push("Accuracy".into());
    let headers: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TablePrinter::new(&headers);

    for r in &exp.runs {
        let c = r.classification.as_ref().expect("classification eval");
        let mut cells = vec![
            r.kind.name().to_string(),
            r.vocab_size
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into()),
            r.n_parameters
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into()),
            f(c.loss),
        ];
        for class in SessionClass::ALL {
            cells.push(f(c.per_class[class.index()].f_measure));
        }
        cells.push(f(c.accuracy));
        t.row(cells);
    }
    t.print("Table 4: query session classification, Homogeneous Instance (SDSS)");

    // Per-class test supports, as the caption reports.
    let test_labels: Vec<usize> = split
        .test
        .iter()
        .map(|&i| exp.dataset.class_labels[i])
        .collect();
    let mut support = [0usize; 7];
    for &l in &test_labels {
        support[l] += 1;
    }
    print!("#test samples per class:");
    for class in SessionClass::ALL {
        print!(" {} = {},", class.name(), support[class.index()]);
    }
    println!();

    save_json("table4", &exp.summary_rows());
}
