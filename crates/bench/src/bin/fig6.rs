//! Figure 6: label distributions — error classes (6a) and session classes
//! (6b) on SDSS; answer size (6c) and CPU time (6d) on SDSS; CPU time on
//! SQLShare (6e).

use sqlan_bench::{f, save_json, Harness, TablePrinter};
use sqlan_workload::{ErrorClass, LogHistogram, SessionClass, SummaryStats};

fn main() {
    let h = Harness::from_env();
    eprintln!("[fig6] building workloads...");
    let sdss = h.sdss_workload();
    let sqlshare = h.sqlshare_workload();

    // 6a: error classes.
    let mut err_counts = [0usize; 3];
    for e in &sdss.entries {
        err_counts[e.error_class.index()] += 1;
    }
    let n = sdss.len() as f64;
    let mut t = TablePrinter::new(&["Error class", "#queries", "share"]);
    for c in ErrorClass::ALL {
        t.row(vec![
            c.name().into(),
            err_counts[c.index()].to_string(),
            format!("{:.2}%", err_counts[c.index()] as f64 / n * 100.0),
        ]);
    }
    t.print("Figure 6a: SDSS error class distribution");

    // 6b: session classes.
    let mut sess_counts = [0usize; 7];
    for e in &sdss.entries {
        if let Some(c) = e.session_class {
            sess_counts[c.index()] += 1;
        }
    }
    let mut t = TablePrinter::new(&["Session class", "#queries", "share"]);
    for c in SessionClass::ALL {
        t.row(vec![
            c.name().into(),
            sess_counts[c.index()].to_string(),
            format!("{:.2}%", sess_counts[c.index()] as f64 / n * 100.0),
        ]);
    }
    t.print("Figure 6b: SDSS session class distribution");

    // 6c–6e: regression label distributions.
    let answer: Vec<f64> = sdss.entries.iter().map(|e| e.answer_size).collect();
    let cpu_sdss: Vec<f64> = sdss.entries.iter().map(|e| e.cpu_seconds).collect();
    let cpu_share: Vec<f64> = sqlshare.entries.iter().map(|e| e.cpu_seconds).collect();
    let mut t = TablePrinter::new(&["Label", "mean", "std", "min", "max", "mode", "median"]);
    let mut json_labels = Vec::new();
    for (name, vals) in [
        ("SDSS answer size (#tuples)", &answer),
        ("SDSS CPU time (sec)", &cpu_sdss),
        ("SQLShare CPU time (sec)", &cpu_share),
    ] {
        let s = SummaryStats::compute(vals);
        t.row(vec![
            name.into(),
            f(s.mean),
            f(s.std),
            f(s.min),
            f(s.max),
            f(s.mode),
            f(s.median),
        ]);
        json_labels.push(serde_json::json!({
            "label": name,
            "stats": s,
            "histogram": LogHistogram::compute(vals).buckets,
        }));
    }
    t.print("Figures 6c-6e: regression label distributions");

    save_json(
        "fig6",
        &serde_json::json!({
            "error_classes": ErrorClass::ALL.iter().map(|c| (c.name(), err_counts[c.index()])).collect::<Vec<_>>(),
            "session_classes": SessionClass::ALL.iter().map(|c| (c.name(), sess_counts[c.index()])).collect::<Vec<_>>(),
            "labels": json_labels,
        }),
    );
}
