//! Figure 8: SDSS analysis by session class — box statistics (q1, median,
//! q3, mean) of answer size, CPU time, number of characters and number of
//! words, per class.

use sqlan_bench::{f, save_json, Harness, TablePrinter};
use sqlan_sql::extract_props;
use sqlan_workload::{by_session_class, Workload};

fn panel(
    title: &str,
    w: &Workload,
    value: impl Fn(&sqlan_workload::WorkloadEntry) -> Option<f64>,
) -> Vec<serde_json::Value> {
    let stats = by_session_class(&w.entries, value);
    let mut t = TablePrinter::new(&["Session class", "q1", "median", "q3", "mean", "n"]);
    let mut json = Vec::new();
    for (class, b) in &stats {
        t.row(vec![
            class.name().into(),
            f(b.q1),
            f(b.median),
            f(b.q3),
            f(b.mean),
            b.count.to_string(),
        ]);
        json.push(serde_json::json!({"class": class.name(), "box": b}));
    }
    t.print(title);
    json
}

fn main() {
    let h = Harness::from_env();
    eprintln!("[fig8] building SDSS workload...");
    let w = h.sdss_workload();

    let a = panel("Figure 8a: answer size by session class", &w, |e| {
        (e.answer_size >= 0.0).then_some(e.answer_size)
    });
    let b = panel("Figure 8b: CPU time by session class", &w, |e| {
        Some(e.cpu_seconds)
    });
    let c = panel(
        "Figure 8c: number of characters by session class",
        &w,
        |e| Some(extract_props(&e.statement).num_chars as f64),
    );
    let d = panel("Figure 8d: number of words by session class", &w, |e| {
        Some(extract_props(&e.statement).num_words as f64)
    });

    save_json(
        "fig8",
        &serde_json::json!({"answer_size": a, "cpu_time": b, "num_chars": c, "num_words": d}),
    );
}
