//! Closed-loop load generator for the online prediction service.
//!
//! Trains a small fixed-seed bundle (error classifier + answer-size
//! regressor), saves it, boots `sqlan-serve` on an ephemeral port, and
//! replays the SDSS + SQLShare statement corpus over keep-alive HTTP at
//! 1/2/4/8 closed-loop client threads. Writes `BENCH_serve.json` with
//! per-level throughput, p50/p95/p99 request latency, and the server's
//! cache hit rate.
//!
//! Knobs:
//!
//! | env var                  | default | meaning                         |
//! |--------------------------|---------|---------------------------------|
//! | `SQLAN_BENCH_REQUESTS`   | 200     | requests per client thread      |
//! | `SQLAN_BENCH_BATCH`      | 8       | statements per request          |
//! | `SQLAN_BENCH_CLIENTS`    | 1,2,4,8 | client-thread levels (csv)      |
//! | `SQLAN_BENCH_C10K`       | 10000   | idle keep-alive conns to hold   |
//! | `SQLAN_BENCH_OUT`        | BENCH_serve.json | output path            |
//!
//! The harness sizing knobs (`SQLAN_SESSIONS`, `SQLAN_FAST`, …) shrink
//! the training corpus the same way they do for every other binary.
//!
//! ## The c10k section (Linux + epoll mode)
//!
//! After the closed-loop levels, the bench holds `SQLAN_BENCH_C10K` idle
//! keep-alive connections open against the server *at once* — the load
//! the thread-per-connection front end could never carry — then measures
//! predict throughput and sampled keep-alive liveness while they are
//! held. One process cannot own both sides of 10k sockets within the fd
//! limit, so the bench re-execs itself into child processes (marked by
//! `SQLAN_C10K_CHILD`) that each hold a slice of the connections and
//! answer probe commands over stdin/stdout.

use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;
use sqlan_bench::Harness;
use sqlan_core::{train_model, Dataset, Labels, ModelKind, Problem, Task, TrainData, TrainedModel};
use sqlan_metrics::LatencySummary;
use sqlan_serve::{
    save_bundle, Client, MetricsSnapshot, ModelRegistry, PredictRequest, PredictResponse,
    ScoringConfig, ServeConfig,
};

#[derive(Debug, Serialize)]
struct LevelStats {
    clients: usize,
    requests: usize,
    statements: usize,
    seconds: f64,
    /// Scored statements per second across all clients.
    stmts_per_sec: f64,
    /// Predict requests per second across all clients.
    requests_per_sec: f64,
    latency: LatencySummary,
    /// Server-side cumulative cache hit rate after this level.
    cache_hit_rate: f64,
}

#[derive(Debug, Serialize)]
struct C10kStats {
    /// Connections asked for (after clamping to the fd budget).
    target: usize,
    /// Connections the child processes actually established and held.
    held: usize,
    /// The server's own open-connection count while the hold was live.
    server_connections: u64,
    /// Sampled held connections that still answered a keep-alive
    /// request after the hold + load phase.
    probe_alive: usize,
    probe_sampled: usize,
    /// Predict throughput while all `held` connections stayed open.
    stmts_per_sec_under_hold: f64,
    p99_s_under_hold: f64,
    /// `RLIMIT_NOFILE` soft limit after raising it — the fd budget that
    /// clamped `target`.
    nofile_soft: u64,
}

/// Warm-cache throughput with observability on vs off (`SQLAN_OBS`).
/// The serving layer's contract is that metrics and tracing are pure
/// observers; this block pins the performance half of that contract.
#[derive(Debug, Serialize)]
struct ObsAbStats {
    rounds: usize,
    requests_per_round: usize,
    statements_per_round: usize,
    /// Best round, scored statements per second.
    obs_on_stmts_per_sec: f64,
    obs_off_stmts_per_sec: f64,
    /// `(off - on) / off` — positive when observability costs throughput.
    overhead_frac: f64,
}

/// Throughput under an installed fault plane (injected scoring panics
/// and stalls, degradation on) and how fast the service returns to
/// non-degraded answers once the plane clears.
#[derive(Debug, Serialize)]
struct ChaosStats {
    /// The installed `SQLAN_FAULTS`-grammar spec.
    spec: String,
    seed: u64,
    /// Same closed-loop round as the levels, faults off (warm cache).
    baseline_stmts_per_sec: f64,
    /// The same round with the fault plane installed.
    degraded_stmts_per_sec: f64,
    /// `(baseline - degraded) / baseline`.
    degradation_frac: f64,
    /// Server counters accumulated during the chaos round.
    degraded_responses: u64,
    worker_panics: u64,
    /// Time from clearing the plane to the first non-degraded 200.
    recovery_ms: f64,
}

#[derive(Debug, Serialize)]
struct BenchServe {
    machine: sqlan_bench::MachineInfo,
    /// Front end under test: `epoll` or `threads` (`SQLAN_HTTP`).
    http_mode: String,
    corpus_statements: usize,
    requests_per_client: usize,
    statements_per_request: usize,
    levels: Vec<LevelStats>,
    obs_ab: ObsAbStats,
    /// Present only in epoll mode on Linux.
    c10k: Option<C10kStats>,
    chaos: ChaosStats,
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn train_bundle(harness: &Harness) -> (std::path::PathBuf, usize, Vec<String>) {
    eprintln!("[bench_serve] building SDSS + SQLShare corpus…");
    let sdss = harness.sdss_workload();
    let sqlshare = harness.sqlshare_workload();
    let mut corpus: Vec<String> = sdss.entries.iter().map(|e| e.statement.clone()).collect();
    corpus.extend(sqlshare.entries.iter().map(|e| e.statement.clone()));

    eprintln!("[bench_serve] training bundle (wtfidf classifier + ctfidf regressor)…");
    let cls = Dataset::build(&sdss, Problem::ErrorClassification);
    let reg = Dataset::build(&sdss, Problem::AnswerSize);
    let cfg = harness.train_config();
    let cut = |n: usize| n * 4 / 5;
    let classifier: TrainedModel = train_model(
        ModelKind::WTfidf,
        Task::Classify(Problem::ErrorClassification.n_classes()),
        &TrainData {
            statements: &cls.statements[..cut(cls.len())],
            labels: Labels::Classes(&cls.class_labels[..cut(cls.len())]),
            valid_statements: &cls.statements[cut(cls.len())..],
            valid_labels: Labels::Classes(&cls.class_labels[cut(cls.len())..]),
        },
        &cfg,
        None,
    );
    let regressor: TrainedModel = train_model(
        ModelKind::CTfidf,
        Task::Regress,
        &TrainData {
            statements: &reg.statements[..cut(reg.len())],
            labels: Labels::Values(&reg.log_labels[..cut(reg.len())]),
            valid_statements: &reg.statements[cut(reg.len())..],
            valid_labels: Labels::Values(&reg.log_labels[cut(reg.len())..]),
        },
        &cfg,
        None,
    );
    let dir = std::env::temp_dir().join(format!("sqlan-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    save_bundle(
        &dir,
        "bench",
        harness.seed,
        &[
            (Problem::ErrorClassification, &classifier),
            (Problem::AnswerSize, &regressor),
        ],
    )
    .expect("save bundle");
    let n = corpus.len();
    (dir, n, corpus)
}

/// One closed-loop client: issues `requests` predictions back to back on
/// one keep-alive connection, alternating problems, walking the corpus
/// from a per-client offset. Returns per-request latencies (seconds).
fn run_client(
    addr: std::net::SocketAddr,
    corpus: &[String],
    requests: usize,
    batch: usize,
    offset: usize,
) -> Vec<f64> {
    let mut client = Client::connect(addr).expect("connect");
    let mut latencies = Vec::with_capacity(requests);
    let mut pos = offset;
    for r in 0..requests {
        let statements: Vec<String> = (0..batch)
            .map(|i| corpus[(pos + i) % corpus.len()].clone())
            .collect();
        pos += batch;
        let problem = if r % 2 == 0 {
            Problem::ErrorClassification
        } else {
            Problem::AnswerSize
        };
        let body = serde_json::to_string(&PredictRequest {
            problem: problem.name().to_string(),
            statements,
        })
        .expect("request serializes");
        let start = Instant::now();
        let (status, response) = client.post("/predict", &body).expect("predict");
        latencies.push(start.elapsed().as_secs_f64());
        assert_eq!(status, 200, "predict failed: {response}");
        let parsed: PredictResponse = serde_json::from_str(&response).expect("predict json");
        assert_eq!(parsed.predictions.len(), batch);
    }
    latencies
}

/// One raw keep-alive HTTP round trip on an already-open socket: write a
/// `GET /healthz`, read status line + headers + `content-length` body.
/// Uses a single fd per connection (no stream cloning) so a child can
/// hold 2 500 of them comfortably.
#[cfg(target_os = "linux")]
fn healthz_roundtrip(stream: &mut std::net::TcpStream) -> std::io::Result<()> {
    use std::io::{Read, Write};
    stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n")?;
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut tmp = [0u8; 1024];
    let (head_end, content_length) = loop {
        let n = stream.read(&mut tmp)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "closed mid-response",
            ));
        }
        buf.extend_from_slice(&tmp[..n]);
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&buf[..pos]);
            let content_length = head
                .lines()
                .find_map(|l| {
                    let (name, value) = l.split_once(':')?;
                    name.eq_ignore_ascii_case("content-length")
                        .then(|| value.trim().parse::<usize>().ok())
                        .flatten()
                })
                .unwrap_or(0);
            break (pos + 4, content_length);
        }
    };
    while buf.len() < head_end + content_length {
        let n = stream.read(&mut tmp)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "closed mid-body",
            ));
        }
        buf.extend_from_slice(&tmp[..n]);
    }
    Ok(())
}

/// Child-process mode (`SQLAN_C10K_CHILD="<addr> <n>"`): open and hold
/// `n` keep-alive connections, report `ready <count>`, then answer
/// `probe` (sample liveness) and `exit` commands on stdin.
#[cfg(target_os = "linux")]
fn c10k_child(spec: &str) {
    use std::io::{BufRead, Write};
    let mut parts = spec.split_whitespace();
    let addr: std::net::SocketAddr = parts.next().expect("child addr").parse().expect("addr");
    let n: usize = parts.next().expect("child count").parse().expect("count");
    let _ = sqlan_net::raise_nofile_limit();
    let mut conns: Vec<std::net::TcpStream> = Vec::with_capacity(n);
    for _ in 0..n {
        let Ok(mut stream) = std::net::TcpStream::connect(addr) else {
            break;
        };
        let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(30)));
        // Prove the connection end to end once, then leave it idle.
        if healthz_roundtrip(&mut stream).is_err() {
            break;
        }
        conns.push(stream);
    }
    let stdout = std::io::stdout();
    writeln!(stdout.lock(), "ready {}", conns.len()).expect("report ready");
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.unwrap_or_default();
        match line.trim() {
            "probe" => {
                // Sample across the held range: first, last, and a spread.
                let sample = conns.len().min(50);
                let mut alive = 0usize;
                for i in 0..sample {
                    let idx = i * conns.len() / sample.max(1);
                    if healthz_roundtrip(&mut conns[idx]).is_ok() {
                        alive += 1;
                    }
                }
                writeln!(stdout.lock(), "alive {alive} {sample}").expect("report probe");
            }
            _ => break,
        }
    }
}

/// Hold `target` idle keep-alive connections from child processes while
/// this process keeps serving, measure predict throughput under the
/// hold, then probe that the held connections still answer.
#[cfg(target_os = "linux")]
fn run_c10k(
    handle: &sqlan_serve::ServerHandle,
    corpus: &[String],
    batch: usize,
    nofile_soft: u64,
) -> C10kStats {
    use std::io::{BufRead, BufReader, Write};
    let addr = handle.addr();
    // fd budget: this process holds one fd per server-side connection
    // plus the bundle/pipes/epoll overhead; leave a 2 000-fd margin.
    let requested = env_usize("SQLAN_BENCH_C10K", 10_000);
    let target = requested.min(nofile_soft.saturating_sub(2_000) as usize);
    if target < requested {
        eprintln!(
            "[bench_serve] c10k: clamped {requested} -> {target} by RLIMIT_NOFILE={nofile_soft}"
        );
    }
    const PER_CHILD: usize = 2_500;
    let exe = std::env::current_exe().expect("current exe");
    let mut children = Vec::new();
    let mut remaining = target;
    while remaining > 0 {
        let slice = remaining.min(PER_CHILD);
        remaining -= slice;
        let child = std::process::Command::new(&exe)
            .env("SQLAN_C10K_CHILD", format!("{addr} {slice}"))
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn c10k child");
        children.push(child);
    }
    // Children establish concurrently; collect their ready counts.
    let mut readers: Vec<BufReader<std::process::ChildStdout>> = children
        .iter_mut()
        .map(|c| BufReader::new(c.stdout.take().expect("child stdout")))
        .collect();
    let mut held = 0usize;
    for reader in &mut readers {
        let mut line = String::new();
        reader.read_line(&mut line).expect("child ready");
        let n: usize = line
            .trim()
            .strip_prefix("ready ")
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("bad child handshake: {line:?}"));
        held += n;
    }
    let server_connections = handle.connections();
    eprintln!(
        "[bench_serve] c10k: holding {held} connections (server sees {server_connections}); \
         measuring predict throughput under the hold…"
    );

    // Closed-loop predict load while every held connection stays open.
    let requests = env_usize("SQLAN_BENCH_REQUESTS", 200);
    let start = Instant::now();
    let latencies: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|c| s.spawn(move || run_client(addr, corpus, requests, batch, c * 37)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let seconds = start.elapsed().as_secs_f64();
    let stmts = 2 * requests * batch;

    // The held connections must have survived the load phase: probe a
    // sample on every child.
    let (mut probe_alive, mut probe_sampled) = (0usize, 0usize);
    for (child, reader) in children.iter_mut().zip(&mut readers) {
        let stdin = child.stdin.as_mut().expect("child stdin");
        writeln!(stdin, "probe").expect("send probe");
        let mut line = String::new();
        reader.read_line(&mut line).expect("probe answer");
        let mut parts = line.trim().strip_prefix("alive ").unwrap_or("").split(' ');
        probe_alive += parts
            .next()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0);
        probe_sampled += parts
            .next()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0);
    }
    for mut child in children {
        if let Some(stdin) = child.stdin.as_mut() {
            let _ = writeln!(stdin, "exit");
        }
        let _ = child.wait();
    }
    C10kStats {
        target,
        held,
        server_connections,
        probe_alive,
        probe_sampled,
        stmts_per_sec_under_hold: stmts as f64 / seconds.max(1e-9),
        p99_s_under_hold: LatencySummary::from_seconds(&latencies).p99_s,
        nofile_soft,
    }
}

fn fetch_metrics(addr: std::net::SocketAddr) -> MetricsSnapshot {
    let mut client = Client::connect(addr).expect("connect");
    let (status, body) = client.get("/metrics").expect("metrics");
    assert_eq!(status, 200);
    serde_json::from_str(&body).expect("metrics json")
}

/// One closed-loop round: `clients` threads × `requests` requests.
/// Returns scored statements per second.
fn measure_round(
    addr: std::net::SocketAddr,
    corpus: &[String],
    requests: usize,
    batch: usize,
    clients: usize,
) -> f64 {
    let start = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| s.spawn(move || run_client(addr, corpus, requests, batch, c * 37)))
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });
    (clients * requests * batch) as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

/// A/B the serving hot path with observability on vs off over the same
/// warm-cache load, best of `rounds` each (interleaved to share thermal
/// and scheduler conditions). Asserts the <3% overhead contract.
fn run_obs_ab(
    addr: std::net::SocketAddr,
    corpus: &[String],
    requests: usize,
    batch: usize,
) -> ObsAbStats {
    const CLIENTS: usize = 2;
    const ROUNDS: usize = 3;
    // One warmup pass so every template in the walk is cache-resident
    // before either arm is timed.
    measure_round(addr, corpus, requests, batch, CLIENTS);
    let (mut best_on, mut best_off) = (0.0f64, 0.0f64);
    for _ in 0..ROUNDS {
        sqlan_obs::set_enabled(false);
        best_off = best_off.max(measure_round(addr, corpus, requests, batch, CLIENTS));
        sqlan_obs::set_enabled(true);
        best_on = best_on.max(measure_round(addr, corpus, requests, batch, CLIENTS));
    }
    let overhead_frac = (best_off - best_on) / best_off.max(1e-9);
    let stats = ObsAbStats {
        rounds: ROUNDS,
        requests_per_round: CLIENTS * requests,
        statements_per_round: CLIENTS * requests * batch,
        obs_on_stmts_per_sec: best_on,
        obs_off_stmts_per_sec: best_off,
        overhead_frac,
    };
    eprintln!(
        "    obs A/B: on {:.0} stmts/s  off {:.0} stmts/s  overhead {:+.2}%",
        best_on,
        best_off,
        overhead_frac * 100.0
    );
    assert!(
        overhead_frac < 0.03,
        "observability overhead {:.2}% exceeds the 3% warm-cache budget \
         (on {best_on:.0} stmts/s, off {best_off:.0} stmts/s)",
        overhead_frac * 100.0
    );
    stats
}

/// Counter-algebra invariants served by `/metrics`, checked while the
/// server is quiescent: every counted request landed in exactly one
/// response class, and the statement total is the sum of its per-problem
/// decomposition. Exact equalities — a lost increment fails the bench.
fn check_metrics_consistency(addr: std::net::SocketAddr) {
    let m = fetch_metrics(addr);
    assert_eq!(
        m.http_requests,
        m.responses_2xx + m.responses_4xx + m.responses_5xx,
        "requests must equal the sum of response classes"
    );
    assert_eq!(
        m.statements,
        m.statements_by_problem.iter().sum::<u64>(),
        "statement total must equal the per-problem sum"
    );
    eprintln!(
        "    metrics consistent: {} requests = {} 2xx + {} 4xx + {} 5xx; {} statements",
        m.http_requests, m.responses_2xx, m.responses_4xx, m.responses_5xx, m.statements
    );
}

/// The chaos round: a dedicated server with degradation enabled, the
/// same closed-loop load with and without injected scoring faults, and
/// the recovery time back to non-degraded answers.
fn run_chaos(bundle_dir: &std::path::Path, requests: usize, batch: usize, seed: u64) -> ChaosStats {
    let spec = "score.panic=0.05,score.stall=0.02/5".to_string();
    let registry = Arc::new(ModelRegistry::open(bundle_dir).expect("open bundle"));
    let handle = sqlan_serve::start(
        registry,
        ServeConfig {
            http_workers: 2,
            scoring: ScoringConfig {
                degrade: true,
                ..ScoringConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .expect("start chaos server");
    let addr = handle.addr();
    eprintln!("[bench_serve] chaos: seed {seed} spec {spec}");

    // Cold synthetic corpora, one per round: scoring faults only fire
    // when scoring actually runs, so a warm-cache walk would measure
    // nothing. Same shape for both rounds keeps the comparison fair.
    let fresh_corpus = |tag: &str| -> Vec<String> {
        (0..2 * requests * batch + 128)
            .map(|i| format!("SELECT col_{i} FROM {tag} WHERE id = {i}"))
            .collect()
    };
    let baseline = measure_round(addr, &fresh_corpus("chaos_base"), requests, batch, 2);
    let before = fetch_metrics(addr);
    let guard = sqlan_fault::install(seed, &spec).expect("install fault plane");
    let degraded = measure_round(addr, &fresh_corpus("chaos_fault"), requests, batch, 2);
    let after = fetch_metrics(addr);
    drop(guard);

    // Recovery: with the plane cleared, time until a fresh (uncached)
    // statement comes back non-degraded.
    let recover_start = Instant::now();
    let mut client = Client::connect(addr).expect("connect");
    let mut recovery_ms = f64::NAN;
    for i in 0..1_000 {
        let body = serde_json::to_string(&PredictRequest {
            problem: Problem::ErrorClassification.name().to_string(),
            statements: vec![format!("SELECT recovery_{i} FROM chaos_probe")],
        })
        .expect("request serializes");
        let (status, response) = client.post("/predict", &body).expect("recovery probe");
        if status == 200 {
            let parsed: PredictResponse = serde_json::from_str(&response).expect("predict json");
            if !parsed.degraded {
                recovery_ms = recover_start.elapsed().as_secs_f64() * 1e3;
                break;
            }
        }
    }
    assert!(
        recovery_ms.is_finite(),
        "service never recovered to non-degraded answers after faults cleared"
    );
    handle.shutdown();

    let stats = ChaosStats {
        spec,
        seed,
        baseline_stmts_per_sec: baseline,
        degraded_stmts_per_sec: degraded,
        degradation_frac: (baseline - degraded) / baseline.max(1e-9),
        degraded_responses: after.degraded_responses - before.degraded_responses,
        worker_panics: after.worker_panics - before.worker_panics,
        recovery_ms,
    };
    eprintln!(
        "    chaos: baseline {:.0} stmts/s  degraded {:.0} stmts/s ({:+.1}%)  \
         {} degraded responses  {} panics caught  recovery {:.1}ms",
        stats.baseline_stmts_per_sec,
        stats.degraded_stmts_per_sec,
        -stats.degradation_frac * 100.0,
        stats.degraded_responses,
        stats.worker_panics,
        stats.recovery_ms
    );
    stats
}

fn main() {
    // Re-exec'd child holding a slice of the c10k connections?
    #[cfg(target_os = "linux")]
    if let Ok(spec) = std::env::var("SQLAN_C10K_CHILD") {
        c10k_child(&spec);
        return;
    }
    #[cfg(target_os = "linux")]
    let nofile_soft = sqlan_net::raise_nofile_limit()
        .map(|(soft, _)| soft)
        .unwrap_or(1024);

    let harness = Harness::from_env();
    let requests = env_usize("SQLAN_BENCH_REQUESTS", 200);
    let batch = env_usize("SQLAN_BENCH_BATCH", 8);
    let levels: Vec<usize> = std::env::var("SQLAN_BENCH_CLIENTS")
        .unwrap_or_else(|_| "1,2,4,8".to_string())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let machine = sqlan_bench::machine_info();

    let (bundle_dir, corpus_len, corpus) = train_bundle(&harness);
    let registry = Arc::new(ModelRegistry::open(&bundle_dir).expect("open bundle"));
    let handle = sqlan_serve::start(
        registry,
        ServeConfig {
            http_workers: levels.iter().copied().max().unwrap_or(8),
            // The c10k hold keeps connections idle for the whole load
            // phase; the sweep must not reap them mid-measurement.
            idle_timeout: std::time::Duration::from_secs(300),
            scoring: ScoringConfig::default(),
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let addr = handle.addr();
    let http_mode = format!("{:?}", handle.http_mode()).to_lowercase();
    eprintln!(
        "[bench_serve] cores={} simd={} corpus={corpus_len} http={http_mode} serving on {addr}",
        machine.cores, machine.simd_tier
    );

    let mut out_levels = Vec::new();
    for &clients in &levels {
        eprintln!("[bench_serve] level: {clients} client(s) × {requests} requests × {batch} stmts");
        let start = Instant::now();
        let latencies: Vec<f64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let corpus = &corpus;
                    // Per-client offsets overlap across levels, so later
                    // levels re-walk statements the cache already holds —
                    // deliberately: that is the steady-state serving mix.
                    s.spawn(move || run_client(addr, corpus, requests, batch, c * 37))
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });
        let seconds = start.elapsed().as_secs_f64();
        let metrics = fetch_metrics(addr);
        let n_requests = clients * requests;
        let n_statements = n_requests * batch;
        let stats = LevelStats {
            clients,
            requests: n_requests,
            statements: n_statements,
            seconds,
            stmts_per_sec: n_statements as f64 / seconds.max(1e-9),
            requests_per_sec: n_requests as f64 / seconds.max(1e-9),
            latency: LatencySummary::from_seconds(&latencies),
            cache_hit_rate: metrics.cache_hit_rate,
        };
        eprintln!(
            "    {:.3}s  {:.0} stmts/s  p50 {:.2}ms  p99 {:.2}ms  cache {:.1}%",
            stats.seconds,
            stats.stmts_per_sec,
            stats.latency.p50_s * 1e3,
            stats.latency.p99_s * 1e3,
            stats.cache_hit_rate * 100.0
        );
        out_levels.push(stats);
    }

    // Observability A/B on the now-warm cache, then the counter-algebra
    // invariants while nothing else is in flight.
    let obs_ab = run_obs_ab(addr, &corpus, requests, batch);
    check_metrics_consistency(addr);

    // The c10k hold: epoll mode only — thread-per-connection would need
    // 10 000 OS threads to even accept the sockets.
    #[cfg(target_os = "linux")]
    let c10k = (handle.http_mode() == sqlan_serve::HttpMode::Epoll)
        .then(|| run_c10k(&handle, &corpus, batch, nofile_soft));
    #[cfg(not(target_os = "linux"))]
    let c10k: Option<C10kStats> = None;
    if let Some(stats) = &c10k {
        eprintln!(
            "    c10k: held {} (server {})  probe {}/{}  {:.0} stmts/s under hold  p99 {:.2}ms",
            stats.held,
            stats.server_connections,
            stats.probe_alive,
            stats.probe_sampled,
            stats.stmts_per_sec_under_hold,
            stats.p99_s_under_hold * 1e3
        );
    }

    handle.shutdown();

    // The chaos round runs on its own server instance (degradation is
    // an engine-start decision) after the main one is gone.
    let chaos = run_chaos(&bundle_dir, requests, batch, harness.seed);
    let _ = std::fs::remove_dir_all(&bundle_dir);

    let report = BenchServe {
        machine,
        http_mode,
        corpus_statements: corpus_len,
        requests_per_client: requests,
        statements_per_request: batch,
        levels: out_levels,
        obs_ab,
        c10k,
        chaos,
    };
    let out = std::env::var("SQLAN_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, &json).expect("write BENCH_serve.json");
    println!("{json}");
    eprintln!("[saved {out}]");
}
