//! Closed-loop load generator for the online prediction service.
//!
//! Trains a small fixed-seed bundle (error classifier + answer-size
//! regressor), saves it, boots `sqlan-serve` on an ephemeral port, and
//! replays the SDSS + SQLShare statement corpus over keep-alive HTTP at
//! 1/2/4/8 closed-loop client threads. Writes `BENCH_serve.json` with
//! per-level throughput, p50/p95/p99 request latency, and the server's
//! cache hit rate.
//!
//! Knobs:
//!
//! | env var                  | default | meaning                         |
//! |--------------------------|---------|---------------------------------|
//! | `SQLAN_BENCH_REQUESTS`   | 200     | requests per client thread      |
//! | `SQLAN_BENCH_BATCH`      | 8       | statements per request          |
//! | `SQLAN_BENCH_CLIENTS`    | 1,2,4,8 | client-thread levels (csv)      |
//! | `SQLAN_BENCH_OUT`        | BENCH_serve.json | output path            |
//!
//! The harness sizing knobs (`SQLAN_SESSIONS`, `SQLAN_FAST`, …) shrink
//! the training corpus the same way they do for every other binary.

use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;
use sqlan_bench::Harness;
use sqlan_core::{train_model, Dataset, Labels, ModelKind, Problem, Task, TrainData, TrainedModel};
use sqlan_metrics::LatencySummary;
use sqlan_serve::{
    save_bundle, Client, MetricsSnapshot, ModelRegistry, PredictRequest, PredictResponse,
    ScoringConfig, ServeConfig,
};

#[derive(Debug, Serialize)]
struct LevelStats {
    clients: usize,
    requests: usize,
    statements: usize,
    seconds: f64,
    /// Scored statements per second across all clients.
    stmts_per_sec: f64,
    /// Predict requests per second across all clients.
    requests_per_sec: f64,
    latency: LatencySummary,
    /// Server-side cumulative cache hit rate after this level.
    cache_hit_rate: f64,
}

#[derive(Debug, Serialize)]
struct BenchServe {
    machine: sqlan_bench::MachineInfo,
    corpus_statements: usize,
    requests_per_client: usize,
    statements_per_request: usize,
    levels: Vec<LevelStats>,
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn train_bundle(harness: &Harness) -> (std::path::PathBuf, usize, Vec<String>) {
    eprintln!("[bench_serve] building SDSS + SQLShare corpus…");
    let sdss = harness.sdss_workload();
    let sqlshare = harness.sqlshare_workload();
    let mut corpus: Vec<String> = sdss.entries.iter().map(|e| e.statement.clone()).collect();
    corpus.extend(sqlshare.entries.iter().map(|e| e.statement.clone()));

    eprintln!("[bench_serve] training bundle (wtfidf classifier + ctfidf regressor)…");
    let cls = Dataset::build(&sdss, Problem::ErrorClassification);
    let reg = Dataset::build(&sdss, Problem::AnswerSize);
    let cfg = harness.train_config();
    let cut = |n: usize| n * 4 / 5;
    let classifier: TrainedModel = train_model(
        ModelKind::WTfidf,
        Task::Classify(Problem::ErrorClassification.n_classes()),
        &TrainData {
            statements: &cls.statements[..cut(cls.len())],
            labels: Labels::Classes(&cls.class_labels[..cut(cls.len())]),
            valid_statements: &cls.statements[cut(cls.len())..],
            valid_labels: Labels::Classes(&cls.class_labels[cut(cls.len())..]),
        },
        &cfg,
        None,
    );
    let regressor: TrainedModel = train_model(
        ModelKind::CTfidf,
        Task::Regress,
        &TrainData {
            statements: &reg.statements[..cut(reg.len())],
            labels: Labels::Values(&reg.log_labels[..cut(reg.len())]),
            valid_statements: &reg.statements[cut(reg.len())..],
            valid_labels: Labels::Values(&reg.log_labels[cut(reg.len())..]),
        },
        &cfg,
        None,
    );
    let dir = std::env::temp_dir().join(format!("sqlan-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    save_bundle(
        &dir,
        "bench",
        harness.seed,
        &[
            (Problem::ErrorClassification, &classifier),
            (Problem::AnswerSize, &regressor),
        ],
    )
    .expect("save bundle");
    let n = corpus.len();
    (dir, n, corpus)
}

/// One closed-loop client: issues `requests` predictions back to back on
/// one keep-alive connection, alternating problems, walking the corpus
/// from a per-client offset. Returns per-request latencies (seconds).
fn run_client(
    addr: std::net::SocketAddr,
    corpus: &[String],
    requests: usize,
    batch: usize,
    offset: usize,
) -> Vec<f64> {
    let mut client = Client::connect(addr).expect("connect");
    let mut latencies = Vec::with_capacity(requests);
    let mut pos = offset;
    for r in 0..requests {
        let statements: Vec<String> = (0..batch)
            .map(|i| corpus[(pos + i) % corpus.len()].clone())
            .collect();
        pos += batch;
        let problem = if r % 2 == 0 {
            Problem::ErrorClassification
        } else {
            Problem::AnswerSize
        };
        let body = serde_json::to_string(&PredictRequest {
            problem: problem.name().to_string(),
            statements,
        })
        .expect("request serializes");
        let start = Instant::now();
        let (status, response) = client.post("/predict", &body).expect("predict");
        latencies.push(start.elapsed().as_secs_f64());
        assert_eq!(status, 200, "predict failed: {response}");
        let parsed: PredictResponse = serde_json::from_str(&response).expect("predict json");
        assert_eq!(parsed.predictions.len(), batch);
    }
    latencies
}

fn fetch_metrics(addr: std::net::SocketAddr) -> MetricsSnapshot {
    let mut client = Client::connect(addr).expect("connect");
    let (status, body) = client.get("/metrics").expect("metrics");
    assert_eq!(status, 200);
    serde_json::from_str(&body).expect("metrics json")
}

fn main() {
    let harness = Harness::from_env();
    let requests = env_usize("SQLAN_BENCH_REQUESTS", 200);
    let batch = env_usize("SQLAN_BENCH_BATCH", 8);
    let levels: Vec<usize> = std::env::var("SQLAN_BENCH_CLIENTS")
        .unwrap_or_else(|_| "1,2,4,8".to_string())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let machine = sqlan_bench::machine_info();

    let (bundle_dir, corpus_len, corpus) = train_bundle(&harness);
    let registry = Arc::new(ModelRegistry::open(&bundle_dir).expect("open bundle"));
    let handle = sqlan_serve::start(
        registry,
        ServeConfig {
            http_workers: levels.iter().copied().max().unwrap_or(8),
            scoring: ScoringConfig::default(),
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let addr = handle.addr();
    eprintln!(
        "[bench_serve] cores={} simd={} corpus={corpus_len} serving on {addr}",
        machine.cores, machine.simd_tier
    );

    let mut out_levels = Vec::new();
    for &clients in &levels {
        eprintln!("[bench_serve] level: {clients} client(s) × {requests} requests × {batch} stmts");
        let start = Instant::now();
        let latencies: Vec<f64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let corpus = &corpus;
                    // Per-client offsets overlap across levels, so later
                    // levels re-walk statements the cache already holds —
                    // deliberately: that is the steady-state serving mix.
                    s.spawn(move || run_client(addr, corpus, requests, batch, c * 37))
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });
        let seconds = start.elapsed().as_secs_f64();
        let metrics = fetch_metrics(addr);
        let n_requests = clients * requests;
        let n_statements = n_requests * batch;
        let stats = LevelStats {
            clients,
            requests: n_requests,
            statements: n_statements,
            seconds,
            stmts_per_sec: n_statements as f64 / seconds.max(1e-9),
            requests_per_sec: n_requests as f64 / seconds.max(1e-9),
            latency: LatencySummary::from_seconds(&latencies),
            cache_hit_rate: metrics.cache_hit_rate,
        };
        eprintln!(
            "    {:.3}s  {:.0} stmts/s  p50 {:.2}ms  p99 {:.2}ms  cache {:.1}%",
            stats.seconds,
            stats.stmts_per_sec,
            stats.latency.p50_s * 1e3,
            stats.latency.p99_s * 1e3,
            stats.cache_hit_rate * 100.0
        );
        out_levels.push(stats);
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&bundle_dir);

    let report = BenchServe {
        machine,
        corpus_statements: corpus_len,
        requests_per_client: requests,
        statements_per_request: batch,
        levels: out_levels,
    };
    let out = std::env::var("SQLAN_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, &json).expect("write BENCH_serve.json");
    println!("{json}");
    eprintln!("[saved {out}]");
}
