//! Figure 12: MSE of the regression problems broken down by session class
//! (Homogeneous Instance, SDSS) — CPU time (12a) and answer size (12b).

use sqlan_bench::{f, regression_models, save_json, Harness, TablePrinter};
use sqlan_core::prelude::*;
use sqlan_metrics::squared_error;
use sqlan_workload::SessionClass;

fn by_class_mse(exp: &Experiment, workload: &Workload) -> Vec<Vec<f64>> {
    // rows = models, cols = session classes (+ overall in the last col).
    let mut out = Vec::new();
    for run in &exp.runs {
        let eval = run.regression.as_ref().expect("regression eval");
        let mut sums = [0.0f64; 8];
        let mut counts = [0usize; 8];
        for (k, &i) in exp.split.test.iter().enumerate() {
            let class = workload.entries[i].session_class.expect("SDSS has classes");
            let se = squared_error(exp.dataset.log_labels[i], eval.preds_log[k]);
            sums[class.index()] += se;
            counts[class.index()] += 1;
            sums[7] += se;
            counts[7] += 1;
        }
        out.push(
            sums.iter()
                .zip(&counts)
                .map(|(s, &c)| if c > 0 { s / c as f64 } else { f64::NAN })
                .collect(),
        );
    }
    out
}

fn print_panel(title: &str, exp: &Experiment, workload: &Workload) -> Vec<serde_json::Value> {
    let table = by_class_mse(exp, workload);
    let mut header: Vec<String> = vec!["Model".into()];
    header.extend(SessionClass::ALL.iter().map(|c| c.name().to_string()));
    header.push("overall MSE".into());
    let headers: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TablePrinter::new(&headers);
    let mut json = Vec::new();
    for (run, row) in exp.runs.iter().zip(&table) {
        let mut cells = vec![run.kind.name().to_string()];
        cells.extend(row.iter().map(|&v| f(v)));
        t.row(cells);
        json.push(serde_json::json!({"model": run.kind.name(), "mse_by_class": row}));
    }
    t.print(title);
    json
}

fn main() {
    let h = Harness::from_env();
    let cfg = h.train_config();
    eprintln!("[fig12] building SDSS workload...");
    let workload = h.sdss_workload();
    let split = random_split(workload.len(), h.seed);

    eprintln!("[fig12] CPU time...");
    let cpu = run_experiment(
        &workload,
        Problem::CpuTime,
        split.clone(),
        &regression_models(),
        &cfg,
        None,
    );
    let a = print_panel("Figure 12a: CPU time MSE by session class", &cpu, &workload);

    eprintln!("[fig12] answer size...");
    let ans = run_experiment(
        &workload,
        Problem::AnswerSize,
        split,
        &regression_models(),
        &cfg,
        None,
    );
    let b = print_panel(
        "Figure 12b: answer size MSE by session class",
        &ans,
        &workload,
    );

    save_json(
        "fig12",
        &serde_json::json!({"cpu_time": a, "answer_size": b}),
    );
}
