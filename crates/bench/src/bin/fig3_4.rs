//! Figures 3 & 4: distributions of the ten structural properties of query
//! statements — SDSS (Fig. 3) and SQLShare (Fig. 4). Prints each panel's
//! summary line (µ, σ, min, max, mode, median) plus a log-bucket histogram,
//! and the §4.3.1 statement-type shares.

use sqlan_bench::{f, save_json, Harness, TablePrinter};
use sqlan_sql::StructuralProps;
use sqlan_workload::{statement_type_shares, LogHistogram, PropsMatrix, SummaryStats, Workload};

fn report(title: &str, workload: &Workload) -> Vec<serde_json::Value> {
    let props = PropsMatrix::extract(&workload.entries);
    let mut t = TablePrinter::new(&["Property", "mean", "std", "min", "max", "mode", "median"]);
    let mut json = Vec::new();
    for (k, name) in StructuralProps::NAMES.iter().enumerate() {
        let col = props.column(k);
        let s = SummaryStats::compute(&col);
        t.row(vec![
            name.to_string(),
            f(s.mean),
            f(s.std),
            f(s.min),
            f(s.max),
            f(s.mode),
            f(s.median),
        ]);
        let hist = LogHistogram::compute(&col);
        json.push(serde_json::json!({
            "property": name,
            "stats": s,
            "histogram": hist.buckets,
        }));
    }
    t.print(title);

    // §4.3.1 headline shares.
    let n = workload.len() as f64;
    let joins = props.props.iter().filter(|p| p.num_joins > 0).count() as f64 / n * 100.0;
    let multi_table = props.props.iter().filter(|p| p.num_tables > 1).count() as f64 / n * 100.0;
    let nested = props
        .props
        .iter()
        .filter(|p| p.nestedness_level > 0)
        .count() as f64
        / n
        * 100.0;
    let nested_agg = props.props.iter().filter(|p| p.nested_aggregation).count() as f64 / n * 100.0;
    println!(
        "queries with ≥1 join operator: {joins:.2}%; accessing >1 table: {multi_table:.2}%; \
         nested: {nested:.2}%; nested with aggregation: {nested_agg:.2}%"
    );
    let shares = statement_type_shares(&workload.entries);
    print!("statement types:");
    for (ty, share) in &shares {
        print!(" {ty} {:.2}%", share * 100.0);
    }
    println!();
    json
}

fn main() {
    let h = Harness::from_env();
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "both".to_string());

    let mut out = serde_json::Map::new();
    if arg == "sdss" || arg == "both" {
        eprintln!("[fig3_4] building SDSS workload...");
        let w = h.sdss_workload();
        out.insert(
            "fig3_sdss".into(),
            serde_json::Value::Array(report(
                "Figure 3: structural properties of SDSS query statements",
                &w,
            )),
        );
    }
    if arg == "sqlshare" || arg == "both" {
        eprintln!("[fig3_4] building SQLShare workload...");
        let w = h.sqlshare_workload();
        out.insert(
            "fig4_sqlshare".into(),
            serde_json::Value::Array(report(
                "Figure 4: structural properties of SQLShare query statements",
                &w,
            )),
        );
    }
    save_json("fig3_4", &out);
}
