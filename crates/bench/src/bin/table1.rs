//! Table 1: dataset sizes and splits for the three problem settings.

use sqlan_bench::{save_json, Harness, TablePrinter};
use sqlan_core::prelude::*;

fn main() {
    let h = Harness::from_env();
    let sdss = h.sdss_workload();
    let sqlshare = h.sqlshare_workload();

    let hi = random_split(sdss.len(), h.seed);
    let hs = random_split(sqlshare.len(), h.seed ^ 1);
    let het = split_by_user(&sqlshare.entries, 0.8, 0.07, h.seed ^ 2);

    let mut t = TablePrinter::new(&[
        "",
        "Homogeneous Instance",
        "Homogeneous Schema",
        "Heterogeneous Schema",
    ]);
    t.row(vec![
        "Total".into(),
        sdss.len().to_string(),
        sqlshare.len().to_string(),
        het.total().to_string(),
    ]);
    t.row(vec![
        "Train".into(),
        hi.train.len().to_string(),
        hs.train.len().to_string(),
        het.train.len().to_string(),
    ]);
    t.row(vec![
        "Valid.".into(),
        hi.valid.len().to_string(),
        hs.valid.len().to_string(),
        het.valid.len().to_string(),
    ]);
    t.row(vec![
        "Test".into(),
        hi.test.len().to_string(),
        hs.test.len().to_string(),
        het.test.len().to_string(),
    ]);
    t.print("Table 1: number of queries and data split");

    save_json(
        "table1",
        &serde_json::json!({
            "homogeneous_instance": {"total": sdss.len(), "train": hi.train.len(), "valid": hi.valid.len(), "test": hi.test.len()},
            "homogeneous_schema": {"total": sqlshare.len(), "train": hs.train.len(), "valid": hs.valid.len(), "test": hs.test.len()},
            "heterogeneous_schema": {"total": het.total(), "train": het.train.len(), "valid": het.valid.len(), "test": het.test.len()},
        }),
    );
}
