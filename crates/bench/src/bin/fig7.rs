//! Figure 7: Pearson correlation matrices of the ten structural
//! properties, for SDSS (7a) and SQLShare (7b).

use sqlan_bench::{save_json, Harness};
use sqlan_sql::StructuralProps;
use sqlan_workload::{PropsMatrix, Workload};

fn print_matrix(title: &str, w: &Workload) -> [[f64; 10]; 10] {
    let m = PropsMatrix::extract(&w.entries).correlation_matrix();
    println!("\n== {title} ==");
    // Short column labels.
    let short: Vec<String> = StructuralProps::NAMES
        .iter()
        .map(|n| {
            n.split_whitespace()
                .map(|w| &w[..1])
                .collect::<Vec<_>>()
                .join("")
                .to_uppercase()
        })
        .collect();
    print!("{:28}", "");
    for s in &short {
        print!("{:>6}", s);
    }
    println!();
    for (i, name) in StructuralProps::NAMES.iter().enumerate() {
        print!("{:28}", name);
        for v in m[i].iter().take(10) {
            print!("{:>6.2}", v);
        }
        println!();
    }
    m
}

fn main() {
    let h = Harness::from_env();
    eprintln!("[fig7] building workloads...");
    let sdss = h.sdss_workload();
    let share = h.sqlshare_workload();
    let a = print_matrix(
        "Figure 7a: correlation matrix of structural properties (SDSS)",
        &sdss,
    );
    let b = print_matrix(
        "Figure 7b: correlation matrix of structural properties (SQLShare)",
        &share,
    );

    // The §4.4.2 observation: #chars correlates with #words strongly.
    println!(
        "\ncorr(#chars, #words): SDSS {:.2}, SQLShare {:.2}",
        a[0][1], b[0][1]
    );

    let to_vec = |m: [[f64; 10]; 10]| -> Vec<Vec<f64>> { m.iter().map(|r| r.to_vec()).collect() };
    save_json(
        "fig7",
        &serde_json::json!({"sdss": to_vec(a), "sqlshare": to_vec(b)}),
    );
}
