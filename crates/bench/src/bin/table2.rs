//! Table 2: error classification (accuracy, per-class F, loss), CPU time
//! prediction, and answer size prediction in Homogeneous Instance (SDSS),
//! for all seven models.

use sqlan_bench::{classification_models, f, regression_models, save_json, Harness, TablePrinter};
use sqlan_core::prelude::*;
use sqlan_engine::ErrorClass;

fn main() {
    let h = Harness::from_env();
    let cfg = h.train_config();
    eprintln!(
        "[table2] building SDSS workload ({} sessions)...",
        h.sdss_sessions
    );
    let workload = h.sdss_workload();
    let split = random_split(workload.len(), h.seed);

    // ---- left: error classification --------------------------------
    eprintln!("[table2] error classification...");
    let cls = run_experiment(
        &workload,
        Problem::ErrorClassification,
        split.clone(),
        &classification_models(),
        &cfg,
        None,
    );

    let mut t = TablePrinter::new(&[
        "Model",
        "v",
        "p",
        "Accuracy",
        "Fsevere",
        "Fsuccess",
        "Fnon_severe",
        "Loss",
    ]);
    for r in &cls.runs {
        let c = r.classification.as_ref().expect("classification eval");
        t.row(vec![
            if r.kind == ModelKind::MFreq {
                "baseline".into()
            } else {
                r.kind.name().into()
            },
            r.vocab_size
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into()),
            r.n_parameters
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into()),
            f(c.accuracy),
            f(c.per_class[ErrorClass::Severe.index()].f_measure),
            f(c.per_class[ErrorClass::Success.index()].f_measure),
            f(c.per_class[ErrorClass::NonSevere.index()].f_measure),
            f(c.loss),
        ]);
    }
    t.print("Table 2 (left): query error classification, Homogeneous Instance (SDSS)");

    // Class supports, as the caption reports.
    let test_labels: Vec<usize> = split
        .test
        .iter()
        .map(|&i| cls.dataset.class_labels[i])
        .collect();
    let mut support = [0usize; 3];
    for &l in &test_labels {
        support[l] += 1;
    }
    println!(
        "#test samples per class: severe = {}, success = {}, non_severe = {}",
        support[0], support[1], support[2]
    );

    // ---- middle: CPU time ------------------------------------------
    eprintln!("[table2] CPU time regression...");
    let cpu = run_experiment(
        &workload,
        Problem::CpuTime,
        split.clone(),
        &regression_models(),
        &cfg,
        None,
    );
    // ---- right: answer size ----------------------------------------
    eprintln!("[table2] answer size regression...");
    let ans = run_experiment(
        &workload,
        Problem::AnswerSize,
        split,
        &regression_models(),
        &cfg,
        None,
    );

    let mut t2 = TablePrinter::new(&["Model", "p", "CPU Loss", "p", "Answer Loss"]);
    for (rc, ra) in cpu.runs.iter().zip(&ans.runs) {
        let lc = rc.regression.as_ref().expect("cpu eval");
        let la = ra.regression.as_ref().expect("answer eval");
        t2.row(vec![
            if rc.kind == ModelKind::Median {
                "baseline".into()
            } else {
                rc.kind.name().into()
            },
            rc.n_parameters
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into()),
            f(lc.loss),
            ra.n_parameters
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into()),
            f(la.loss),
        ]);
    }
    t2.print("Table 2 (middle/right): CPU time and answer size loss, Homogeneous Instance");

    save_json(
        "table2",
        &serde_json::json!({
            "error_classification": cls.summary_rows(),
            "cpu_time": cpu.summary_rows(),
            "answer_size": ans.summary_rows(),
        }),
    );
}
