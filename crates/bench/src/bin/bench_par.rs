//! Thread-scaling benchmark for the deterministic parallel runtime.
//!
//! Measures wall-clock for the three data-parallel pipeline stages —
//! workload build (statement execution for labels), featurization
//! (tokenize + TF-IDF fit + transform), and experiment training — at
//! 1/2/4/8 worker threads, verifies the outputs are byte-identical across
//! thread counts, and writes `BENCH_par.json` for the perf trajectory.
//!
//! Knobs: the usual `Harness` env vars plus `SQLAN_BENCH_THREADS`
//! (comma-separated thread counts, default `1,2,4,8`) and
//! `SQLAN_BENCH_OUT` (output path, default `BENCH_par.json`).
//!
//! Note: speedup is bounded by the machine — on a single-core container
//! every thread count measures ≈ 1×. The JSON records `cores` so readers
//! can tell "no parallel hardware" apart from "doesn't scale".

use std::time::Instant;

use serde::Serialize;
use sqlan_bench::{Harness, MachineInfo};
use sqlan_core::prelude::*;
use sqlan_features::{word_tokens, TfidfVectorizer};
use sqlan_par::with_threads;

#[derive(Debug, Serialize)]
struct StageScaling {
    /// (threads, wall-clock seconds) per measured thread count.
    seconds: Vec<(usize, f64)>,
    /// seconds@1 / seconds@4 (absent if 4 threads was not measured).
    speedup_at_4: Option<f64>,
    /// Whether the stage output was byte-identical across all thread
    /// counts (the determinism contract, re-checked on real data).
    deterministic: bool,
}

#[derive(Debug, Serialize)]
struct BenchPar {
    /// CPUs and kernel tier; thread speedup is bounded by `machine.cores`.
    machine: MachineInfo,
    threads_measured: Vec<usize>,
    sdss_sessions: usize,
    scale: f64,
    epochs: usize,
    workload_build: StageScaling,
    featurize: StageScaling,
    train: StageScaling,
}

fn measure<T>(f: impl Fn() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

/// Run `f` at every thread count; report timings, whether the serialized
/// outputs agree bit-for-bit, and the last run's output (so callers can
/// reuse it instead of recomputing).
fn scale_stage<T: Serialize>(threads: &[usize], f: impl Fn() -> T) -> (StageScaling, T) {
    let mut seconds = Vec::new();
    let mut fingerprints: Vec<String> = Vec::new();
    let mut last: Option<T> = None;
    for &t in threads {
        let (secs, out) = with_threads(t, || measure(&f));
        seconds.push((t, secs));
        fingerprints.push(serde_json::to_string(&out).expect("stage output serializes"));
        last = Some(out);
        eprintln!("    {t} thread(s): {secs:.3}s");
    }
    let at = |n: usize| seconds.iter().find(|(t, _)| *t == n).map(|(_, s)| *s);
    let scaling = StageScaling {
        speedup_at_4: at(1).zip(at(4)).map(|(one, four)| one / four),
        deterministic: fingerprints.windows(2).all(|w| w[0] == w[1]),
        seconds,
    };
    (scaling, last.expect("at least one thread count measured"))
}

fn main() {
    let h = Harness::from_env();
    let threads: Vec<usize> = std::env::var("SQLAN_BENCH_THREADS")
        .unwrap_or_else(|_| "1,2,4,8".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let machine = sqlan_bench::machine_info();
    eprintln!(
        "[bench_par] cores={} simd={} threads={threads:?} sessions={} scale={}",
        machine.cores, machine.simd_tier, h.sdss_sessions, h.scale
    );

    eprintln!("[bench_par] stage 1/3: workload build (execution labeling)");
    let (workload_build, workload) = scale_stage(&threads, || build_sdss(h.sdss_config()));

    // Featurization input: the real deduplicated statement corpus, reused
    // from the last stage-1 run (all runs are byte-identical anyway).
    let statements: Vec<String> = workload
        .entries
        .iter()
        .map(|e| e.statement.clone())
        .collect();
    eprintln!(
        "[bench_par] stage 2/3: featurize ({} statements)",
        statements.len()
    );
    let (featurize, _) = scale_stage(&threads, || {
        let streams = sqlan_par::par_map(&statements, |s| word_tokens(s));
        let v = TfidfVectorizer::fit(&streams, 5, 20_000);
        v.transform_batch(&streams)
    });

    eprintln!("[bench_par] stage 3/3: train (error classification zoo)");
    let split = random_split(workload.len(), h.seed ^ 0x11);
    let cfg = h.train_config();
    let (train, _) = scale_stage(&threads, || {
        let exp = run_experiment(
            &workload,
            Problem::ErrorClassification,
            split.clone(),
            &[ModelKind::MFreq, ModelKind::CTfidf, ModelKind::CCnn],
            &cfg,
            None,
        );
        // Summary rows + trained parameters: a bitwise fingerprint of the
        // whole training run.
        let saved: Vec<String> = exp
            .runs
            .iter()
            .map(|r| r.model.save_json().expect("persistable lineup"))
            .collect();
        (exp.summary_rows(), saved)
    });

    let report = BenchPar {
        machine,
        threads_measured: threads,
        sdss_sessions: h.sdss_sessions,
        scale: h.scale,
        epochs: h.epochs,
        workload_build,
        featurize,
        train,
    };
    assert!(
        report.workload_build.deterministic
            && report.featurize.deterministic
            && report.train.deterministic,
        "thread-count invariance violated — see BENCH_par.json"
    );

    let out = std::env::var("SQLAN_BENCH_OUT").unwrap_or_else(|_| "BENCH_par.json".into());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, &json).expect("write BENCH_par.json");
    println!("{json}");
    eprintln!("[saved {out}]");
}
