//! Neural-training throughput benchmark: per-example vs batched.
//!
//! Trains the paper's neural models (`wcnn` + `clstm`, error
//! classification on the fixed-seed SDSS workload) through both training
//! paths — `SQLAN_NN_TRAIN=per_example` (one autograd tape per example,
//! the pre-batching baseline) and the default tensorized minibatch path
//! (length-bucketed tiles, one batched tape each) — at 1/2/4/8 worker
//! threads, and reports epoch throughput in examples/second.
//!
//! Besides speed, the run re-checks the correctness contracts on real
//! data and fails loudly if they break:
//!
//! * trained parameters byte-identical across all thread counts (the
//!   determinism contract, per mode);
//! * `predict_proba_batch` bit-identical to per-statement
//!   `predict_proba` on the test slice (the serving contract);
//! * batched throughput ≥ per-example throughput at every thread count.
//!
//! Knobs: the usual `Harness` env vars plus `SQLAN_BENCH_THREADS`
//! (default `1,2,4,8`) and `SQLAN_BENCH_OUT` (default
//! `BENCH_train.json`). The checked-in `BENCH_train.json` is the pinned
//! run from the development container; the CI artifact tracks the
//! numbers per commit.

use std::time::Instant;

use serde::Serialize;
use sqlan_bench::Harness;
use sqlan_core::prelude::*;
use sqlan_core::Dataset;

#[derive(Debug, Serialize)]
struct ModeScaling {
    /// (threads, wall-clock seconds, examples/second) per thread count.
    runs: Vec<(usize, f64, f64)>,
    /// Trained parameters byte-identical across all thread counts.
    deterministic: bool,
}

#[derive(Debug, Serialize)]
struct ModelBench {
    model: String,
    n_train: usize,
    epochs: usize,
    per_example: ModeScaling,
    batched: ModeScaling,
    /// batched examples/s ÷ per-example examples/s at the lowest
    /// measured thread count (1 unless `SQLAN_BENCH_THREADS` omits it).
    speedup_batched_at_1_thread: f64,
    /// `predict_proba_batch` ≡ mapped `predict_proba`, bit for bit, on
    /// the test slice (batched-path model, every measured thread count).
    batch_predict_bit_identical: bool,
}

#[derive(Debug, Serialize)]
struct BenchTrain {
    /// CPUs visible to this process; thread-scaling is bounded by this.
    cores: usize,
    threads_measured: Vec<usize>,
    sdss_sessions: usize,
    scale: f64,
    models: Vec<ModelBench>,
}

fn train_mode(
    mode: &str,
    kind: ModelKind,
    threads: &[usize],
    data: &TrainData<'_>,
    cfg: &TrainConfig,
) -> (ModeScaling, TrainedModel) {
    std::env::set_var("SQLAN_NN_TRAIN", mode);
    let n_examples = data.statements.len() * cfg.epochs;
    let mut runs = Vec::new();
    let mut fingerprints: Vec<String> = Vec::new();
    let mut last = None;
    for &t in threads {
        let start = Instant::now();
        let model =
            sqlan_par::with_threads(t, || train_model(kind, Task::Classify(3), data, cfg, None));
        let secs = start.elapsed().as_secs_f64();
        let exps = n_examples as f64 / secs;
        eprintln!("    {mode:>11} {t} thread(s): {secs:.3}s ({exps:.0} examples/s)");
        runs.push((t, secs, exps));
        fingerprints.push(model.save_json().expect("neural models persist"));
        last = Some(model);
    }
    let scaling = ModeScaling {
        deterministic: fingerprints.windows(2).all(|w| w[0] == w[1]),
        runs,
    };
    (scaling, last.expect("at least one thread count"))
}

fn main() {
    let h = Harness::from_env();
    let threads: Vec<usize> = std::env::var("SQLAN_BENCH_THREADS")
        .unwrap_or_else(|_| "1,2,4,8".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "[bench_train] cores={cores} threads={threads:?} sessions={} scale={}",
        h.sdss_sessions, h.scale
    );

    eprintln!("[bench_train] building fixed-seed SDSS workload…");
    let workload = build_sdss(h.sdss_config());
    let dataset = Dataset::build(&workload, Problem::ErrorClassification);
    let split = random_split(dataset.statements.len(), h.seed ^ 0x11);
    let gather = |idx: &[usize]| -> (Vec<String>, Vec<usize>) {
        (
            idx.iter().map(|&i| dataset.statements[i].clone()).collect(),
            idx.iter().map(|&i| dataset.class_labels[i]).collect(),
        )
    };
    let (train_x, train_y) = gather(&split.train);
    let (valid_x, valid_y) = gather(&split.valid);
    let (test_x, _) = gather(&split.test);
    let test_x: Vec<String> = test_x.into_iter().take(256).collect();
    let data = TrainData {
        statements: &train_x,
        labels: Labels::Classes(&train_y),
        valid_statements: &valid_x,
        valid_labels: Labels::Classes(&valid_y),
    };
    // Fixed epoch count (no early stopping) so throughput is comparable.
    let cfg = TrainConfig {
        patience: 0,
        ..h.train_config()
    };
    eprintln!(
        "[bench_train] {} train / {} valid statements, {} epochs",
        train_x.len(),
        valid_x.len(),
        cfg.epochs
    );

    let mut models = Vec::new();
    for kind in [ModelKind::WCnn, ModelKind::CLstm] {
        eprintln!("[bench_train] model {}", kind.name());
        let (per_example, _) = train_mode("per_example", kind, &threads, &data, &cfg);
        let (batched, model) = train_mode("batched", kind, &threads, &data, &cfg);

        // Serving contract on the batched-path model: batched inference
        // must be byte-equal to per-statement inference at every
        // measured thread count.
        let solo: Vec<Vec<u32>> = test_x
            .iter()
            .map(|s| model.predict_proba(s).iter().map(|f| f.to_bits()).collect())
            .collect();
        let batch_predict_bit_identical = threads.iter().all(|&t| {
            sqlan_par::with_threads(t, || {
                model
                    .predict_proba_batch(&test_x)
                    .iter()
                    .map(|p| p.iter().map(|f| f.to_bits()).collect::<Vec<u32>>())
                    .collect::<Vec<_>>()
                    == solo
            })
        });

        // Ratio at the lowest measured thread count (the acceptance
        // number is the 1-thread ratio when 1 is measured).
        let at_lowest = |m: &ModeScaling| {
            m.runs
                .iter()
                .min_by_key(|(t, _, _)| *t)
                .map(|&(_, _, e)| e)
                .expect("at least one thread count")
        };
        let speedup = at_lowest(&batched) / at_lowest(&per_example);
        eprintln!(
            "    single-thread speedup batched/per-example: {speedup:.2}x; \
             deterministic: pe={} b={}; predict bit-identical: {}",
            per_example.deterministic, batched.deterministic, batch_predict_bit_identical
        );
        models.push(ModelBench {
            model: kind.name().to_string(),
            n_train: train_x.len(),
            epochs: cfg.epochs,
            per_example,
            batched,
            speedup_batched_at_1_thread: speedup,
            batch_predict_bit_identical,
        });
    }

    let report = BenchTrain {
        cores,
        threads_measured: threads,
        sdss_sessions: h.sdss_sessions,
        scale: h.scale,
        models,
    };
    // Persist before the contract asserts: a failing assert should
    // leave the run's evidence on disk, not discard it.
    let out = std::env::var("SQLAN_BENCH_OUT").unwrap_or_else(|_| "BENCH_train.json".into());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, &json).expect("write BENCH_train.json");
    for m in &report.models {
        assert!(
            m.per_example.deterministic && m.batched.deterministic,
            "{}: thread-count invariance violated — see BENCH_train.json",
            m.model
        );
        assert!(
            m.batch_predict_bit_identical,
            "{}: batched prediction diverged from per-statement — see BENCH_train.json",
            m.model
        );
        assert!(
            m.speedup_batched_at_1_thread >= 1.0,
            "{}: batched training slower than per-example ({}x)",
            m.model,
            m.speedup_batched_at_1_thread
        );
    }

    println!("{json}");
    eprintln!("[saved {out}]");
}
