//! Neural-training throughput benchmark: per-example vs batched.
//!
//! Trains the paper's neural models (`wcnn` + `clstm`, error
//! classification on the fixed-seed SDSS workload) through both training
//! paths — `SQLAN_NN_TRAIN=per_example` (one autograd tape per example,
//! the pre-batching baseline) and the default tensorized minibatch path
//! (length-bucketed tiles, one batched tape each) — at 1/2/4/8 worker
//! threads, and reports epoch throughput in examples/second.
//!
//! Besides speed, the run re-checks the correctness contracts on real
//! data and fails loudly if they break:
//!
//! * trained parameters byte-identical across all thread counts (the
//!   determinism contract, per mode);
//! * `predict_proba_batch` bit-identical to per-statement
//!   `predict_proba` on the test slice (the serving contract);
//! * batched throughput ≥ per-example throughput at every thread count;
//! * trained parameters byte-identical between the auto kernel tier and
//!   the forced scalar oracle (the in-binary scalar-vs-SIMD A/B, which
//!   also reports the tier speedup at the lowest thread count).
//!
//! Knobs: the usual `Harness` env vars plus `SQLAN_BENCH_THREADS`
//! (default `1,2,4,8`) and `SQLAN_BENCH_OUT` (default
//! `BENCH_train.json`). The checked-in `BENCH_train.json` is the pinned
//! run from the development container; the CI artifact tracks the
//! numbers per commit.

use std::time::Instant;

use serde::Serialize;
use sqlan_bench::{Harness, KernelAb, MachineInfo};
use sqlan_core::prelude::*;
use sqlan_core::Dataset;
use sqlan_simd::Tier;

#[derive(Debug, Serialize)]
struct ModeScaling {
    /// (threads, wall-clock seconds, examples/second) per thread count.
    runs: Vec<(usize, f64, f64)>,
    /// Trained parameters byte-identical across all thread counts.
    deterministic: bool,
}

#[derive(Debug, Serialize)]
struct ModelBench {
    model: String,
    n_train: usize,
    epochs: usize,
    per_example: ModeScaling,
    batched: ModeScaling,
    /// batched examples/s ÷ per-example examples/s at the lowest
    /// measured thread count (1 unless `SQLAN_BENCH_THREADS` omits it).
    speedup_batched_at_1_thread: f64,
    /// `predict_proba_batch` ≡ mapped `predict_proba`, bit for bit, on
    /// the test slice (batched-path model, every measured thread count).
    batch_predict_bit_identical: bool,
    /// Batched training re-run with the kernel tier forced to the scalar
    /// oracle, at the lowest measured thread count: (seconds,
    /// examples/second).
    batched_scalar_tier: (f64, f64),
    /// batched examples/s under the auto tier ÷ under the forced scalar
    /// oracle, lowest thread count. ≈ 1 on hardware without AVX2.
    speedup_simd_at_1_thread: f64,
    /// Trained parameters byte-identical between the scalar and auto
    /// kernel tiers (the matmul/activation bit-exactness contract,
    /// re-checked on a real training run). Must be true.
    tiers_bit_identical: bool,
}

#[derive(Debug, Serialize)]
struct BenchTrain {
    machine: MachineInfo,
    threads_measured: Vec<usize>,
    sdss_sessions: usize,
    scale: f64,
    models: Vec<ModelBench>,
    /// Isolated scalar-vs-AVX2 timings of the training hot kernels at
    /// training-realistic shapes. End-to-end training above mixes these
    /// with tokenization, scatter/gather, and small-shape calls, so the
    /// whole-run tier speedup is much smaller than the kernel-level gap.
    /// Absent without AVX2.
    train_kernels: Option<Vec<KernelAb>>,
}

/// Scalar-vs-AVX2 A/B of the matmul at LSTM/CNN training shapes
/// (m = tile rows, k = input width, n = gate/feature width) plus the
/// activation map.
fn train_kernel_ab() -> Option<Vec<KernelAb>> {
    use sqlan_simd::paths;
    if !sqlan_simd::cpu_features().avx2 {
        return None;
    }
    let mut rows = Vec::new();
    for (m, k, n) in [(8usize, 32usize, 128usize), (32, 24, 128), (64, 32, 256)] {
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 7) as f32 * 0.013).sin()).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 3) as f32 * 0.011).cos()).collect();
        let (a, b) = (&a, &b);
        rows.push(KernelAb::measure(
            &format!("matmul_acc_f32_{m}x{k}x{n}"),
            m * n,
            {
                let mut o = vec![0.0f32; m * n];
                move || paths::scalar::matmul_acc_f32(&mut o, a, b, m, k, n)
            },
            {
                let mut o = vec![0.0f32; m * n];
                move || paths::avx2::matmul_acc_f32(&mut o, a, b, m, k, n)
            },
        ));
    }
    let n = 4096usize;
    let src: Vec<f32> = (0..n).map(|i| (i as f32 * 0.01) - 20.0).collect();
    let src = &src;
    rows.push(KernelAb::measure(
        "tanh_map_4096",
        n,
        {
            let mut o = vec![0.0f32; n];
            move || paths::scalar::tanh_map(src, &mut o)
        },
        {
            let mut o = vec![0.0f32; n];
            move || paths::avx2::tanh_map(src, &mut o)
        },
    ));
    Some(rows)
}

fn train_mode(
    mode: &str,
    kind: ModelKind,
    threads: &[usize],
    data: &TrainData<'_>,
    cfg: &TrainConfig,
) -> (ModeScaling, TrainedModel) {
    std::env::set_var("SQLAN_NN_TRAIN", mode);
    let n_examples = data.statements.len() * cfg.epochs;
    let mut runs = Vec::new();
    let mut fingerprints: Vec<String> = Vec::new();
    let mut last = None;
    for &t in threads {
        let start = Instant::now();
        let model =
            sqlan_par::with_threads(t, || train_model(kind, Task::Classify(3), data, cfg, None));
        let secs = start.elapsed().as_secs_f64();
        let exps = n_examples as f64 / secs;
        eprintln!("    {mode:>11} {t} thread(s): {secs:.3}s ({exps:.0} examples/s)");
        runs.push((t, secs, exps));
        fingerprints.push(model.save_json().expect("neural models persist"));
        last = Some(model);
    }
    let scaling = ModeScaling {
        deterministic: fingerprints.windows(2).all(|w| w[0] == w[1]),
        runs,
    };
    (scaling, last.expect("at least one thread count"))
}

fn main() {
    let h = Harness::from_env();
    let threads: Vec<usize> = std::env::var("SQLAN_BENCH_THREADS")
        .unwrap_or_else(|_| "1,2,4,8".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let machine = sqlan_bench::machine_info();
    eprintln!(
        "[bench_train] cores={} simd={} threads={threads:?} sessions={} scale={}",
        machine.cores, machine.simd_tier, h.sdss_sessions, h.scale
    );

    eprintln!("[bench_train] building fixed-seed SDSS workload…");
    let workload = build_sdss(h.sdss_config());
    let dataset = Dataset::build(&workload, Problem::ErrorClassification);
    let split = random_split(dataset.statements.len(), h.seed ^ 0x11);
    let gather = |idx: &[usize]| -> (Vec<String>, Vec<usize>) {
        (
            idx.iter().map(|&i| dataset.statements[i].clone()).collect(),
            idx.iter().map(|&i| dataset.class_labels[i]).collect(),
        )
    };
    let (train_x, train_y) = gather(&split.train);
    let (valid_x, valid_y) = gather(&split.valid);
    let (test_x, _) = gather(&split.test);
    let test_x: Vec<String> = test_x.into_iter().take(256).collect();
    let data = TrainData {
        statements: &train_x,
        labels: Labels::Classes(&train_y),
        valid_statements: &valid_x,
        valid_labels: Labels::Classes(&valid_y),
    };
    // Fixed epoch count (no early stopping) so throughput is comparable.
    let cfg = TrainConfig {
        patience: 0,
        ..h.train_config()
    };
    eprintln!(
        "[bench_train] {} train / {} valid statements, {} epochs",
        train_x.len(),
        valid_x.len(),
        cfg.epochs
    );

    let mut models = Vec::new();
    for kind in [ModelKind::WCnn, ModelKind::CLstm] {
        eprintln!("[bench_train] model {}", kind.name());
        let (per_example, _) = train_mode("per_example", kind, &threads, &data, &cfg);
        let (batched, model) = train_mode("batched", kind, &threads, &data, &cfg);

        // SIMD A/B: batched training once more at the lowest measured
        // thread count with the kernel tier forced to the scalar oracle.
        // The trained parameters must match the auto-tier run bit for
        // bit (the adaptive training tile resolves once per process, so
        // only the kernel tier differs between the two runs).
        let lowest = *threads.iter().min().expect("at least one thread count");
        sqlan_simd::force(Some(Tier::Scalar));
        let (scalar_scaling, scalar_model) = train_mode("batched", kind, &[lowest], &data, &cfg);
        sqlan_simd::force(None);
        let &(_, scalar_secs, scalar_exps) = &scalar_scaling.runs[0];
        let tiers_bit_identical = scalar_model.save_json().expect("neural models persist")
            == model.save_json().expect("neural models persist");

        // Serving contract on the batched-path model: batched inference
        // must be byte-equal to per-statement inference at every
        // measured thread count.
        let solo: Vec<Vec<u32>> = test_x
            .iter()
            .map(|s| model.predict_proba(s).iter().map(|f| f.to_bits()).collect())
            .collect();
        let batch_predict_bit_identical = threads.iter().all(|&t| {
            sqlan_par::with_threads(t, || {
                model
                    .predict_proba_batch(&test_x)
                    .iter()
                    .map(|p| p.iter().map(|f| f.to_bits()).collect::<Vec<u32>>())
                    .collect::<Vec<_>>()
                    == solo
            })
        });

        // Ratio at the lowest measured thread count (the acceptance
        // number is the 1-thread ratio when 1 is measured).
        let at_lowest = |m: &ModeScaling| {
            m.runs
                .iter()
                .min_by_key(|(t, _, _)| *t)
                .map(|&(_, _, e)| e)
                .expect("at least one thread count")
        };
        let speedup = at_lowest(&batched) / at_lowest(&per_example);
        let speedup_simd = at_lowest(&batched) / scalar_exps.max(1e-9);
        eprintln!(
            "    single-thread speedup batched/per-example: {speedup:.2}x, \
             simd/scalar: {speedup_simd:.2}x; \
             deterministic: pe={} b={}; predict bit-identical: {}; \
             tiers bit-identical: {tiers_bit_identical}",
            per_example.deterministic, batched.deterministic, batch_predict_bit_identical
        );
        models.push(ModelBench {
            model: kind.name().to_string(),
            n_train: train_x.len(),
            epochs: cfg.epochs,
            per_example,
            batched,
            speedup_batched_at_1_thread: speedup,
            batch_predict_bit_identical,
            batched_scalar_tier: (scalar_secs, scalar_exps),
            speedup_simd_at_1_thread: speedup_simd,
            tiers_bit_identical,
        });
    }

    eprintln!("[bench_train] kernel A/B: isolated training kernels");
    let train_kernels = train_kernel_ab();
    if let Some(rows) = &train_kernels {
        for k in rows {
            eprintln!(
                "    {}: scalar {:.0}ns avx2 {:.0}ns ({:.2}x)",
                k.kernel, k.scalar_ns, k.avx2_ns, k.speedup
            );
        }
    } else {
        eprintln!("    (no AVX2 on this CPU — skipped)");
    }

    let report = BenchTrain {
        machine,
        threads_measured: threads,
        sdss_sessions: h.sdss_sessions,
        scale: h.scale,
        models,
        train_kernels,
    };
    // Persist before the contract asserts: a failing assert should
    // leave the run's evidence on disk, not discard it.
    let out = std::env::var("SQLAN_BENCH_OUT").unwrap_or_else(|_| "BENCH_train.json".into());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, &json).expect("write BENCH_train.json");
    for m in &report.models {
        assert!(
            m.per_example.deterministic && m.batched.deterministic,
            "{}: thread-count invariance violated — see BENCH_train.json",
            m.model
        );
        assert!(
            m.batch_predict_bit_identical,
            "{}: batched prediction diverged from per-statement — see BENCH_train.json",
            m.model
        );
        assert!(
            m.speedup_batched_at_1_thread >= 1.0,
            "{}: batched training slower than per-example ({}x)",
            m.model,
            m.speedup_batched_at_1_thread
        );
        assert!(
            m.tiers_bit_identical,
            "{}: scalar/simd kernel tiers trained different parameters — \
             bit-exactness contract violated",
            m.model
        );
    }

    println!("{json}");
    eprintln!("[saved {out}]");
}
