//! Row vs. columnar engine labeling throughput.
//!
//! Runs the shared 112-query equivalence corpus (the same one the
//! engine's differential and optimizer-equivalence suites use, via
//! `sqlan_engine::testkit`) through `Database::submit` — the exact
//! labeling entry point the workload builder calls — under both
//! `SQLAN_ENGINE` settings, verifies the produced labels are
//! byte-identical, and writes `BENCH_engine.json`.
//!
//! The run is also the in-binary scalar-vs-SIMD A/B: the columnar
//! engine (whose filter/arith hot loops dispatch through `sqlan-simd`)
//! is measured twice more with the kernel tier forced to the scalar
//! oracle and to the auto-detected tier, and the labels from both tiers
//! must be byte-identical (the bit-exactness contract on real queries).
//!
//! The run also A/Bs the template plan cache: the SDSS golden-slice
//! statements (the same fixed-seed workload the golden-label pin runs)
//! are labeled with `SQLAN_PLAN_CACHE` effectively on and off, labels
//! must be byte-identical, and the cache-on run must not be slower —
//! the pinned numbers show the real speedup and template hit rate.
//!
//! Knobs: `SQLAN_BENCH_REPEATS` (corpus passes per engine, default 20)
//! and `SQLAN_BENCH_OUT` (output path, default `BENCH_engine.json`).

use std::time::Instant;

use serde::Serialize;
use sqlan_bench::{KernelAb, MachineInfo};
use sqlan_engine::testkit::{equivalence_catalog, equivalence_corpus};
use sqlan_engine::{Database, Engine};
use sqlan_simd::Tier;
use sqlan_workload::{build_sdss, sdss_database, Scale, SdssConfig};

#[derive(Debug, Serialize)]
struct EngineStats {
    /// Total wall-clock seconds for all passes.
    seconds: f64,
    /// Labeled statements per second (corpus × repeats / seconds).
    stmts_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct BenchEngine {
    machine: MachineInfo,
    corpus_queries: usize,
    repeats: usize,
    row: EngineStats,
    columnar: EngineStats,
    /// row.seconds / columnar.seconds — ≥ 1 means columnar wins.
    speedup_columnar_over_row: f64,
    /// Columnar engine with the kernel tier forced to the scalar oracle.
    columnar_scalar_tier: EngineStats,
    /// columnar_scalar_tier.seconds / columnar.seconds under the
    /// auto-detected tier — ≥ 1 means the SIMD tier wins. 1.0 on
    /// hardware without AVX2 (both runs resolve to scalar).
    speedup_simd_over_scalar: f64,
    /// Whether both engines produced byte-identical labels (error class,
    /// answer size, cpu seconds) for every statement. Must be true.
    labels_identical: bool,
    /// Whether the columnar labels were byte-identical between the
    /// scalar and auto kernel tiers. Must be true.
    tiers_identical: bool,
    /// Isolated filter-kernel A/B at a column length where kernel time
    /// dominates (the corpus above runs 25–240-row tables, where parse
    /// and plan overhead swamps lane width). Absent without AVX2.
    filter_kernels: Option<Vec<KernelAb>>,
    /// Template plan cache A/B on the SDSS golden-slice statements.
    plan_cache: PlanCacheAb,
}

#[derive(Debug, Serialize)]
struct PlanCacheAb {
    /// Unique statements in the SDSS golden slice.
    statements: usize,
    cache_off: EngineStats,
    cache_on: EngineStats,
    /// cache_off.seconds / cache_on.seconds — ≥ 1 means caching wins.
    /// End-to-end labeling includes execution, which dominates this
    /// slice (Amdahl caps the whole-pipeline gain); `front_end` isolates
    /// the stage the cache actually removes.
    speedup_cache_on_over_off: f64,
    /// Fraction of cache probes answered by a resident template during
    /// the timed passes.
    template_hit_rate: f64,
    /// Whether both runs produced byte-identical labels. Must be true.
    labels_identical: bool,
    /// A/B of the statement → executable-plan front end alone.
    front_end: FrontEndAb,
}

#[derive(Debug, Serialize)]
struct FrontEndAb {
    /// lex + parse + optimize, per full slice pass (the miss path).
    fresh: EngineStats,
    /// fingerprint probe + template clone + literal rebind (the hit
    /// path's replacement for `fresh`).
    cached: EngineStats,
    /// fresh.seconds / cached.seconds — ≥ 1 means the cached front end
    /// wins.
    speedup_cached_over_fresh: f64,
}

/// Time the two front ends over the slice: what every statement pays
/// before execution with the cache off (lex → parse → optimize) vs on a
/// template hit (fingerprint probe → clone → rebind).
fn front_end_ab(db: &Database, statements: &[String], repeats: usize) -> FrontEndAb {
    use sqlan_engine::plan_cache::{rebind_plan, rebind_statement, CachedTemplate, PlanCache};
    use sqlan_sql::Statement;
    use std::sync::Arc;

    // Populate a standalone cache exactly as `submit`'s miss path would.
    let cache = PlanCache::new(1024);
    for s in statements {
        let fp = sqlan_sql::lex_fingerprint(s);
        if fp.report.unterminated_string || fp.report.unterminated_comment {
            continue;
        }
        if let Ok(script) = sqlan_sql::parse_tokens(&fp.toks, fp.report.clone(), &fp.params).result
        {
            let plans = script
                .statements
                .iter()
                .map(|st| match st {
                    Statement::Select(q) => Some(db.optimizer.plan(q, &db.catalog)),
                    _ => None,
                })
                .collect();
            let param_count = fp.literals.len();
            cache.insert(
                fp.fingerprint,
                Arc::new(CachedTemplate {
                    script,
                    plans,
                    param_count,
                }),
            );
        }
    }

    let repeats = repeats * 10; // front-end passes are cheap; fight timer noise
    let start = Instant::now();
    for _ in 0..repeats {
        for s in statements {
            let out = sqlan_sql::parse(s);
            if let Ok(script) = out.result {
                for st in &script.statements {
                    if let Statement::Select(q) = st {
                        std::hint::black_box(db.optimizer.plan(q, &db.catalog).top);
                    }
                }
            }
        }
    }
    let fresh_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    for _ in 0..repeats {
        for s in statements {
            let probe = sqlan_sql::fingerprint(s);
            let Some(tpl) = cache.get(probe.fingerprint) else {
                continue;
            };
            if tpl.param_count != probe.literals.len() {
                continue;
            }
            for (st, plan) in tpl.script.statements.iter().zip(&tpl.plans) {
                let mut st = st.clone();
                rebind_statement(&mut st, &probe.literals);
                std::hint::black_box(&st);
                if let Some(skeleton) = plan {
                    let mut plan = skeleton.clone();
                    rebind_plan(&mut plan, &probe.literals);
                    std::hint::black_box(plan.top);
                }
            }
        }
    }
    let cached_s = start.elapsed().as_secs_f64();

    let stats = |seconds: f64| EngineStats {
        seconds,
        stmts_per_sec: (statements.len() * repeats) as f64 / seconds.max(1e-9),
    };
    FrontEndAb {
        fresh: stats(fresh_s),
        cached: stats(cached_s),
        speedup_cached_over_fresh: fresh_s / cached_s.max(1e-9),
    }
}

/// Label the SDSS golden-slice statements with the template plan cache
/// on and off; labels must not move a bit.
fn plan_cache_ab(repeats: usize) -> PlanCacheAb {
    const CONFIG: SdssConfig = SdssConfig {
        n_sessions: 160,
        scale: Scale(0.05),
        seed: 0x5EED,
    };
    let statements: Vec<String> = build_sdss(CONFIG)
        .entries
        .iter()
        .map(|e| e.statement.clone())
        .collect();
    let db_off = sdss_database(CONFIG).with_plan_cache(0);
    let db_on = sdss_database(CONFIG).with_plan_cache(1024);

    eprintln!("[bench_engine] plan cache A/B: off");
    let (cache_off, off_labels) = measure(&db_off, &statements, repeats);
    eprintln!(
        "    {:.3}s ({:.0} stmts/s)",
        cache_off.seconds, cache_off.stmts_per_sec
    );
    eprintln!("[bench_engine] plan cache A/B: on");
    let (cache_on, on_labels) = measure(&db_on, &statements, repeats);
    let stats = db_on.plan_cache_stats().expect("cache is on");
    eprintln!(
        "    {:.3}s ({:.0} stmts/s, hit rate {:.1}%)",
        cache_on.seconds,
        cache_on.stmts_per_sec,
        stats.hit_rate() * 100.0
    );

    eprintln!("[bench_engine] plan cache A/B: front end (parse+plan vs probe+rebind)");
    let front_end = front_end_ab(&db_off, &statements, repeats);
    eprintln!(
        "    fresh {:.3}s vs cached {:.3}s ({:.2}x)",
        front_end.fresh.seconds, front_end.cached.seconds, front_end.speedup_cached_over_fresh
    );

    PlanCacheAb {
        statements: statements.len(),
        speedup_cache_on_over_off: cache_off.seconds / cache_on.seconds.max(1e-9),
        template_hit_rate: stats.hit_rate(),
        labels_identical: off_labels == on_labels,
        cache_off,
        cache_on,
        front_end,
    }
}

/// Direct scalar-vs-AVX2 timing of the columnar filter kernels on an
/// 8192-element column (the batch engine's typical chunk scale).
fn filter_kernel_ab() -> Option<Vec<KernelAb>> {
    use sqlan_simd::{paths, ArgF64, CmpOp};
    if !sqlan_simd::cpu_features().avx2 {
        return None;
    }
    let n = 8192usize;
    let xs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7919) % 100.0).collect();
    let ys: Vec<f64> = (0..n).map(|i| ((i + 13) as f64 * 1.3171) % 100.0).collect();
    let (xs, ys) = (&xs, &ys);
    // Each timed closure owns its output buffer (the two closures are
    // alive at once inside `measure`).
    let buf = || vec![false; n];
    Some(vec![
        KernelAb::measure(
            "cmp_f64_lt_col_col",
            n,
            {
                let mut o = buf();
                move || paths::scalar::cmp_f64(CmpOp::Lt, ArgF64::F(xs), ArgF64::F(ys), &mut o)
            },
            {
                let mut o = buf();
                move || paths::avx2::cmp_f64(CmpOp::Lt, ArgF64::F(xs), ArgF64::F(ys), &mut o)
            },
        ),
        KernelAb::measure(
            "between_f64_col_const",
            n,
            {
                let mut o = buf();
                move || {
                    paths::scalar::between_f64(
                        ArgF64::F(xs),
                        ArgF64::C(25.0),
                        ArgF64::C(75.0),
                        false,
                        &mut o,
                    )
                }
            },
            {
                let mut o = buf();
                move || {
                    paths::avx2::between_f64(
                        ArgF64::F(xs),
                        ArgF64::C(25.0),
                        ArgF64::C(75.0),
                        false,
                        &mut o,
                    )
                }
            },
        ),
    ])
}

/// Label the whole corpus once; returns the serialized labels.
fn label_corpus(db: &Database, corpus: &[String]) -> Vec<String> {
    corpus
        .iter()
        .map(|sql| format!("{:?}", db.submit(sql)))
        .collect()
}

fn measure(db: &Database, corpus: &[String], repeats: usize) -> (EngineStats, Vec<String>) {
    // Warmup pass (not timed) also yields the labels for the identity check.
    let labels = label_corpus(db, corpus);
    let start = Instant::now();
    for _ in 0..repeats {
        let out = label_corpus(db, corpus);
        assert_eq!(out.len(), corpus.len());
    }
    let seconds = start.elapsed().as_secs_f64();
    let stats = EngineStats {
        seconds,
        stmts_per_sec: (corpus.len() * repeats) as f64 / seconds.max(1e-9),
    };
    (stats, labels)
}

fn main() {
    let repeats: usize = std::env::var("SQLAN_BENCH_REPEATS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(20);
    let machine = sqlan_bench::machine_info();
    let corpus = equivalence_corpus();
    eprintln!(
        "[bench_engine] cores={} simd={} corpus={} repeats={repeats}",
        machine.cores,
        machine.simd_tier,
        corpus.len()
    );

    let row_db = Database::new(equivalence_catalog()).with_engine(Engine::Row);
    let col_db = Database::new(equivalence_catalog()).with_engine(Engine::Columnar);

    eprintln!("[bench_engine] engine 1/2: row");
    let (row, row_labels) = measure(&row_db, &corpus, repeats);
    eprintln!("    {:.3}s ({:.0} stmts/s)", row.seconds, row.stmts_per_sec);
    eprintln!("[bench_engine] engine 2/2: columnar");
    let (columnar, col_labels) = measure(&col_db, &corpus, repeats);
    eprintln!(
        "    {:.3}s ({:.0} stmts/s)",
        columnar.seconds, columnar.stmts_per_sec
    );

    // SIMD A/B on the columnar engine: forced scalar oracle vs the
    // auto-detected tier, same corpus, labels must not move a bit.
    eprintln!("[bench_engine] kernel A/B: columnar, scalar tier");
    sqlan_simd::force(Some(Tier::Scalar));
    let (columnar_scalar_tier, scalar_labels) = measure(&col_db, &corpus, repeats);
    sqlan_simd::force(None);
    eprintln!(
        "    {:.3}s ({:.0} stmts/s)",
        columnar_scalar_tier.seconds, columnar_scalar_tier.stmts_per_sec
    );

    eprintln!("[bench_engine] kernel A/B: isolated filter kernels (n=8192)");
    let filter_kernels = filter_kernel_ab();
    if let Some(rows) = &filter_kernels {
        for k in rows {
            eprintln!(
                "    {}: scalar {:.0}ns avx2 {:.0}ns ({:.2}x)",
                k.kernel, k.scalar_ns, k.avx2_ns, k.speedup
            );
        }
    } else {
        eprintln!("    (no AVX2 on this CPU — skipped)");
    }

    let plan_cache = plan_cache_ab(repeats);

    let labels_identical = row_labels == col_labels;
    let tiers_identical = scalar_labels == col_labels;
    let report = BenchEngine {
        machine,
        corpus_queries: corpus.len(),
        repeats,
        speedup_columnar_over_row: row.seconds / columnar.seconds.max(1e-9),
        speedup_simd_over_scalar: columnar_scalar_tier.seconds / columnar.seconds.max(1e-9),
        row,
        columnar,
        columnar_scalar_tier,
        labels_identical,
        tiers_identical,
        filter_kernels,
        plan_cache,
    };
    assert!(
        report.labels_identical,
        "row/columnar labels diverged — differential contract violated"
    );
    assert!(
        report.tiers_identical,
        "scalar/simd kernel tiers produced different labels — bit-exactness contract violated"
    );
    // Wall-clock on shared CI runners is noisy; gate with a margin so a
    // scheduler hiccup can't fail the build. The checked-in pinned run
    // shows the real gap (~2.6x on this corpus).
    assert!(
        report.speedup_columnar_over_row >= 0.9,
        "columnar labeling much slower than row ({:.2}x) — vectorization regressed",
        report.speedup_columnar_over_row
    );
    assert!(
        report.plan_cache.labels_identical,
        "plan cache changed labels — rebind-equivalence contract violated"
    );
    // Same CI noise margin as above; the pinned run shows the real gaps
    // (~3x on the front end, execution-bound end to end).
    assert!(
        report.plan_cache.speedup_cache_on_over_off >= 0.9,
        "plan cache slowed labeling down ({:.2}x)",
        report.plan_cache.speedup_cache_on_over_off
    );
    assert!(
        report.plan_cache.front_end.speedup_cached_over_fresh >= 1.5,
        "cached front end must beat parse+plan by 1.5x, got {:.2}x",
        report.plan_cache.front_end.speedup_cached_over_fresh
    );
    assert!(
        report.plan_cache.template_hit_rate >= 0.5,
        "SDSS slice should share templates heavily, hit rate {:.2}",
        report.plan_cache.template_hit_rate
    );

    let out = std::env::var("SQLAN_BENCH_OUT").unwrap_or_else(|_| "BENCH_engine.json".into());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, &json).expect("write BENCH_engine.json");
    println!("{json}");
    eprintln!("[saved {out}]");
}
