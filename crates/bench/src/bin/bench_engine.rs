//! Row vs. columnar engine labeling throughput.
//!
//! Runs the shared 112-query equivalence corpus (the same one the
//! engine's differential and optimizer-equivalence suites use, via
//! `sqlan_engine::testkit`) through `Database::submit` — the exact
//! labeling entry point the workload builder calls — under both
//! `SQLAN_ENGINE` settings, verifies the produced labels are
//! byte-identical, and writes `BENCH_engine.json`.
//!
//! Knobs: `SQLAN_BENCH_REPEATS` (corpus passes per engine, default 20)
//! and `SQLAN_BENCH_OUT` (output path, default `BENCH_engine.json`).

use std::time::Instant;

use serde::Serialize;
use sqlan_engine::testkit::{equivalence_catalog, equivalence_corpus};
use sqlan_engine::{Database, Engine};

#[derive(Debug, Serialize)]
struct EngineStats {
    /// Total wall-clock seconds for all passes.
    seconds: f64,
    /// Labeled statements per second (corpus × repeats / seconds).
    stmts_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct BenchEngine {
    /// CPUs visible to this process (single-threaded benchmark; recorded
    /// for context only).
    cores: usize,
    corpus_queries: usize,
    repeats: usize,
    row: EngineStats,
    columnar: EngineStats,
    /// row.seconds / columnar.seconds — ≥ 1 means columnar wins.
    speedup_columnar_over_row: f64,
    /// Whether both engines produced byte-identical labels (error class,
    /// answer size, cpu seconds) for every statement. Must be true.
    labels_identical: bool,
}

/// Label the whole corpus once; returns the serialized labels.
fn label_corpus(db: &Database, corpus: &[String]) -> Vec<String> {
    corpus
        .iter()
        .map(|sql| format!("{:?}", db.submit(sql)))
        .collect()
}

fn measure(db: &Database, corpus: &[String], repeats: usize) -> (EngineStats, Vec<String>) {
    // Warmup pass (not timed) also yields the labels for the identity check.
    let labels = label_corpus(db, corpus);
    let start = Instant::now();
    for _ in 0..repeats {
        let out = label_corpus(db, corpus);
        assert_eq!(out.len(), corpus.len());
    }
    let seconds = start.elapsed().as_secs_f64();
    let stats = EngineStats {
        seconds,
        stmts_per_sec: (corpus.len() * repeats) as f64 / seconds.max(1e-9),
    };
    (stats, labels)
}

fn main() {
    let repeats: usize = std::env::var("SQLAN_BENCH_REPEATS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(20);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let corpus = equivalence_corpus();
    eprintln!(
        "[bench_engine] cores={cores} corpus={} repeats={repeats}",
        corpus.len()
    );

    let row_db = Database::new(equivalence_catalog()).with_engine(Engine::Row);
    let col_db = Database::new(equivalence_catalog()).with_engine(Engine::Columnar);

    eprintln!("[bench_engine] engine 1/2: row");
    let (row, row_labels) = measure(&row_db, &corpus, repeats);
    eprintln!("    {:.3}s ({:.0} stmts/s)", row.seconds, row.stmts_per_sec);
    eprintln!("[bench_engine] engine 2/2: columnar");
    let (columnar, col_labels) = measure(&col_db, &corpus, repeats);
    eprintln!(
        "    {:.3}s ({:.0} stmts/s)",
        columnar.seconds, columnar.stmts_per_sec
    );

    let labels_identical = row_labels == col_labels;
    let report = BenchEngine {
        cores,
        corpus_queries: corpus.len(),
        repeats,
        speedup_columnar_over_row: row.seconds / columnar.seconds.max(1e-9),
        row,
        columnar,
        labels_identical,
    };
    assert!(
        report.labels_identical,
        "row/columnar labels diverged — differential contract violated"
    );
    // Wall-clock on shared CI runners is noisy; gate with a margin so a
    // scheduler hiccup can't fail the build. The checked-in pinned run
    // shows the real gap (~2.6x on this corpus).
    assert!(
        report.speedup_columnar_over_row >= 0.9,
        "columnar labeling much slower than row ({:.2}x) — vectorization regressed",
        report.speedup_columnar_over_row
    );

    let out = std::env::var("SQLAN_BENCH_OUT").unwrap_or_else(|_| "BENCH_engine.json".into());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, &json).expect("write BENCH_engine.json");
    println!("{json}");
    eprintln!("[saved {out}]");
}
