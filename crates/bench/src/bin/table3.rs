//! Table 3: answer size prediction qerror percentiles on SDSS
//! (Homogeneous Instance).

use sqlan_bench::{regression_models, save_json, Harness, TablePrinter};
use sqlan_core::prelude::*;
use sqlan_metrics::QErrorTable;

fn main() {
    let h = Harness::from_env();
    let cfg = h.train_config();
    eprintln!("[table3] building SDSS workload...");
    let workload = h.sdss_workload();
    let split = random_split(workload.len(), h.seed);

    let exp = run_experiment(
        &workload,
        Problem::AnswerSize,
        split,
        &regression_models(),
        &cfg,
        None,
    );

    // The paper reports 50/75/80/85/90/95 for Table 3; our shared
    // percentile grid includes 75/90/95 — print the overlap plus extremes.
    let wanted = [50.0, 75.0, 90.0, 95.0];
    let mut t = TablePrinter::new(&["Model", "50%", "75%", "90%", "95%"]);
    for r in &exp.runs {
        let q = &r.regression.as_ref().expect("regression eval").qerror;
        let mut cells = vec![r.kind.name().to_string()];
        for w in wanted {
            let v = q
                .rows
                .iter()
                .find(|(p, _)| *p == w)
                .map(|(_, v)| *v)
                .unwrap_or(f64::NAN);
            cells.push(QErrorTable::display_value(v, 5e4));
        }
        t.row(cells);
    }
    t.print("Table 3: answer size prediction qerror (SDSS, Homogeneous Instance)");

    let json: Vec<_> = exp
        .runs
        .iter()
        .map(|r| {
            serde_json::json!({
                "model": r.kind.name(),
                "qerror": r.regression.as_ref().unwrap().qerror.rows,
            })
        })
        .collect();
    save_json("table3", &json);
}
