//! Figure 20 (Appendix B.3): histogram of how many times each unique
//! query statement repeats in the per-session sample before dedup, plus
//! the headline share of statements appearing in more than one log.

use sqlan_bench::{save_json, Harness, TablePrinter};
use sqlan_workload::repetition_histogram;

fn main() {
    let h = Harness::from_env();
    eprintln!("[fig20] building SDSS workload...");
    let w = h.sdss_workload();

    let hist = repetition_histogram(&w.repetitions);
    let mut t = TablePrinter::new(&["Repetitions", "#unique statements"]);
    for (bucket, n) in &hist {
        t.row(vec![bucket.clone(), n.to_string()]);
    }
    t.print("Figure 20: repetition of query statements in the per-session sample");

    let repeated = w.repetitions.iter().filter(|&&r| r > 1).count();
    println!(
        "sampled log entries: {}; unique statements: {}; statements in >1 log entry: {:.1}%",
        w.sampled_logs,
        w.len(),
        repeated as f64 / w.len().max(1) as f64 * 100.0
    );

    save_json(
        "fig20",
        &serde_json::json!({
            "histogram": hist.iter().map(|(b, n)| (b.clone(), n)).collect::<Vec<_>>(),
            "sampled_logs": w.sampled_logs,
            "unique_statements": w.len(),
        }),
    );
}
