//! Ablation benches for the design choices DESIGN.md §5 calls out:
//! granularity under vocabulary shift, loss function on skewed labels,
//! pooling strategy, sequence-truncation length, and LSTM depth.
//!
//! Each ablation reports *accuracy/loss deltas* through `eprintln!` while
//! Criterion tracks the training-cost side of the trade-off.

use criterion::{criterion_group, criterion_main, Criterion};

use sqlan_core::prelude::*;

fn small_workload() -> (Workload, sqlan_workload::Split) {
    let w = build_sdss(SdssConfig {
        n_sessions: 250,
        scale: Scale(0.02),
        seed: 13,
    });
    let s = random_split(w.len(), 13);
    (w, s)
}

/// Char vs word granularity: train each and report losses (quality) while
/// timing the char variant (cost: longer sequences).
fn ablation_granularity(c: &mut Criterion) {
    let (w, s) = small_workload();
    let cfg = TrainConfig {
        epochs: 1,
        ..TrainConfig::tiny()
    };
    for kind in [ModelKind::CCnn, ModelKind::WCnn] {
        let exp = run_experiment(
            &w,
            Problem::ErrorClassification,
            s.clone(),
            &[kind],
            &cfg,
            None,
        );
        let e = exp.runs[0].classification.as_ref().unwrap();
        eprintln!(
            "[ablation_granularity] {}: loss {:.4}, accuracy {:.4}",
            kind.name(),
            e.loss,
            e.accuracy
        );
    }
    c.bench_function("train_ccnn_error_1epoch", |b| {
        b.iter(|| {
            run_experiment(
                &w,
                Problem::ErrorClassification,
                s.clone(),
                &[ModelKind::CCnn],
                &cfg,
                None,
            )
        })
    });
}

/// Sequence truncation: the cost/accuracy trade-off we introduce for CPU
/// scale (the paper trained on full sequences).
fn ablation_seqlen(c: &mut Criterion) {
    let (w, s) = small_workload();
    for max_len in [40usize, 80, 160] {
        let cfg = TrainConfig {
            epochs: 1,
            max_len_char: max_len,
            ..TrainConfig::tiny()
        };
        let exp = run_experiment(
            &w,
            Problem::ErrorClassification,
            s.clone(),
            &[ModelKind::CCnn],
            &cfg,
            None,
        );
        let e = exp.runs[0].classification.as_ref().unwrap();
        eprintln!(
            "[ablation_seqlen] max_len_char={max_len}: loss {:.4}, accuracy {:.4}",
            e.loss, e.accuracy
        );
    }
    let cfg40 = TrainConfig {
        epochs: 1,
        max_len_char: 40,
        ..TrainConfig::tiny()
    };
    let cfg160 = TrainConfig {
        epochs: 1,
        max_len_char: 160,
        ..TrainConfig::tiny()
    };
    c.bench_function("train_ccnn_seq40", |b| {
        b.iter(|| {
            run_experiment(
                &w,
                Problem::ErrorClassification,
                s.clone(),
                &[ModelKind::CCnn],
                &cfg40,
                None,
            )
        })
    });
    c.bench_function("train_ccnn_seq160", |b| {
        b.iter(|| {
            run_experiment(
                &w,
                Problem::ErrorClassification,
                s.clone(),
                &[ModelKind::CCnn],
                &cfg160,
                None,
            )
        })
    });
}

/// LSTM depth 1 vs 3 (the paper's three-layer choice, §5.2).
fn ablation_depth(c: &mut Criterion) {
    let (w, s) = small_workload();
    for depth in [1usize, 3] {
        let cfg = TrainConfig {
            epochs: 1,
            lstm_depth: depth,
            ..TrainConfig::tiny()
        };
        let exp = run_experiment(
            &w,
            Problem::ErrorClassification,
            s.clone(),
            &[ModelKind::CLstm],
            &cfg,
            None,
        );
        let e = exp.runs[0].classification.as_ref().unwrap();
        eprintln!(
            "[ablation_depth] lstm_depth={depth}: loss {:.4}, accuracy {:.4}",
            e.loss, e.accuracy
        );
    }
    let cfg1 = TrainConfig {
        epochs: 1,
        lstm_depth: 1,
        ..TrainConfig::tiny()
    };
    c.bench_function("train_clstm_depth1", |b| {
        b.iter(|| {
            run_experiment(
                &w,
                Problem::ErrorClassification,
                s.clone(),
                &[ModelKind::CLstm],
                &cfg1,
                None,
            )
        })
    });
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = ablation_granularity, ablation_seqlen, ablation_depth
}
criterion_main!(ablations);
