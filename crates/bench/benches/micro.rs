//! Criterion micro-benchmarks over the substrate layers: parsing,
//! property extraction, execution, featurization, and model inference.
//! (The table/figure reproductions are the `src/bin/*` binaries; these
//! benches track the performance of the building blocks.)

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sqlan_core::prelude::*;
use sqlan_features::{char_tokens, word_tokens, TfidfVectorizer};
use sqlan_sql::{extract_props, parse};
use sqlan_workload::{sdss_statement, SessionClass};

use rand::rngs::StdRng;
use rand::SeedableRng;

const SIMPLE: &str = "SELECT * FROM PhotoTag WHERE objId = 0x112d075f80360018";
const COMPLEX: &str =
    "SELECT dbo.fGetURLExpid(objid) FROM SpecPhoto WHERE modelmag_u-modelmag_g = \
    (SELECT min(s.modelmag_u-s.modelmag_g) FROM SpecPhoto AS s INNER JOIN PhotoObj AS p \
    ON s.objid=p.objid WHERE s.flags_g=0 OR p.psfmagerr_g<=0.2 AND p.psfmagerr_u<=0.2)";

fn bench_parser(c: &mut Criterion) {
    c.bench_function("parse_simple", |b| b.iter(|| parse(black_box(SIMPLE))));
    c.bench_function("parse_complex", |b| b.iter(|| parse(black_box(COMPLEX))));
    c.bench_function("extract_props_complex", |b| {
        b.iter(|| extract_props(black_box(COMPLEX)))
    });
}

fn bench_engine(c: &mut Criterion) {
    let cfg = SdssConfig {
        n_sessions: 1,
        scale: Scale(0.05),
        seed: 1,
    };
    let db = sdss_database(cfg);
    c.bench_function("execute_point_lookup", |b| {
        b.iter(|| db.submit(black_box("SELECT * FROM PhotoTag WHERE objid = 1234")))
    });
    c.bench_function("execute_aggregate", |b| {
        b.iter(|| {
            db.submit(black_box(
                "SELECT type, count(*) FROM PhotoObj GROUP BY type",
            ))
        })
    });
    c.bench_function("execute_hash_join", |b| {
        b.iter(|| {
            db.submit(black_box(
                "SELECT s.z FROM SpecObj s INNER JOIN PhotoObj p ON s.bestobjid = p.objid",
            ))
        })
    });
}

fn bench_features(c: &mut Criterion) {
    c.bench_function("char_tokens_complex", |b| {
        b.iter(|| char_tokens(black_box(COMPLEX)))
    });
    c.bench_function("word_tokens_complex", |b| {
        b.iter(|| word_tokens(black_box(COMPLEX)))
    });

    let mut rng = StdRng::seed_from_u64(1);
    let corpus: Vec<Vec<String>> = (0..200)
        .map(|_| word_tokens(&sdss_statement(SessionClass::Browser, &mut rng)))
        .collect();
    let vectorizer = TfidfVectorizer::fit(&corpus, 3, 5_000);
    let sample = word_tokens(COMPLEX);
    c.bench_function("tfidf_transform", |b| {
        b.iter(|| vectorizer.transform(black_box(&sample)))
    });
}

fn bench_inference(c: &mut Criterion) {
    // Train small models once, then benchmark single-statement inference —
    // the per-keystroke latency an interactive composition aid pays.
    let workload = build_sdss(SdssConfig {
        n_sessions: 200,
        scale: Scale(0.02),
        seed: 2,
    });
    let split = random_split(workload.len(), 1);
    let cfg = TrainConfig {
        epochs: 1,
        ..TrainConfig::tiny()
    };
    let exp = run_experiment(
        &workload,
        Problem::ErrorClassification,
        split,
        &[ModelKind::CTfidf, ModelKind::CCnn, ModelKind::CLstm],
        &cfg,
        None,
    );
    for run in &exp.runs {
        let name = format!("infer_{}", run.kind.name());
        let model = &run.model;
        c.bench_function(&name, |b| {
            b.iter(|| model.predict_proba(black_box(COMPLEX)))
        });
    }
}

fn bench_workload_gen(c: &mut Criterion) {
    c.bench_function("generate_statement_no_web_hit", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| sdss_statement(SessionClass::NoWebHit, &mut rng))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_parser, bench_engine, bench_features, bench_inference, bench_workload_gen
}
criterion_main!(benches);
