//! Ignored-by-default probe: rough scalar-vs-AVX2 kernel timing, for
//! hand-running on dev machines (`cargo test -p sqlan-simd --release
//! -- --ignored --nocapture perf_probe`). The real measured numbers
//! live in the bench crate's A/B mode; this just sanity-checks that the
//! AVX2 twins genuinely run wider code.

use std::time::Instant;

/// Hand-unrolled 4×32 AVX2 variant: named accumulator rows instead of
/// the generic `[[f32; TJ]; RB]`, to test whether the array-based body
/// leaves register allocation on the table.
///
/// # Safety
/// Caller must ensure AVX2 is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mm_named(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    const TJ: usize = 32;
    let mut i = 0;
    while i + 4 <= m {
        let ar0 = &a[i * k..(i + 1) * k];
        let ar1 = &a[(i + 1) * k..(i + 2) * k];
        let ar2 = &a[(i + 2) * k..(i + 3) * k];
        let ar3 = &a[(i + 3) * k..(i + 4) * k];
        let mut jt = 0;
        while jt + TJ <= n {
            let mut acc0 = [0.0f32; TJ];
            let mut acc1 = [0.0f32; TJ];
            let mut acc2 = [0.0f32; TJ];
            let mut acc3 = [0.0f32; TJ];
            acc0.copy_from_slice(&out[i * n + jt..i * n + jt + TJ]);
            acc1.copy_from_slice(&out[(i + 1) * n + jt..(i + 1) * n + jt + TJ]);
            acc2.copy_from_slice(&out[(i + 2) * n + jt..(i + 2) * n + jt + TJ]);
            acc3.copy_from_slice(&out[(i + 3) * n + jt..(i + 3) * n + jt + TJ]);
            for p in 0..k {
                let bt = &b[p * n + jt..p * n + jt + TJ];
                let av0 = ar0[p];
                if av0.to_bits() & 0x7FFF_FFFF != 0 {
                    for (o, &bv) in acc0.iter_mut().zip(bt) {
                        *o += av0 * bv;
                    }
                }
                let av1 = ar1[p];
                if av1.to_bits() & 0x7FFF_FFFF != 0 {
                    for (o, &bv) in acc1.iter_mut().zip(bt) {
                        *o += av1 * bv;
                    }
                }
                let av2 = ar2[p];
                if av2.to_bits() & 0x7FFF_FFFF != 0 {
                    for (o, &bv) in acc2.iter_mut().zip(bt) {
                        *o += av2 * bv;
                    }
                }
                let av3 = ar3[p];
                if av3.to_bits() & 0x7FFF_FFFF != 0 {
                    for (o, &bv) in acc3.iter_mut().zip(bt) {
                        *o += av3 * bv;
                    }
                }
            }
            out[i * n + jt..i * n + jt + TJ].copy_from_slice(&acc0);
            out[(i + 1) * n + jt..(i + 1) * n + jt + TJ].copy_from_slice(&acc1);
            out[(i + 2) * n + jt..(i + 2) * n + jt + TJ].copy_from_slice(&acc2);
            out[(i + 3) * n + jt..(i + 3) * n + jt + TJ].copy_from_slice(&acc3);
            jt += TJ;
        }
        if jt < n {
            for (r, ar) in [ar0, ar1, ar2, ar3].into_iter().enumerate() {
                let out_row = &mut out[(i + r) * n + jt..(i + r + 1) * n];
                for (p, &av) in ar.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let bt = &b[p * n + jt..(p + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(bt) {
                        *o += av * bv;
                    }
                }
            }
        }
        i += 4;
    }
    for i in i..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

fn time(reps: usize, mut f: impl FnMut()) -> f64 {
    // Min over 7 batches: robust against the scheduling noise of a
    // shared container (means swing ±50% run to run).
    let mut best = f64::INFINITY;
    f();
    for _ in 0..7 {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() / reps as f64);
    }
    best
}

#[test]
#[ignore = "timing probe, run by hand with --nocapture"]
fn perf_probe() {
    if !sqlan_simd::cpu_features().avx2 {
        eprintln!("no AVX2 on this CPU, nothing to probe");
        return;
    }
    // Tile-shaped matmul: (64,256)·(256,256).
    let (m, k, n) = (64usize, 256usize, 256usize);
    let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.37).sin()).collect();
    let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.11).cos()).collect();
    let mut out = vec![0.0f32; m * n];
    let reps = 60;
    let ts = time(reps, || {
        out.iter_mut().for_each(|v| *v = 0.0);
        sqlan_simd::paths::scalar::matmul_acc_f32(&mut out, &a, &b, m, k, n);
    });
    let tv = time(reps, || {
        out.iter_mut().for_each(|v| *v = 0.0);
        sqlan_simd::paths::avx2::matmul_acc_f32(&mut out, &a, &b, m, k, n);
    });
    println!(
        "matmul {m}x{k}x{n}: scalar {:.3}ms avx2 {:.3}ms speedup {:.2}x",
        ts * 1e3,
        tv * 1e3,
        ts / tv
    );

    // Tile-shape sweep (tuning hooks).
    macro_rules! sweep {
        ($name:expr, $f:expr) => {{
            let t = time(reps, || {
                out.iter_mut().for_each(|v| *v = 0.0);
                $f(&mut out, &a, &b, m, k, n);
            });
            println!("  {}: {:.3}ms ({:.2}x vs scalar)", $name, t * 1e3, ts / t);
        }};
    }
    sweep!("scalar 4x16", sqlan_simd::tune::matmul_scalar::<4, 16>);
    sweep!("avx2   4x16", sqlan_simd::tune::matmul_avx2::<4, 16>);
    sweep!("avx2   4x32", sqlan_simd::tune::matmul_avx2::<4, 32>);
    sweep!("avx2   8x16", sqlan_simd::tune::matmul_avx2::<8, 16>);
    sweep!("avx2   6x16", sqlan_simd::tune::matmul_avx2::<6, 16>);
    sweep!("avx2   8x8 ", sqlan_simd::tune::matmul_avx2::<8, 8>);
    sweep!("avx2 named  ", |o: &mut [f32],
                            a: &[f32],
                            b: &[f32],
                            m,
                            k,
                            n| unsafe {
        mm_named(o, a, b, m, k, n)
    });

    // Training-shaped matmuls (hidden=32 → gates n=128; tile m=8).
    for (m, k, n) in [(8, 24, 128), (8, 32, 128), (32, 24, 128), (64, 32, 256)] {
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.11).cos()).collect();
        let mut out = vec![0.0f32; m * n];
        let r = 2000;
        let ts = time(r, || {
            sqlan_simd::paths::scalar::matmul_acc_f32(&mut out, &a, &b, m, k, n);
        });
        let tv = time(r, || {
            sqlan_simd::paths::avx2::matmul_acc_f32(&mut out, &a, &b, m, k, n);
        });
        println!(
            "matmul {m}x{k}x{n}: scalar {:.2}us avx2 {:.2}us speedup {:.2}x",
            ts * 1e6,
            tv * 1e6,
            ts / tv
        );
    }

    // Wide f64 compare — 8K rows, the L1/L2-resident columnar batch
    // shape (65K-element inputs are memory-bound and hide compute).
    let nn = 1 << 13;
    let x: Vec<f64> = (0..nn).map(|i| (i as f64 * 0.7).sin()).collect();
    let y: Vec<f64> = (0..nn).map(|i| (i as f64 * 0.3).cos()).collect();
    let mut sel = vec![false; nn];
    use sqlan_simd::{ArgF64, CmpOp};
    let ts = time(2000, || {
        sqlan_simd::paths::scalar::cmp_f64(CmpOp::Lt, ArgF64::F(&x), ArgF64::F(&y), &mut sel);
    });
    let tv = time(2000, || {
        sqlan_simd::paths::avx2::cmp_f64(CmpOp::Lt, ArgF64::F(&x), ArgF64::F(&y), &mut sel);
    });
    println!(
        "cmp_f64 n={nn}: scalar {:.3}us avx2 {:.3}us speedup {:.2}x",
        ts * 1e6,
        tv * 1e6,
        ts / tv
    );

    // BETWEEN on ints (the labeling filter shape).
    let xi: Vec<i64> = (0..nn as i64).collect();
    let ts = time(2000, || {
        sqlan_simd::paths::scalar::between_f64(
            ArgF64::I(&xi),
            ArgF64::C(100.0),
            ArgF64::C(40000.0),
            false,
            &mut sel,
        );
    });
    let tv = time(2000, || {
        sqlan_simd::paths::avx2::between_f64(
            ArgF64::I(&xi),
            ArgF64::C(100.0),
            ArgF64::C(40000.0),
            false,
            &mut sel,
        );
    });
    println!(
        "between_f64 n={nn}: scalar {:.3}us avx2 {:.3}us speedup {:.2}x",
        ts * 1e6,
        tv * 1e6,
        ts / tv
    );

    // BETWEEN on floats (no i64→f64 conversion in the loop).
    let ts = time(2000, || {
        sqlan_simd::paths::scalar::between_f64(
            ArgF64::F(&x),
            ArgF64::C(-0.5),
            ArgF64::C(0.5),
            false,
            &mut sel,
        );
    });
    let tv = time(2000, || {
        sqlan_simd::paths::avx2::between_f64(
            ArgF64::F(&x),
            ArgF64::C(-0.5),
            ArgF64::C(0.5),
            false,
            &mut sel,
        );
    });
    println!(
        "between_f64(float) n={nn}: scalar {:.3}us avx2 {:.3}us speedup {:.2}x",
        ts * 1e6,
        tv * 1e6,
        ts / tv
    );

    // Compare on int columns (conversion-bound shape).
    let yi: Vec<i64> = (0..nn as i64).rev().collect();
    let ts = time(2000, || {
        sqlan_simd::paths::scalar::cmp_f64(CmpOp::Lt, ArgF64::I(&xi), ArgF64::I(&yi), &mut sel);
    });
    let tv = time(2000, || {
        sqlan_simd::paths::avx2::cmp_f64(CmpOp::Lt, ArgF64::I(&xi), ArgF64::I(&yi), &mut sel);
    });
    println!(
        "cmp_f64(int) n={nn}: scalar {:.3}us avx2 {:.3}us speedup {:.2}x",
        ts * 1e6,
        tv * 1e6,
        ts / tv
    );

    // Activation map.
    let src: Vec<f32> = (0..nn).map(|i| (i as f32 * 0.01) - 300.0).collect();
    let mut dst = vec![0.0f32; nn];
    let ts = time(2000, || sqlan_simd::paths::scalar::tanh_map(&src, &mut dst));
    let tv = time(2000, || sqlan_simd::paths::avx2::tanh_map(&src, &mut dst));
    println!(
        "tanh_map n={nn}: scalar {:.3}us avx2 {:.3}us speedup {:.2}x",
        ts * 1e6,
        tv * 1e6,
        ts / tv
    );
}
