//! Differential suite: every AVX2 kernel against its scalar oracle, on
//! random inputs with special values (±0, NaN, ±inf, subnormals)
//! injected, odd lengths, empty slices, and register-tile-boundary
//! sizes. The crate's claim is *bit identity by construction* — same
//! Rust body, wider registers, no FMA, no reassociated reductions —
//! and these tests pin it with `to_bits` equality, never tolerance.
//!
//! The one carve-out is NaN *payloads*: Rust leaves the bit pattern of
//! a NaN produced by an arithmetic op unspecified, and LLVM really does
//! canonicalize commutative operands differently in the two compiled
//! copies (release-mode `0.0 * inf + NaN` picks up a different quiet
//! NaN sign bit per tier). So the comparison maps every NaN to one
//! canonical bit pattern first: a NaN result must be a NaN result on
//! both tiers, but its payload is not part of the contract. Every
//! non-NaN bit — including ±0 and subnormals — still compares exactly.
//!
//! On hardware without AVX2 every test passes vacuously (there is only
//! one tier to run).

use proptest::prelude::*;

use sqlan_simd::{paths, ArgF64, ArgI64, ArithOp, BitOp, CmpOp};

fn has_avx2() -> bool {
    sqlan_simd::cpu_features().avx2
}

/// Replace a slice's values with special floats where tagged. Tag space
/// is 0..16: 0–5 map to specials, the rest keep the drawn value, so
/// roughly a third of the lanes exercise the edge cases (including the
/// exact zeros the matmul skip-test branches on).
fn spice(vals: &[f32], tags: &[u8]) -> Vec<f32> {
    vals.iter()
        .zip(tags)
        .map(|(&v, &t)| match t {
            0 => 0.0,
            1 => -0.0,
            2 => f32::NAN,
            3 => f32::INFINITY,
            4 => f32::NEG_INFINITY,
            5 => 1.0e-41, // subnormal
            _ => v,
        })
        .collect()
}

fn spice64(vals: &[f64], tags: &[u8]) -> Vec<f64> {
    vals.iter()
        .zip(tags)
        .map(|(&v, &t)| match t {
            0 => 0.0,
            1 => -0.0,
            2 => f64::NAN,
            3 => f64::INFINITY,
            4 => f64::NEG_INFINITY,
            5 => 5.0e-324, // subnormal
            _ => v,
        })
        .collect()
}

/// Bit patterns with NaNs canonicalized (payloads are outside the
/// contract — see module docs); every non-NaN value compares exactly.
fn bits32(v: &[f32]) -> Vec<u32> {
    v.iter()
        .map(|f| if f.is_nan() { 0x7FC0_0000 } else { f.to_bits() })
        .collect()
}

fn bits64(v: &[f64]) -> Vec<u64> {
    v.iter()
        .map(|f| {
            if f.is_nan() {
                0x7FF8_0000_0000_0000
            } else {
                f.to_bits()
            }
        })
        .collect()
}

/// All f64 argument views over the same logical data: float column, int
/// column, and broadcast constant — the engine's 3×3 combinations come
/// from pairing these.
fn f64_args<'a>(which: u8, f: &'a [f64], i: &'a [i64], c: f64) -> ArgF64<'a> {
    match which % 3 {
        0 => ArgF64::F(f),
        1 => ArgF64::I(i),
        _ => ArgF64::C(c),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Matmul: scalar vs AVX2, bitwise, across shapes that straddle the
    /// 4-row block and both tiers' column tiles (16 and 32), with zeros
    /// and NaN/inf in `a` exercising the skip-test and propagation.
    #[test]
    fn matmul_acc_f32_tiers_are_bit_identical(
        m in 1usize..10,
        k in 0usize..20,
        n in 0usize..70,
        vals in prop::collection::vec(-100.0f32..100.0, 0..4000),
        tags in prop::collection::vec(0u8..16, 0..4000),
    ) {
        if !has_avx2() {
            return Ok(());
        }
        let need = m * k + k * n + m * n;
        if vals.len() < need || tags.len() < need {
            return Ok(());
        }
        let spiced = spice(&vals[..need], &tags[..need]);
        let a = &spiced[..m * k];
        let b = &spiced[m * k..m * k + k * n];
        let init = &spiced[m * k + k * n..];
        let mut out_s = init.to_vec();
        let mut out_v = init.to_vec();
        paths::scalar::matmul_acc_f32(&mut out_s, a, b, m, k, n);
        paths::avx2::matmul_acc_f32(&mut out_v, a, b, m, k, n);
        prop_assert_eq!(bits32(&out_s), bits32(&out_v), "m={} k={} n={}", m, k, n);
    }

    /// Activation maps: the rational evaluates identically lane by lane.
    #[test]
    fn activation_maps_tiers_are_bit_identical(
        vals in prop::collection::vec(-30.0f32..30.0, 0..130),
        tags in prop::collection::vec(0u8..16, 0..130),
    ) {
        if !has_avx2() {
            return Ok(());
        }
        let n = vals.len().min(tags.len());
        let src = spice(&vals[..n], &tags[..n]);
        let (mut ts, mut tv) = (vec![0.0f32; n], vec![0.0f32; n]);
        paths::scalar::tanh_map(&src, &mut ts);
        paths::avx2::tanh_map(&src, &mut tv);
        prop_assert_eq!(bits32(&ts), bits32(&tv));
        paths::scalar::sigmoid_map(&src, &mut ts);
        paths::avx2::sigmoid_map(&src, &mut tv);
        prop_assert_eq!(bits32(&ts), bits32(&tv));
    }

    /// Elementwise f32 kernels (accumulate, scale, axpy, mul, the LSTM
    /// gate update): one strided body each, bitwise across tiers.
    #[test]
    fn elementwise_f32_tiers_are_bit_identical(
        vals in prop::collection::vec(-100.0f32..100.0, 0..600),
        tags in prop::collection::vec(0u8..16, 0..600),
        alpha in -10.0f32..10.0,
    ) {
        if !has_avx2() {
            return Ok(());
        }
        let n = (vals.len().min(tags.len())) / 5;
        let spiced = spice(&vals[..5 * n], &tags[..5 * n]);
        let (a, rest) = spiced.split_at(n);
        let (b, rest) = rest.split_at(n);
        let (c, rest) = rest.split_at(n);
        let (d, init) = rest.split_at(n);

        let (mut s, mut v) = (init.to_vec(), init.to_vec());
        paths::scalar::add_assign_f32(&mut s, a);
        paths::avx2::add_assign_f32(&mut v, a);
        prop_assert_eq!(bits32(&s), bits32(&v));

        paths::scalar::scale_f32(&mut s, alpha);
        paths::avx2::scale_f32(&mut v, alpha);
        prop_assert_eq!(bits32(&s), bits32(&v));

        paths::scalar::axpy_f32(&mut s, alpha, b);
        paths::avx2::axpy_f32(&mut v, alpha, b);
        prop_assert_eq!(bits32(&s), bits32(&v));

        paths::scalar::mul_f32(&mut s, a, b);
        paths::avx2::mul_f32(&mut v, a, b);
        prop_assert_eq!(bits32(&s), bits32(&v));

        paths::scalar::mul2_add_f32(&mut s, a, b, c, d);
        paths::avx2::mul2_add_f32(&mut v, a, b, c, d);
        prop_assert_eq!(bits32(&s), bits32(&v));
    }

    /// TF-IDF weighting: gather + divide-multiply, bitwise across tiers.
    #[test]
    fn tfidf_weights_tiers_are_bit_identical(
        counts in prop::collection::vec(1.0f32..50.0, 0..80),
        idf in prop::collection::vec(0.0f32..10.0, 1..600),
        total in 1.0f32..500.0,
        id_seed in prop::collection::vec(0u32..1_000_000, 0..80),
    ) {
        if !has_avx2() {
            return Ok(());
        }
        let n = counts.len().min(id_seed.len());
        let ids: Vec<u32> = id_seed[..n].iter().map(|s| s % idf.len() as u32).collect();
        let (mut s, mut v) = (vec![0.0f32; n], vec![0.0f32; n]);
        paths::scalar::tfidf_weights(&ids, &counts[..n], &idf, total, &mut s);
        paths::avx2::tfidf_weights(&ids, &counts[..n], &idf, total, &mut v);
        prop_assert_eq!(bits32(&s), bits32(&v));
    }

    /// Engine comparison kernels: every operator over every pairing of
    /// float-column / int-column / constant views, with NaN and ±0 in
    /// the lanes. Also pins the NaN truth table (false everywhere,
    /// including `Neq`) against a `partial_cmp` reference.
    #[test]
    fn cmp_f64_tiers_and_truth_table(
        fvals in prop::collection::vec(-1000.0f64..1000.0, 1..130),
        tags in prop::collection::vec(0u8..16, 1..130),
        ivals in prop::collection::vec(-1000i64..1000, 1..130),
        wa in 0u8..3,
        wb in 0u8..3,
        ca in -5.0f64..5.0,
    ) {
        if !has_avx2() {
            return Ok(());
        }
        let n = fvals.len().min(tags.len()).min(ivals.len());
        let f = spice64(&fvals[..n], &tags[..n]);
        let f2: Vec<f64> = f.iter().rev().copied().collect();
        let i = &ivals[..n];
        let i2: Vec<i64> = ivals[..n].iter().rev().copied().collect();
        for op in [CmpOp::Eq, CmpOp::Neq, CmpOp::Lt, CmpOp::Lte, CmpOp::Gt, CmpOp::Gte] {
            let a = f64_args(wa, &f, i, ca);
            let b = f64_args(wb, &f2, &i2, -ca);
            let (mut s, mut v) = (vec![false; n], vec![false; n]);
            paths::scalar::cmp_f64(op, a, b, &mut s);
            paths::avx2::cmp_f64(op, a, b, &mut v);
            prop_assert_eq!(&s, &v, "op {:?}", op);
            // Truth-table reference: the row engine's matches!(partial_cmp).
            for (idx, &got) in s.iter().enumerate() {
                let (x, y) = (arg_at(a, idx), arg_at(b, idx));
                let want = match op {
                    CmpOp::Eq => x.partial_cmp(&y) == Some(std::cmp::Ordering::Equal),
                    CmpOp::Neq => matches!(
                        x.partial_cmp(&y),
                        Some(std::cmp::Ordering::Less | std::cmp::Ordering::Greater)
                    ),
                    CmpOp::Lt => x.partial_cmp(&y) == Some(std::cmp::Ordering::Less),
                    CmpOp::Lte => matches!(
                        x.partial_cmp(&y),
                        Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
                    ),
                    CmpOp::Gt => x.partial_cmp(&y) == Some(std::cmp::Ordering::Greater),
                    CmpOp::Gte => matches!(
                        x.partial_cmp(&y),
                        Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
                    ),
                };
                prop_assert_eq!(got, want, "op {:?} lane {}", op, idx);
            }
        }
    }

    /// Engine arithmetic + BETWEEN + bit kernels across tiers.
    #[test]
    fn arith_between_bit_tiers_are_bit_identical(
        fvals in prop::collection::vec(-1000.0f64..1000.0, 1..130),
        tags in prop::collection::vec(0u8..16, 1..130),
        ivals in prop::collection::vec(-1000i64..1000, 1..130),
        wa in 0u8..3,
        wb in 0u8..3,
        wc in 0u8..3,
        negated in any::<bool>(),
        ca in -5.0f64..5.0,
    ) {
        if !has_avx2() {
            return Ok(());
        }
        let n = fvals.len().min(tags.len()).min(ivals.len());
        let f = spice64(&fvals[..n], &tags[..n]);
        let f2: Vec<f64> = f.iter().rev().copied().collect();
        let i = &ivals[..n];
        let i2: Vec<i64> = ivals[..n].iter().rev().copied().collect();
        let a = f64_args(wa, &f, i, ca);
        let b = f64_args(wb, &f2, &i2, -ca);
        for op in [ArithOp::Add, ArithOp::Sub, ArithOp::Mul] {
            let (mut s, mut v) = (vec![0.0f64; n], vec![0.0f64; n]);
            paths::scalar::arith_f64(op, a, b, &mut s);
            paths::avx2::arith_f64(op, a, b, &mut v);
            prop_assert_eq!(bits64(&s), bits64(&v), "op {:?}", op);
        }
        {
            let c = f64_args(wc, &f, &i2, ca + 3.0);
            let (mut s, mut v) = (vec![false; n], vec![false; n]);
            paths::scalar::between_f64(a, b, c, negated, &mut s);
            paths::avx2::between_f64(a, b, c, negated, &mut v);
            prop_assert_eq!(&s, &v, "negated {}", negated);
            // Reference semantics: (x >= lo) && (x <= hi), NaN false.
            for (idx, &got) in s.iter().enumerate() {
                let (x, lo, hi) = (arg_at(a, idx), arg_at(b, idx), arg_at(c, idx));
                let want = (x >= lo && x <= hi) != negated;
                prop_assert_eq!(got, want, "lane {}", idx);
            }
        }
        for op in [BitOp::And, BitOp::Or, BitOp::Xor] {
            let ia = if wa % 2 == 0 { ArgI64::I(i) } else { ArgI64::C(7) };
            let ib = if wb % 2 == 0 { ArgI64::I(&i2) } else { ArgI64::C(-3) };
            let (mut s, mut v) = (vec![0i64; n], vec![0i64; n]);
            paths::scalar::bit_i64(op, ia, ib, &mut s);
            paths::avx2::bit_i64(op, ia, ib, &mut v);
            prop_assert_eq!(&s, &v, "op {:?}", op);
        }
    }
}

/// Reference per-lane read of an [`ArgF64`] (what the engine's old
/// per-element views computed).
fn arg_at(a: ArgF64<'_>, i: usize) -> f64 {
    match a {
        ArgF64::F(v) => v[i],
        ArgF64::I(v) => v[i] as f64,
        ArgF64::C(c) => c,
    }
}

/// Tile-boundary shapes deserve exact coverage, not just random draws:
/// every combination around the 4-row block and 16/32-column tiles.
#[test]
fn matmul_tile_boundary_sweep() {
    if !has_avx2() {
        return;
    }
    for m in [1, 3, 4, 5, 8, 9] {
        for n in [1, 15, 16, 17, 31, 32, 33, 48] {
            for k in [0, 1, 7, 16] {
                let a: Vec<f32> = (0..m * k)
                    .map(|i| {
                        if i % 5 == 0 {
                            0.0
                        } else {
                            (i as f32 * 0.37).sin()
                        }
                    })
                    .collect();
                let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.11).cos()).collect();
                let mut s = vec![0.5f32; m * n];
                let mut v = vec![0.5f32; m * n];
                paths::scalar::matmul_acc_f32(&mut s, &a, &b, m, k, n);
                paths::avx2::matmul_acc_f32(&mut v, &a, &b, m, k, n);
                assert_eq!(bits32(&s), bits32(&v), "m={m} k={k} n={n}");
            }
        }
    }
}

/// Empty slices are legal inputs everywhere.
#[test]
fn empty_inputs_are_fine() {
    if !has_avx2() {
        return;
    }
    let mut out_f: Vec<f32> = Vec::new();
    paths::scalar::matmul_acc_f32(&mut out_f, &[], &[], 0, 0, 0);
    paths::avx2::matmul_acc_f32(&mut out_f, &[], &[], 0, 0, 0);
    paths::avx2::tanh_map(&[], &mut out_f);
    paths::avx2::add_assign_f32(&mut out_f, &[]);
    let mut sel: Vec<bool> = Vec::new();
    paths::avx2::cmp_f64(CmpOp::Lt, ArgF64::F(&[]), ArgF64::C(1.0), &mut sel);
    paths::avx2::between_f64(
        ArgF64::F(&[]),
        ArgF64::C(0.0),
        ArgF64::C(1.0),
        false,
        &mut sel,
    );
    let mut iout: Vec<i64> = Vec::new();
    paths::avx2::bit_i64(BitOp::And, ArgI64::I(&[]), ArgI64::C(1), &mut iout);
}
