//! `f64`/`i64` kernels: the columnar engine's typed fast paths.
//!
//! The engine's `apply_binary_batch` compares and combines numeric
//! columns through an `f64` lens (matching the row engine's
//! `Value::sql_cmp`). Its column views — int slice, float slice, or a
//! broadcast constant — map onto [`ArgF64`]/[`ArgI64`] here, and each of
//! the 3×3 view combinations expands to a monomorphic loop so LLVM can
//! vectorize every one.
//!
//! NaN semantics are load-bearing: the row engine evaluates comparisons
//! as `matches!(partial_cmp, ...)`, which is *false* whenever either
//! side is NaN. Direct `<`, `<=`, `>`, `>=`, `==` operators agree with
//! that — but `!=` does **not** (`NaN != NaN` is true while
//! `partial_cmp ∈ {Less, Greater}` is false), so [`CmpOp::Neq`] lowers
//! to `a < b || a > b`.
//!
//! Checked `i64` arithmetic (overflow widening to float) stays in the
//! engine as a scalar loop: per-element overflow branches don't
//! vectorize and the widening path is a value-type change, not a lane
//! operation.

/// Borrowed numeric argument viewed through `f64` — the kernel-side
/// mirror of the engine's numeric column views.
#[derive(Debug, Clone, Copy)]
pub enum ArgF64<'a> {
    /// Dense float column.
    F(&'a [f64]),
    /// Dense int column, widened per lane with `as f64`.
    I(&'a [i64]),
    /// Broadcast constant.
    C(f64),
}

/// Borrowed pure-integer argument.
#[derive(Debug, Clone, Copy)]
pub enum ArgI64<'a> {
    /// Dense int column.
    I(&'a [i64]),
    /// Broadcast constant.
    C(i64),
}

/// Comparison operators with the row engine's `partial_cmp` truth table
/// (NaN compares false everywhere, including `Neq`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Neq,
    Lt,
    Lte,
    Gt,
    Gte,
}

/// Float arithmetic operators (`+`, `-`, `*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
}

/// Integer bit operators (`&`, `|`, `^`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitOp {
    And,
    Or,
    Xor,
}

// Per-op lane loops. `$i` is the loop binder passed by the pair
// dispatcher so the `$ax`/`$bx` accessor expressions can reference it
// (macro hygiene: the binder and the accessors share the dispatcher's
// context).
macro_rules! cmp_lanes {
    ($op:expr, $out:expr, $i:ident, $ax:expr, $bx:expr) => {
        match $op {
            CmpOp::Eq => {
                for ($i, o) in $out.iter_mut().enumerate() {
                    *o = $ax == $bx;
                }
            }
            // NOT `!=`: NaN != NaN is true, but the row engine's
            // `partial_cmp ∈ {Less, Greater}` is false for NaN — so
            // clippy's `double_comparisons` suggestion would change the
            // truth table.
            CmpOp::Neq =>
            {
                #[allow(clippy::double_comparisons)]
                for ($i, o) in $out.iter_mut().enumerate() {
                    let (x, y) = ($ax, $bx);
                    *o = x < y || x > y;
                }
            }
            CmpOp::Lt => {
                for ($i, o) in $out.iter_mut().enumerate() {
                    *o = $ax < $bx;
                }
            }
            CmpOp::Lte => {
                for ($i, o) in $out.iter_mut().enumerate() {
                    *o = $ax <= $bx;
                }
            }
            CmpOp::Gt => {
                for ($i, o) in $out.iter_mut().enumerate() {
                    *o = $ax > $bx;
                }
            }
            CmpOp::Gte => {
                for ($i, o) in $out.iter_mut().enumerate() {
                    *o = $ax >= $bx;
                }
            }
        }
    };
}

macro_rules! arith_lanes {
    ($op:expr, $out:expr, $i:ident, $ax:expr, $bx:expr) => {
        match $op {
            ArithOp::Add => {
                for ($i, o) in $out.iter_mut().enumerate() {
                    *o = $ax + $bx;
                }
            }
            ArithOp::Sub => {
                for ($i, o) in $out.iter_mut().enumerate() {
                    *o = $ax - $bx;
                }
            }
            ArithOp::Mul => {
                for ($i, o) in $out.iter_mut().enumerate() {
                    *o = $ax * $bx;
                }
            }
        }
    };
}

// Second BETWEEN pass: AND the upper-bound test into the lower-bound
// result already in `$out`. `&` not `&&` — both sides are pure and the
// branchless form vectorizes.
macro_rules! and_lte_lanes {
    ($_op:expr, $out:expr, $i:ident, $ax:expr, $bx:expr) => {
        for ($i, o) in $out.iter_mut().enumerate() {
            *o &= $ax <= $bx;
        }
    };
}

macro_rules! bit_lanes {
    ($op:expr, $out:expr, $i:ident, $ax:expr, $bx:expr) => {
        match $op {
            BitOp::And => {
                for ($i, o) in $out.iter_mut().enumerate() {
                    *o = $ax & $bx;
                }
            }
            BitOp::Or => {
                for ($i, o) in $out.iter_mut().enumerate() {
                    *o = $ax | $bx;
                }
            }
            BitOp::Xor => {
                for ($i, o) in $out.iter_mut().enumerate() {
                    *o = $ax ^ $bx;
                }
            }
        }
    };
}

/// Monomorphize a lane macro over the 3×3 [`ArgF64`] variant pairs.
/// Slices are cut to `out.len()` up front so the loops are bounds-check
/// free (shorter inputs panic here, which is the length contract).
macro_rules! f64_pairs {
    ($lanes:ident, $op:expr, $out:expr, $a:expr, $b:expr) => {{
        let n = $out.len();
        match ($a, $b) {
            (ArgF64::F(x), ArgF64::F(y)) => {
                let (x, y) = (&x[..n], &y[..n]);
                $lanes!($op, $out, i, x[i], y[i])
            }
            (ArgF64::F(x), ArgF64::I(y)) => {
                let (x, y) = (&x[..n], &y[..n]);
                $lanes!($op, $out, i, x[i], y[i] as f64)
            }
            (ArgF64::F(x), ArgF64::C(yc)) => {
                let x = &x[..n];
                $lanes!($op, $out, i, x[i], yc)
            }
            (ArgF64::I(x), ArgF64::F(y)) => {
                let (x, y) = (&x[..n], &y[..n]);
                $lanes!($op, $out, i, x[i] as f64, y[i])
            }
            (ArgF64::I(x), ArgF64::I(y)) => {
                let (x, y) = (&x[..n], &y[..n]);
                $lanes!($op, $out, i, x[i] as f64, y[i] as f64)
            }
            (ArgF64::I(x), ArgF64::C(yc)) => {
                let x = &x[..n];
                $lanes!($op, $out, i, x[i] as f64, yc)
            }
            (ArgF64::C(xc), ArgF64::F(y)) => {
                let y = &y[..n];
                $lanes!($op, $out, i, xc, y[i])
            }
            (ArgF64::C(xc), ArgF64::I(y)) => {
                let y = &y[..n];
                $lanes!($op, $out, i, xc, y[i] as f64)
            }
            (ArgF64::C(xc), ArgF64::C(yc)) => {
                $lanes!($op, $out, _i, xc, yc)
            }
        }
    }};
}

/// Same dispatch over the 2×2 [`ArgI64`] pairs.
macro_rules! i64_pairs {
    ($lanes:ident, $op:expr, $out:expr, $a:expr, $b:expr) => {{
        let n = $out.len();
        match ($a, $b) {
            (ArgI64::I(x), ArgI64::I(y)) => {
                let (x, y) = (&x[..n], &y[..n]);
                $lanes!($op, $out, i, x[i], y[i])
            }
            (ArgI64::I(x), ArgI64::C(yc)) => {
                let x = &x[..n];
                $lanes!($op, $out, i, x[i], yc)
            }
            (ArgI64::C(xc), ArgI64::I(y)) => {
                let y = &y[..n];
                $lanes!($op, $out, i, xc, y[i])
            }
            (ArgI64::C(xc), ArgI64::C(yc)) => {
                $lanes!($op, $out, _i, xc, yc)
            }
        }
    }};
}

tier_kernels! {
    /// Lane-wise numeric comparison through `f64`, writing a selection
    /// vector. Truth table matches the row engine's
    /// `matches!(partial_cmp, ...)` exactly, including NaN (always
    /// false, even for `Neq`).
    pub fn cmp_f64(op: CmpOp, a: ArgF64<'_>, b: ArgF64<'_>, out: &mut [bool]) {
        f64_pairs!(cmp_lanes, op, out, a, b)
    }

    /// Lane-wise float arithmetic through `f64`.
    pub fn arith_f64(op: ArithOp, a: ArgF64<'_>, b: ArgF64<'_>, out: &mut [f64]) {
        f64_pairs!(arith_lanes, op, out, a, b)
    }

    /// `out[i] = ((x >= lo) && (x <= hi)) != negated`, the engine's
    /// BETWEEN fast path. Two passes (lower bound, then AND the upper
    /// bound in) so the 27 view combinations stay 2×9 monomorphic
    /// loops; pure lane math, so dropping the row engine's `&&`
    /// short-circuit cannot change any result.
    pub fn between_f64(
        x: ArgF64<'_>,
        lo: ArgF64<'_>,
        hi: ArgF64<'_>,
        negated: bool,
        out: &mut [bool],
    ) {
        f64_pairs!(cmp_lanes, CmpOp::Gte, out, x, lo);
        f64_pairs!(and_lte_lanes, (), out, x, hi);
        if negated {
            for o in out.iter_mut() {
                *o = !*o;
            }
        }
    }

    /// Lane-wise `i64` bit operators.
    pub fn bit_i64(op: BitOp, a: ArgI64<'_>, b: ArgI64<'_>, out: &mut [i64]) {
        i64_pairs!(bit_lanes, op, out, a, b)
    }
}
