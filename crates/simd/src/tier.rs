//! The per-tier kernel generator.
//!
//! [`tier_kernels!`] takes a list of kernel bodies and emits four copies
//! of each from the single source:
//!
//! * `kbody::*` — the `#[inline(always)]` shared bodies (crate-private);
//! * `scalar::*` — plain wrappers compiled at the crate's default
//!   baseline: the always-available **bit-exactness oracle**;
//! * `avx2::*` — `#[target_feature(enable = "avx2")]` wrappers
//!   (x86_64 only): the body inlines into the wrapper, so LLVM
//!   re-vectorizes the same loops with 256-bit registers. `unsafe`
//!   because calling one without AVX2 is undefined behaviour;
//! * `avx2_checked::*` — safe wrappers over `avx2::*` that panic when
//!   AVX2 is absent, for tests/benches that pin a code path;
//!
//! plus a top-level dispatching `pub fn` per kernel that routes through
//! [`crate::active`]. Identical source bodies and no FMA/reassociation
//! anywhere is what makes every copy bit-identical (see the crate docs).

macro_rules! tier_kernels {
    ($($(#[$doc:meta])* pub fn $name:ident($($arg:ident : $ty:ty),* $(,)?) $body:block)+) => {
        #[doc(hidden)]
        pub(crate) mod kbody {
            #[allow(unused_imports)]
            use super::*;
            $(
                #[inline(always)]
                pub fn $name($($arg: $ty),*) $body
            )+
        }

        /// Scalar-oracle copies: the same kernel bodies compiled at the
        /// crate's default baseline, regardless of the active tier.
        pub mod scalar {
            #[allow(unused_imports)]
            use super::*;
            $(
                $(#[$doc])*
                #[inline]
                pub fn $name($($arg: $ty),*) {
                    super::kbody::$name($($arg),*)
                }
            )+
        }

        #[cfg(target_arch = "x86_64")]
        pub(crate) mod avx2 {
            #[allow(unused_imports)]
            use super::*;
            $(
                /// # Safety
                /// The running CPU must support AVX2.
                #[target_feature(enable = "avx2")]
                pub unsafe fn $name($($arg: $ty),*) {
                    super::kbody::$name($($arg),*)
                }
            )+
        }

        /// AVX2 copies behind a runtime check (panics when AVX2 is
        /// absent) — for differential tests and benchmarks that pin a
        /// specific code path instead of going through dispatch.
        #[cfg(target_arch = "x86_64")]
        pub mod avx2_checked {
            #[allow(unused_imports)]
            use super::*;
            $(
                $(#[$doc])*
                pub fn $name($($arg: $ty),*) {
                    assert!(
                        $crate::cpu_features().avx2,
                        concat!(stringify!($name), ": AVX2 not available on this CPU")
                    );
                    // SAFETY: AVX2 support verified just above.
                    unsafe { super::avx2::$name($($arg),*) }
                }
            )+
        }

        $(
            $(#[$doc])*
            #[inline]
            pub fn $name($($arg: $ty),*) {
                #[cfg(target_arch = "x86_64")]
                if $crate::active() == $crate::Tier::Avx2 {
                    // SAFETY: `active()` reports Avx2 only when
                    // `is_x86_feature_detected!("avx2")` held.
                    return unsafe { avx2::$name($($arg),*) };
                }
                kbody::$name($($arg),*)
            }
        )+
    };
}
