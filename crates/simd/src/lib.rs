//! # sqlan-simd
//!
//! Runtime-dispatched SIMD kernel tier for the workspace's hot loops.
//!
//! Every kernel here exists twice from a single source body: once
//! compiled under the workspace's default `x86-64` baseline (the
//! **scalar oracle** — at most the SSE2 auto-vectorization every crate
//! already had) and once under `#[target_feature(enable = "avx2")]`
//! (8-wide `f32` / 4-wide `f64` codegen). Which copy runs is decided by
//! [`active`]: AVX2 is detected once at startup via
//! `is_x86_feature_detected!`, the `SQLAN_SIMD` environment variable
//! (`auto` | `avx2` | `scalar`) picks the policy, and [`force`] overrides
//! it programmatically (benchmark A/B mode, differential tests).
//!
//! ## The bit-identity contract
//!
//! Every kernel in this crate is **bit-identical across tiers, by
//! construction**: the AVX2 twin compiles the *same Rust body*, and the
//! bodies only contain operations whose lane-wise IEEE semantics are
//! exact (`+`, `-`, `*`, `/`, comparisons, min/max, integer ops). No
//! reduction is vectorized across its accumulation order, and FMA
//! contraction is never used — `is_x86_feature_detected!("fma")` is
//! reported for telemetry ([`CpuFeatures`]) but no kernel emits fused
//! ops, because fusing would change bits against the scalar oracle.
//! LLVM's auto-vectorizer is required to preserve IEEE semantics when
//! not told otherwise, so "same body, wider registers" is exactly the
//! same arithmetic. `tests/differential.rs` pins the property on random
//! inputs (odd lengths, empty slices, tile-boundary sizes) rather than
//! trusting the argument.
//!
//! One carve-out: **NaN payloads**. Rust leaves the bit pattern of a
//! NaN produced by arithmetic unspecified, and LLVM may canonicalize
//! the operands of a commutative op differently in the two compiled
//! copies — `0.0 * inf + NaN` can surface a different quiet-NaN sign
//! bit per tier in release builds. The contract is therefore: every
//! non-NaN result (including ±0 and subnormals) is bit-identical, and a
//! NaN result is a NaN result on both tiers, payload unspecified. NaNs
//! never flow through the trained-model or labeling pipelines (the
//! determinism batteries pin those byte-for-byte end to end), so the
//! carve-out is only observable to code that feeds NaNs in directly.
//!
//! Kernels that would need to reassociate to vectorize (dot products,
//! norms, running sums) are deliberately **not** in this crate: their
//! scalar accumulation order is a workspace contract (see
//! `ARCHITECTURE.md` § "SIMD tier").
//!
//! ## Dispatch
//!
//! [`active`] reads one relaxed atomic — callers may consult it per
//! call. Kernels whose bodies amortize many elements (matmul, column
//! compares) dispatch once per kernel call, not per element.

#![warn(missing_debug_implementations)]

use std::sync::atomic::{AtomicU8, Ordering};

#[macro_use]
mod tier;
mod f32k;
mod f64k;

#[doc(hidden)]
pub use f32k::tune;
pub use f32k::{
    add_assign_f32, axpy_f32, matmul_acc_f32, mul2_add_f32, mul_f32, scale_f32, sigmoid_f32,
    sigmoid_map, tanh_f32, tanh_map, tfidf_weights,
};
pub use f64k::{arith_f64, between_f64, bit_i64, cmp_f64, ArgF64, ArgI64, ArithOp, BitOp, CmpOp};

/// Raw per-tier entry points, for differential tests and benchmarks that
/// want a *specific* code path regardless of the active dispatch tier.
pub mod paths {
    /// The scalar-oracle copies (always compiled, default baseline).
    pub mod scalar {
        pub use crate::f32k::mm::scalar::*;
        pub use crate::f32k::scalar::*;
        pub use crate::f64k::scalar::*;
    }
    /// The AVX2 copies. Calling them is **safe but checked**: each
    /// wrapper panics unless AVX2 was detected on this CPU.
    #[cfg(target_arch = "x86_64")]
    pub mod avx2 {
        pub use crate::f32k::avx2_checked::*;
        pub use crate::f32k::mm::avx2_checked::*;
        pub use crate::f64k::avx2_checked::*;
    }
}

/// Which kernel copy a dispatch resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The always-compiled baseline bodies (the bit-exactness oracle).
    Scalar,
    /// The `#[target_feature(enable = "avx2")]` twins.
    Avx2,
}

impl Tier {
    /// Stable lowercase name (`"scalar"` / `"avx2"`), as accepted by
    /// `SQLAN_SIMD` and reported in bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Scalar => "scalar",
            Tier::Avx2 => "avx2",
        }
    }
}

/// CPU features relevant to the tier, detected once per process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuFeatures {
    pub avx2: bool,
    /// Detected for telemetry only — no kernel emits fused ops (fusing
    /// would break the bit-identity contract against the scalar oracle).
    pub fma: bool,
}

/// Detect the CPU once (never consults `SQLAN_SIMD` or [`force`]).
pub fn cpu_features() -> CpuFeatures {
    #[cfg(target_arch = "x86_64")]
    {
        CpuFeatures {
            avx2: std::arch::is_x86_feature_detected!("avx2"),
            fma: std::arch::is_x86_feature_detected!("fma"),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        CpuFeatures {
            avx2: false,
            fma: false,
        }
    }
}

// Encoding for the cached/forced tier byte.
const UNSET: u8 = 0;
const SCALAR: u8 = 1;
const AVX2: u8 = 2;

/// The environment-resolved tier, cached after first use.
static ENV_TIER: AtomicU8 = AtomicU8::new(UNSET);
/// A programmatic override; `UNSET` defers to the environment policy.
static FORCED: AtomicU8 = AtomicU8::new(UNSET);

fn resolve_env_tier() -> u8 {
    let detected = cpu_features().avx2;
    let policy = std::env::var("SQLAN_SIMD").unwrap_or_default();
    match policy.trim() {
        "scalar" => SCALAR,
        // An explicit `avx2` on hardware without it falls back to scalar
        // (with a note) instead of executing illegal instructions.
        "avx2" => {
            if detected {
                AVX2
            } else {
                eprintln!("[sqlan-simd] SQLAN_SIMD=avx2 but AVX2 not detected; using scalar");
                SCALAR
            }
        }
        _ => {
            if detected {
                AVX2
            } else {
                SCALAR
            }
        }
    }
}

/// The tier dispatched kernels run on right now.
///
/// Precedence: [`force`] override, then the `SQLAN_SIMD` policy
/// (detected once, cached). One relaxed atomic load on the fast path.
#[inline]
pub fn active() -> Tier {
    let forced = FORCED.load(Ordering::Relaxed);
    let byte = if forced != UNSET {
        forced
    } else {
        let cached = ENV_TIER.load(Ordering::Relaxed);
        if cached != UNSET {
            cached
        } else {
            let resolved = resolve_env_tier();
            ENV_TIER.store(resolved, Ordering::Relaxed);
            resolved
        }
    };
    if byte == AVX2 {
        Tier::Avx2
    } else {
        Tier::Scalar
    }
}

/// Programmatically override the dispatch tier for the whole process
/// (`None` returns control to the `SQLAN_SIMD` policy). Forcing
/// [`Tier::Avx2`] on hardware without AVX2 falls back to scalar.
///
/// Because every kernel is bit-identical across tiers, flipping this
/// concurrently with running kernels changes *performance only* — it is
/// how benchmarks run their in-binary scalar-vs-SIMD A/B.
pub fn force(tier: Option<Tier>) {
    let byte = match tier {
        None => UNSET,
        Some(Tier::Scalar) => SCALAR,
        Some(Tier::Avx2) => {
            if cpu_features().avx2 {
                AVX2
            } else {
                eprintln!("[sqlan-simd] force(Avx2) but AVX2 not detected; using scalar");
                SCALAR
            }
        }
    };
    FORCED.store(byte, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_names_are_stable() {
        assert_eq!(Tier::Scalar.name(), "scalar");
        assert_eq!(Tier::Avx2.name(), "avx2");
    }

    #[test]
    fn force_overrides_and_releases() {
        force(Some(Tier::Scalar));
        assert_eq!(active(), Tier::Scalar);
        force(None);
        // Back to the env policy: must be *a* valid tier, and avx2 only
        // if the hardware has it.
        let t = active();
        if t == Tier::Avx2 {
            assert!(cpu_features().avx2);
        }
    }

    #[test]
    fn forcing_avx2_without_hardware_is_safe() {
        // On AVX2 hardware this genuinely forces avx2; elsewhere it must
        // fall back to scalar instead of SIGILL-ing later.
        force(Some(Tier::Avx2));
        let t = active();
        if !cpu_features().avx2 {
            assert_eq!(t, Tier::Scalar);
        }
        force(None);
    }
}
