//! `f32` kernels: the nn and feature hot loops.
//!
//! The matmul body here is the workspace's one matmul kernel, moved
//! verbatim from `crates/nn/src/tensor.rs` so its numeric contract —
//! each output element accumulates its k-products in ascending `p`
//! order from its initial value, rows never mixing — is stated once and
//! compiled per tier. The `av == 0.0` skip is part of that contract
//! (padded LSTM rows are exact zeros, and skipping preserves NaN
//! propagation and `-0.0 + 0.0 == 0.0` exactly as the original loop
//! did), so both tiers keep it.
//!
//! The activation kernels are the clamped odd-rational `tanh`
//! approximation from `crates/nn/src/fastmath.rs` — same coefficients,
//! single [`tanh_core`] body — exposed per-element ([`tanh_f32`],
//! [`sigmoid_f32`]) and as slice maps that the tiered wrappers compile
//! 8-wide under AVX2.

/// Shared `tanh` core: clamp to the f32 saturation range, then the
/// minimax odd rational `x·P(x²)/Q(x²)`. Straight-line mul/add/divide —
/// no branches or libm calls — so it vectorizes in the slice maps.
#[inline(always)]
fn tanh_core(x: f32) -> f32 {
    // Beyond ±7.90531 f32 tanh is 1.0 to the last ulp; clamping first
    // keeps the rational in its fitted range and saturates smoothly.
    let x = x.clamp(-7.905_31, 7.905_31);
    let x2 = x * x;
    let p = x
        * (4.893_525e-3
            + x2 * (6.372_619e-4
                + x2 * (1.485_722_4e-5
                    + x2 * (5.122_297e-8
                        + x2 * (-8.604_672e-11 + x2 * (2.000_188e-13 + x2 * -2.760_768_4e-16))))));
    let q = 4.893_526e-3 + x2 * (2.268_434_6e-3 + x2 * (1.185_347_1e-4 + x2 * 1.198_258_4e-6));
    p / q
}

#[inline(always)]
fn sigmoid_core(x: f32) -> f32 {
    0.5 * tanh_core(0.5 * x) + 0.5
}

/// `tanh(x)` to ~1e-6 absolute error, exactly bounded in `[-1, 1]`.
/// Per-element entry; identical arithmetic on every tier by definition
/// (a single value has nothing to vectorize).
#[inline]
pub fn tanh_f32(x: f32) -> f32 {
    tanh_core(x)
}

/// Logistic sigmoid via the tanh identity `σ(x) = ½·(tanh(x/2) + 1)`;
/// bounded in `[0, 1]`.
#[inline]
pub fn sigmoid_f32(x: f32) -> f32 {
    sigmoid_core(x)
}

/// Matmul register tile per tier: `RB` output rows × `TJ` columns of
/// accumulators live across the whole k loop. The accumulators must not
/// spill the register file but must leave registers free for the `b`
/// tile and broadcasts, so the scalar (SSE2, 4-lane xmm) tier uses 4×16
/// — byte-for-byte the historical `Tensor::matmul_acc` tile — and the
/// AVX2 (8-lane ymm) tier uses 4×32: same 16-accumulator budget at
/// twice the lane width. (8×16 measures *slower*: 16 ymm accumulators
/// leave nothing for the `b` tile, which then reloads every iteration.)
/// Tile shape is the one per-tier parameter of the shared body: it
/// regroups which elements advance together, but every output element
/// still receives its k-products in ascending `p` order, so the tiers
/// stay bit-identical (pinned by the differential suite).
const MATMUL_RB_SCALAR: usize = 4;
const MATMUL_TJ_SCALAR: usize = 16;
const MATMUL_RB_AVX2: usize = 4;
const MATMUL_TJ_AVX2: usize = 32;

/// Shared matmul-accumulate body, `out += a · b` over row-major slices:
/// `a` is (m,k), `b` is (k,n), `out` is (m,n).
///
/// Contract (inherited by `Tensor::matmul`): each output element
/// accumulates its k-products in ascending `p` order starting from its
/// initial value, and rows never mix — row `i` of a batched product is
/// bitwise the row of the solo (1,k)·(k,n) product. The `av == 0.0`
/// skip is contractual (see module docs). Register tiling moves loads
/// and stores, never adds. No FMA on any tier.
#[inline(always)]
fn matmul_body<const RB: usize, const TJ: usize>(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k, "matmul_acc a shape");
    assert_eq!(b.len(), k * n, "matmul_acc b shape");
    assert_eq!(out.len(), m * n, "matmul_acc out shape");
    let mut i = 0;
    while i + RB <= m {
        let ars: [&[f32]; RB] = core::array::from_fn(|r| &a[(i + r) * k..(i + r + 1) * k]);
        let mut jt = 0;
        while jt + TJ <= n {
            let mut acc = [[0.0f32; TJ]; RB];
            for (r, accr) in acc.iter_mut().enumerate() {
                accr.copy_from_slice(&out[(i + r) * n + jt..(i + r) * n + jt + TJ]);
            }
            for p in 0..k {
                let bt = &b[p * n + jt..p * n + jt + TJ];
                let avs: [f32; RB] = core::array::from_fn(|r| ars[r][p]);
                for (accr, &av) in acc.iter_mut().zip(&avs) {
                    // `av != ±0.0` as an integer bits test: identical
                    // truth table to `av == 0.0` (NaN has mantissa bits
                    // set, so it is never skipped), but the test runs on
                    // the integer ports instead of stealing FP-ALU
                    // slots from the mul/add stream (`ucomiss` issues on
                    // the same port; measurably slower in the hot tile).
                    if av.to_bits() & 0x7FFF_FFFF == 0 {
                        continue;
                    }
                    for (o, &bv) in accr.iter_mut().zip(bt) {
                        *o += av * bv;
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                out[(i + r) * n + jt..(i + r) * n + jt + TJ].copy_from_slice(accr);
            }
            jt += TJ;
        }
        // Column tail of the row block.
        if jt < n {
            for (r, ar) in ars.into_iter().enumerate() {
                let out_row = &mut out[(i + r) * n + jt..(i + r + 1) * n];
                for (p, &av) in ar.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let bt = &b[p * n + jt..(p + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(bt) {
                        *o += av * bv;
                    }
                }
            }
        }
        i += RB;
    }
    // Remainder rows: plain single-row ikj.
    for i in i..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Tile-shape tuning hooks for the ignored perf probe (not part of the
/// kernel API; dispatch always uses the constants above).
#[doc(hidden)]
pub mod tune {
    /// Scalar-tier matmul with an explicit `RB`×`TJ` register tile.
    pub fn matmul_scalar<const RB: usize, const TJ: usize>(
        out: &mut [f32],
        a: &[f32],
        b: &[f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        super::matmul_body::<RB, TJ>(out, a, b, m, k, n)
    }

    /// AVX2-tier matmul with an explicit `RB`×`TJ` register tile;
    /// panics when AVX2 is absent.
    #[cfg(target_arch = "x86_64")]
    pub fn matmul_avx2<const RB: usize, const TJ: usize>(
        out: &mut [f32],
        a: &[f32],
        b: &[f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        #[target_feature(enable = "avx2")]
        unsafe fn go<const RB: usize, const TJ: usize>(
            out: &mut [f32],
            a: &[f32],
            b: &[f32],
            m: usize,
            k: usize,
            n: usize,
        ) {
            super::matmul_body::<RB, TJ>(out, a, b, m, k, n)
        }
        assert!(
            crate::cpu_features().avx2,
            "matmul_avx2: AVX2 not available on this CPU"
        );
        // SAFETY: AVX2 support verified just above.
        unsafe { go::<RB, TJ>(out, a, b, m, k, n) }
    }
}

/// Per-tier matmul copies, hand-laid-out (the one kernel whose tile
/// width differs by tier, so it can't share `tier_kernels!`'s
/// single-body expansion). Same module layout as the macro emits.
pub(crate) mod mm {
    /// Scalar-oracle matmul: byte-for-byte the historical
    /// `Tensor::matmul_acc` kernel (4×16 tile at the default baseline).
    pub mod scalar {
        /// Matrix-multiply-accumulate `out += a · b`; see
        /// [`crate::matmul_acc_f32`] for the contract.
        #[inline]
        pub fn matmul_acc_f32(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
            super::super::matmul_body::<
                { super::super::MATMUL_RB_SCALAR },
                { super::super::MATMUL_TJ_SCALAR },
            >(out, a, b, m, k, n)
        }
    }

    #[cfg(target_arch = "x86_64")]
    pub(crate) mod avx2 {
        /// # Safety
        /// The running CPU must support AVX2.
        #[target_feature(enable = "avx2")]
        pub unsafe fn matmul_acc_f32(
            out: &mut [f32],
            a: &[f32],
            b: &[f32],
            m: usize,
            k: usize,
            n: usize,
        ) {
            super::super::matmul_body::<
                { super::super::MATMUL_RB_AVX2 },
                { super::super::MATMUL_TJ_AVX2 },
            >(out, a, b, m, k, n)
        }
    }

    /// AVX2 matmul behind a runtime check (panics without AVX2).
    #[cfg(target_arch = "x86_64")]
    pub mod avx2_checked {
        /// Matrix-multiply-accumulate `out += a · b` on the AVX2 path;
        /// see [`crate::matmul_acc_f32`] for the contract.
        pub fn matmul_acc_f32(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
            assert!(
                crate::cpu_features().avx2,
                "matmul_acc_f32: AVX2 not available on this CPU"
            );
            // SAFETY: AVX2 support verified just above.
            unsafe { super::avx2::matmul_acc_f32(out, a, b, m, k, n) }
        }
    }
}

/// Matrix-multiply-accumulate `out += a · b` over row-major slices:
/// `a` is (m,k), `b` is (k,n), `out` is (m,n). Dispatches on
/// [`crate::active`].
///
/// Contract (inherited by `Tensor::matmul`): each output element
/// accumulates its k-products in ascending `p` order starting from its
/// initial value, and rows never mix — row `i` of a batched product is
/// bitwise the row of the solo (1,k)·(k,n) product, on every tier.
#[inline]
pub fn matmul_acc_f32(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    #[cfg(target_arch = "x86_64")]
    if crate::active() == crate::Tier::Avx2 {
        // SAFETY: `active()` reports Avx2 only when
        // `is_x86_feature_detected!("avx2")` held.
        return unsafe { mm::avx2::matmul_acc_f32(out, a, b, m, k, n) };
    }
    mm::scalar::matmul_acc_f32(out, a, b, m, k, n)
}

tier_kernels! {
    /// `dst[i] = tanh(src[i])` with the [`tanh_f32`] rational.
    pub fn tanh_map(src: &[f32], dst: &mut [f32]) {
        assert_eq!(src.len(), dst.len(), "tanh_map length mismatch");
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = tanh_core(s);
        }
    }

    /// `dst[i] = σ(src[i])` with the [`sigmoid_f32`] rational.
    pub fn sigmoid_map(src: &[f32], dst: &mut [f32]) {
        assert_eq!(src.len(), dst.len(), "sigmoid_map length mismatch");
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = sigmoid_core(s);
        }
    }

    /// Elementwise accumulate `dst[i] += src[i]`.
    pub fn add_assign_f32(dst: &mut [f32], src: &[f32]) {
        assert_eq!(dst.len(), src.len(), "add_assign length mismatch");
        for (d, &s) in dst.iter_mut().zip(src) {
            *d += s;
        }
    }

    /// Elementwise scale `dst[i] *= k`.
    pub fn scale_f32(dst: &mut [f32], k: f32) {
        for d in dst.iter_mut() {
            *d *= k;
        }
    }

    /// Scaled accumulate `dst[i] += alpha * x[i]` (mul then add — no FMA).
    pub fn axpy_f32(dst: &mut [f32], alpha: f32, x: &[f32]) {
        assert_eq!(dst.len(), x.len(), "axpy length mismatch");
        for (d, &v) in dst.iter_mut().zip(x) {
            *d += alpha * v;
        }
    }

    /// Elementwise product `dst[i] = a[i] * b[i]`.
    pub fn mul_f32(dst: &mut [f32], a: &[f32], b: &[f32]) {
        assert_eq!(dst.len(), a.len(), "mul length mismatch");
        assert_eq!(dst.len(), b.len(), "mul length mismatch");
        for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
            *d = x * y;
        }
    }

    /// Fused-gate update `dst[i] = a[i]*b[i] + c[i]*d[i]` — the LSTM cell
    /// state `c = u⊙c̃ + f⊙c_prev`, kept as mul, mul, add (no FMA).
    pub fn mul2_add_f32(dst: &mut [f32], a: &[f32], b: &[f32], c: &[f32], d: &[f32]) {
        assert_eq!(dst.len(), a.len(), "mul2_add length mismatch");
        assert_eq!(dst.len(), b.len(), "mul2_add length mismatch");
        assert_eq!(dst.len(), c.len(), "mul2_add length mismatch");
        assert_eq!(dst.len(), d.len(), "mul2_add length mismatch");
        for i in 0..dst.len() {
            dst[i] = a[i] * b[i] + c[i] * d[i];
        }
    }

    /// TF-IDF weighting `out[i] = (counts[i] / total) * idf[ids[i]]` —
    /// the dense tail of `TfidfVectorizer::transform` once the count map
    /// is flattened to id/count arrays. Two passes: a gather of `idf`
    /// (scalar either way) then the vectorizable divide-multiply.
    pub fn tfidf_weights(ids: &[u32], counts: &[f32], idf: &[f32], total: f32, out: &mut [f32]) {
        assert_eq!(ids.len(), out.len(), "tfidf_weights length mismatch");
        assert_eq!(counts.len(), out.len(), "tfidf_weights length mismatch");
        for (o, &id) in out.iter_mut().zip(ids) {
            *o = idf[id as usize];
        }
        // `*o * (c/total)`, not `(c/total) * *o`: IEEE multiply is
        // value-commutative, and the assign form satisfies clippy.
        for (o, &c) in out.iter_mut().zip(counts) {
            *o *= c / total;
        }
    }
}
