//! # sqlan-net
//!
//! The network tier under `sqlan-serve`: a **sans-io incremental
//! HTTP/1.1 request parser** with hard byte bounds, and a
//! **readiness-driven epoll event loop** built on raw Linux syscalls (no
//! external dependencies, per the workspace's offline compat policy).
//!
//! The split matters: the parser ([`HttpParser`]) owns no socket, so the
//! exact same state machine — and therefore the exact same hardening
//! rules (head bound enforced *during* buffering, byte-level head parse,
//! `Content-Length` hygiene, `Connection` list tokenization) — backs
//! both the legacy blocking thread-per-connection server and the epoll
//! loop. Fix a parse bug once, both front ends get it.
//!
//! The event loop ([`serve`]) keeps one thread for all I/O (non-blocking
//! accept, per-connection read/write buffering, idle-timeout sweep) and
//! hands parsed requests to a small handler pool, so tens of thousands
//! of idle keep-alive connections cost one fd plus a parser each — not a
//! thread each. See `README.md` for the readiness model and the
//! backpressure contract.

#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod parser;

#[cfg(target_os = "linux")]
pub mod sys;

#[cfg(target_os = "linux")]
pub mod event_loop;

pub use parser::{
    render_json_response, render_response, Answer, HttpError, HttpParser, Parse, Request,
    MAX_HEAD_BYTES,
};

#[cfg(target_os = "linux")]
pub use event_loop::{serve, EventLoopHandle, NetConfig, Service};

#[cfg(target_os = "linux")]
pub use sys::raise_nofile_limit;
