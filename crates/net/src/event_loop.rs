//! The readiness-driven HTTP front end: one epoll event-loop thread
//! owning every connection, plus a small pool of handler threads that
//! run the application callback ([`Service::call`]) so a slow handler
//! (e.g. one blocking on the scoring queue) never stalls I/O on the
//! other connections.
//!
//! ## Readiness model
//!
//! Level-triggered epoll. Each connection is interested in at most one
//! direction at a time:
//!
//! * **Reading** (`EPOLLIN`) while parsing a request. Bytes feed the
//!   sans-io [`HttpParser`], whose head bound is enforced *during*
//!   buffering — a slow-loris connection costs at most
//!   [`MAX_HEAD_BYTES`] plus one read chunk.
//! * **Nothing** while a request is in flight with a handler thread.
//!   Deregistering read interest is the edge-level backpressure: a
//!   client that pipelines requests faster than handlers answer them
//!   accumulates bytes in its own socket buffer, not in server memory.
//! * **Writing** (`EPOLLOUT`) while a response is partially flushed.
//!   Further reads stay off until the response drains.
//!
//! Completions travel back from handler threads through a mutexed queue
//! plus a wake pipe (a `UnixStream` pair registered in the epoll set),
//! so the loop never polls for handler results.
//!
//! An idle sweep walks connections on a coarse tick and closes those
//! idle past the configured timeout. In-flight connections are exempt
//! (the handler will answer); half-parsed ones are not, so a stalled
//! client mid-head is dropped rather than held forever.
//!
//! ## Fault injection
//!
//! Four `sqlan-fault` points sit on the syscall edges, all free when no
//! fault plane is installed (one relaxed atomic load):
//!
//! * `net.read.eagain` — a ready connection's read pass returns early,
//!   as if the kernel reported `EAGAIN` (level-triggered epoll retries).
//! * `net.write.short` — a response flush writes a single byte and
//!   defers the rest to `EPOLLOUT`, forcing the partial-write path.
//! * `net.write.reset` — a flush behaves as if the peer reset the
//!   connection mid-write.
//! * `net.accept.emfile` — an accept pass fails as if the process were
//!   out of file descriptors, exercising the listener backoff.
//!
//! Handler threads additionally wrap [`Service::call`] in
//! `catch_unwind`: a panicking handler answers 500 and the thread keeps
//! serving, so one poisoned request cannot shrink the pool.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use crate::parser::{render_json_response, Answer, HttpError, HttpParser, Parse, Request};
use crate::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

/// The application side of the event loop: turns one parsed request into
/// an [`Answer`]. Called on a handler thread, so it may block (the
/// scoring queue does).
pub trait Service: Send + Sync + 'static {
    fn call(&self, req: &Request) -> Answer;
    /// A connection produced unparseable bytes (already answered with
    /// the right status by the loop) — hook for error counters.
    fn on_parse_error(&self, _err: &HttpError) {}
}

/// Event-loop configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Handler threads running [`Service::call`] (bounds concurrent
    /// in-flight requests, like the threaded server's worker count).
    pub handler_threads: usize,
    /// Largest accepted `Content-Length`.
    pub max_body_bytes: usize,
    /// Idle connections are closed after this long without traffic.
    pub idle_timeout: Duration,
    /// Accept stops above this many open connections (new ones are
    /// closed immediately) — fd-exhaustion protection.
    pub max_connections: usize,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            handler_threads: 4,
            max_body_bytes: 1 << 20,
            idle_timeout: Duration::from_secs(5),
            max_connections: 120_000,
        }
    }
}

/// Reserved epoll tokens (connection slots use their slab index).
const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKE: u64 = u64::MAX - 1;

/// Read chunk size. Must stay ≤ [`crate::parser::MAX_HEAD_BYTES`] so the
/// parser's bounded-absorb contract holds.
const READ_CHUNK: usize = 8 * 1024;

/// One request handed to a handler thread.
struct Work {
    token: usize,
    generation: u64,
    request: Request,
}

/// One finished response traveling back to the loop.
struct Completion {
    token: usize,
    generation: u64,
    answer: Answer,
    keep_alive: bool,
}

/// State shared between the loop, the handler threads, and the handle.
struct Shared {
    completions: Mutex<Vec<Completion>>,
    /// Open connections (loop-maintained, read by `/metrics`-style
    /// observers and the bench).
    connections: AtomicU64,
    stop: AtomicBool,
}

#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    parser: HttpParser,
    /// Pending response bytes ([`out_pos`] already written).
    out: Vec<u8>,
    out_pos: usize,
    last_activity: Instant,
    /// Request dispatched, waiting on a handler thread.
    in_flight: bool,
    /// Close once `out` drains.
    closing: bool,
    /// Readiness interest currently registered with epoll.
    interest: u32,
    /// Slot-reuse guard: completions carry the generation they were
    /// dispatched under and are dropped on mismatch.
    generation: u64,
}

/// A running epoll server. Call [`EventLoopHandle::shutdown`] to stop;
/// dropping the handle does not.
#[derive(Debug)]
pub struct EventLoopHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    wake_tx: UnixStream,
    loop_thread: Option<std::thread::JoinHandle<()>>,
    handler_threads: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("connections", &self.connections.load(Ordering::Relaxed))
            .field("stop", &self.stop.load(Ordering::Relaxed))
            .finish()
    }
}

impl EventLoopHandle {
    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently open on the loop.
    pub fn connections(&self) -> u64 {
        self.shared.connections.load(Ordering::Relaxed)
    }

    /// Stop accepting, flush in-flight responses, close every
    /// connection, join the loop and handler threads.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::Release);
        let _ = (&self.wake_tx).write(&[1]);
        if let Some(t) = self.loop_thread.take() {
            let _ = t.join();
        }
        for t in self.handler_threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Start the event loop on an already-bound listener and return
/// immediately.
pub fn serve<S: Service>(
    listener: TcpListener,
    service: Arc<S>,
    cfg: NetConfig,
) -> io::Result<EventLoopHandle> {
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let (wake_tx, wake_rx) = UnixStream::pair()?;
    wake_tx.set_nonblocking(true)?;
    wake_rx.set_nonblocking(true)?;

    let shared = Arc::new(Shared {
        completions: Mutex::new(Vec::new()),
        connections: AtomicU64::new(0),
        stop: AtomicBool::new(false),
    });

    let (work_tx, work_rx) = mpsc::channel::<Work>();
    let work_rx = Arc::new(Mutex::new(work_rx));
    let mut handler_threads = Vec::with_capacity(cfg.handler_threads.max(1));
    for i in 0..cfg.handler_threads.max(1) {
        let work_rx = Arc::clone(&work_rx);
        let service = Arc::clone(&service);
        let shared = Arc::clone(&shared);
        let wake = wake_tx.try_clone()?;
        handler_threads.push(
            std::thread::Builder::new()
                .name(format!("sqlan-net-handler-{i}"))
                .spawn(move || loop {
                    let work = match work_rx.lock().expect("work queue").recv() {
                        Ok(w) => w,
                        Err(_) => return, // loop exited, channel closed
                    };
                    // Panic isolation: a handler that panics answers 500
                    // and the thread survives — otherwise one poisoned
                    // request would permanently shrink the handler pool.
                    let answer = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        service.call(&work.request)
                    }))
                    .unwrap_or_else(|_| {
                        Answer::json(500, "{\"error\":\"internal server error\"}".to_string())
                    });
                    shared
                        .completions
                        .lock()
                        .expect("completions")
                        .push(Completion {
                            token: work.token,
                            generation: work.generation,
                            answer,
                            keep_alive: work.request.keep_alive,
                        });
                    // A full wake pipe already has a pending wakeup.
                    let _ = (&wake).write(&[1]);
                })
                .expect("spawn net handler"),
        );
    }

    let loop_shared = Arc::clone(&shared);
    let loop_service = Arc::clone(&service);
    let loop_thread = std::thread::Builder::new()
        .name("sqlan-net-loop".to_string())
        .spawn(move || {
            let mut lp = EventLoop {
                epoll: Epoll::new().expect("epoll_create1"),
                listener,
                wake_rx,
                conns: Vec::new(),
                free: Vec::new(),
                next_generation: 1,
                work_tx,
                shared: loop_shared,
                cfg,
                accept_paused_until: None,
                on_parse_error: move |e: &HttpError| loop_service.on_parse_error(e),
            };
            lp.run();
        })
        .expect("spawn net loop");

    Ok(EventLoopHandle {
        addr,
        shared,
        wake_tx,
        loop_thread: Some(loop_thread),
        handler_threads,
    })
}

struct EventLoop<F: FnMut(&HttpError)> {
    epoll: Epoll,
    listener: TcpListener,
    wake_rx: UnixStream,
    /// Connection slab indexed by epoll token.
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_generation: u64,
    work_tx: mpsc::Sender<Work>,
    shared: Arc<Shared>,
    cfg: NetConfig,
    /// Backoff window after an accept error (e.g. EMFILE): the listener
    /// stays deregistered until this instant so level-triggered epoll
    /// cannot busy-spin the loop on a persistent error.
    accept_paused_until: Option<Instant>,
    on_parse_error: F,
}

impl<F: FnMut(&HttpError)> EventLoop<F> {
    fn run(&mut self) {
        self.epoll
            .add(self.listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)
            .expect("register listener");
        self.epoll
            .add(self.wake_rx.as_raw_fd(), EPOLLIN, TOKEN_WAKE)
            .expect("register wake pipe");

        let sweep_every = (self.cfg.idle_timeout / 4)
            .max(Duration::from_millis(10))
            .min(Duration::from_millis(500));
        let mut last_sweep = Instant::now();
        let mut events = vec![EpollEvent { events: 0, data: 0 }; 1024];
        let mut stop_deadline: Option<Instant> = None;

        loop {
            let timeout_ms = sweep_every.as_millis() as i32;
            let n = self.epoll.wait(&mut events, timeout_ms).unwrap_or_default();
            let now = Instant::now();
            for ev in &events[..n] {
                let (bits, token) = (ev.events, ev.data);
                match token {
                    TOKEN_LISTENER => self.accept_burst(now),
                    TOKEN_WAKE => self.drain_wake(),
                    t => self.conn_event(t as usize, bits, now),
                }
            }
            // Completions may land without a wake edge in the same
            // batch; draining unconditionally is cheap (one swap).
            self.drain_completions(now);

            if let Some(until) = self.accept_paused_until {
                if now >= until {
                    self.accept_paused_until = None;
                    let _ = self
                        .epoll
                        .add(self.listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER);
                }
            }

            if now.duration_since(last_sweep) >= sweep_every {
                last_sweep = now;
                self.sweep_idle(now);
            }

            if self.shared.stop.load(Ordering::Acquire) {
                // First pass: stop accepting, close everything not
                // waiting on a handler; then give in-flight requests a
                // grace period to flush before forcing the exit.
                if stop_deadline.is_none() {
                    stop_deadline = Some(now + Duration::from_secs(5));
                    let _ = self.epoll.del(self.listener.as_raw_fd());
                    self.accept_paused_until = None;
                    for token in 0..self.conns.len() {
                        let close = matches!(&self.conns[token], Some(c) if !c.in_flight);
                        if close {
                            self.close(token);
                        }
                    }
                }
                let live = self.conns.iter().flatten().count();
                if live == 0 || now >= stop_deadline.expect("set above") {
                    return;
                }
            }
        }
    }

    fn accept_burst(&mut self, now: Instant) {
        if self.accept_paused_until.is_some() {
            return;
        }
        if sqlan_fault::fires("net.accept.emfile") {
            // Injected fd exhaustion: take the same backoff path a real
            // EMFILE would, without consuming the pending connection.
            let _ = self.epoll.del(self.listener.as_raw_fd());
            self.accept_paused_until = Some(now + Duration::from_millis(50));
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let open = self.shared.connections.load(Ordering::Relaxed) as usize;
                    if open >= self.cfg.max_connections {
                        drop(stream); // shed at the edge
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    let token = self.free.pop().unwrap_or_else(|| {
                        self.conns.push(None);
                        self.conns.len() - 1
                    });
                    let generation = self.next_generation;
                    self.next_generation += 1;
                    let fd = stream.as_raw_fd();
                    let conn = Conn {
                        stream,
                        parser: HttpParser::new(self.cfg.max_body_bytes),
                        out: Vec::new(),
                        out_pos: 0,
                        last_activity: now,
                        in_flight: false,
                        closing: false,
                        interest: EPOLLIN | EPOLLRDHUP,
                        generation,
                    };
                    if self.epoll.add(fd, conn.interest, token as u64).is_err() {
                        self.free.push(token);
                        continue;
                    }
                    self.conns[token] = Some(conn);
                    self.shared.connections.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Persistent accept errors (EMFILE under fd
                    // exhaustion) must not busy-spin a level-triggered
                    // loop: deregister the listener and retry shortly.
                    let _ = self.epoll.del(self.listener.as_raw_fd());
                    self.accept_paused_until = Some(now + Duration::from_millis(50));
                    return;
                }
            }
        }
    }

    fn drain_wake(&mut self) {
        let mut sink = [0u8; 256];
        while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
    }

    fn drain_completions(&mut self, now: Instant) {
        let done: Vec<Completion> =
            std::mem::take(&mut *self.shared.completions.lock().expect("completions"));
        let stopping = self.shared.stop.load(Ordering::Acquire);
        for c in done {
            let Some(conn) = self.conns.get_mut(c.token).and_then(Option::as_mut) else {
                continue; // connection died while the handler ran
            };
            if conn.generation != c.generation || !conn.in_flight {
                continue; // slot was reused
            }
            conn.in_flight = false;
            conn.last_activity = now;
            let keep_alive = c.keep_alive && !stopping;
            conn.out = c.answer.render(keep_alive);
            conn.out_pos = 0;
            if !keep_alive {
                conn.closing = true;
            }
            self.flush(c.token, now);
        }
    }

    fn conn_event(&mut self, token: usize, bits: u32, now: Instant) {
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
            return;
        };
        if bits & (EPOLLERR | EPOLLHUP) != 0 {
            // Hard error / full close. In-flight connections stay until
            // their completion arrives (it will fail to write and close).
            if !conn.in_flight {
                self.close(token);
            }
            return;
        }
        if bits & EPOLLOUT != 0 && !conn.out.is_empty() {
            self.flush(token, now);
        }
        // Re-borrow: flush may have closed the slot.
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
            return;
        };
        if bits & (EPOLLIN | EPOLLRDHUP) != 0 && !conn.in_flight && conn.out.is_empty() {
            self.read_and_parse(token, now);
        }
    }

    /// Read until `WouldBlock` (or a request completes / fails), feeding
    /// the parser.
    fn read_and_parse(&mut self, token: usize, now: Instant) {
        if sqlan_fault::fires("net.read.eagain") {
            // Injected EAGAIN: pretend the kernel had nothing for us.
            // Level-triggered epoll re-reports readiness next tick.
            return;
        }
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
                return;
            };
            if conn.in_flight || conn.closing || !conn.out.is_empty() {
                return;
            }
            // A pipelined request may already be buffered in full.
            match conn.parser.poll() {
                Parse::Partial => {}
                outcome => {
                    self.handle_parse_outcome(token, outcome, now);
                    continue;
                }
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    self.close(token);
                    return;
                }
                Ok(n) => {
                    conn.last_activity = now;
                    let outcome = conn.parser.feed(&chunk[..n]);
                    self.handle_parse_outcome(token, outcome, now);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token);
                    return;
                }
            }
        }
    }

    fn handle_parse_outcome(&mut self, token: usize, outcome: Parse, now: Instant) {
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
            return;
        };
        match outcome {
            Parse::Partial => {}
            Parse::Request(request) => {
                // Backpressure: no reads while the handler works — the
                // socket buffer, not the server, absorbs a pushy client.
                let generation = conn.generation;
                conn.in_flight = true;
                self.set_interest(token, 0);
                if self
                    .work_tx
                    .send(Work {
                        token,
                        generation,
                        request,
                    })
                    .is_err()
                {
                    self.close(token); // handlers are gone (shutdown race)
                }
            }
            Parse::Error(e) => {
                (self.on_parse_error)(&e);
                // Same envelope bytes the threaded front end writes for
                // the same error (serde_json-compact), so the two modes
                // stay byte-identical on error paths too.
                let body = format!("{{\"error\":\"{}\"}}", e.describe());
                conn.out = render_json_response(e.status(), &body, false);
                conn.out_pos = 0;
                conn.closing = true;
                self.flush(token, now);
            }
        }
    }

    /// Write pending response bytes; register `EPOLLOUT` on a short
    /// write, close or resume reading when drained.
    fn flush(&mut self, token: usize, now: Instant) {
        loop {
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
                return;
            };
            if conn.out_pos == conn.out.len() {
                break;
            }
            if sqlan_fault::fires("net.write.reset") {
                // Injected mid-write reset: the peer is gone.
                self.close(token);
                return;
            }
            let cap = if sqlan_fault::fires("net.write.short") {
                // Injected short write: one byte, then wait for
                // `EPOLLOUT` like a genuinely full socket buffer.
                1
            } else {
                conn.out.len() - conn.out_pos
            };
            match conn
                .stream
                .write(&conn.out[conn.out_pos..conn.out_pos + cap])
            {
                Ok(0) => {
                    self.close(token);
                    return;
                }
                Ok(n) => {
                    conn.out_pos += n;
                    conn.last_activity = now;
                    if cap == 1 && conn.out_pos < conn.out.len() {
                        self.set_interest(token, EPOLLOUT);
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.set_interest(token, EPOLLOUT);
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token);
                    return;
                }
            }
        }
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
            return;
        };
        conn.out = Vec::new();
        conn.out_pos = 0;
        if conn.closing {
            self.drain_and_close(token);
            return;
        }
        self.set_interest(token, EPOLLIN | EPOLLRDHUP);
        // A pipelined next request may already be buffered; serve it
        // without waiting for another readiness edge.
        self.read_and_parse(token, now);
    }

    fn set_interest(&mut self, token: usize, interest: u32) {
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
            return;
        };
        if conn.interest != interest {
            conn.interest = interest;
            let fd = conn.stream.as_raw_fd();
            let _ = self.epoll.modify(fd, interest, token as u64);
        }
    }

    fn sweep_idle(&mut self, now: Instant) {
        let timeout = self.cfg.idle_timeout;
        for token in 0..self.conns.len() {
            let expired = match &self.conns[token] {
                Some(c) => !c.in_flight && now.duration_since(c.last_activity) > timeout,
                None => false,
            };
            if expired {
                self.close(token);
            }
        }
    }

    /// Lingering close for error responses: the client's unread bytes
    /// (e.g. the body after a rejected head) may still sit in our
    /// receive queue, and closing then makes the kernel RST — which can
    /// destroy the just-sent response before the client reads it. Drain
    /// what has already arrived (bounded) so the close sends a clean FIN.
    fn drain_and_close(&mut self, token: usize) {
        if let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) {
            let mut scrap = [0u8; READ_CHUNK];
            for _ in 0..64 {
                match conn.stream.read(&mut scrap) {
                    Ok(n) if n > 0 => continue,
                    _ => break, // EOF, WouldBlock, or error: queue is empty
                }
            }
        }
        self.close(token);
    }

    fn close(&mut self, token: usize) {
        if let Some(conn) = self.conns.get_mut(token).and_then(Option::take) {
            let _ = self.epoll.del(conn.stream.as_raw_fd());
            // Decrement before the fd closes: the close sends FIN, and a
            // client observing that EOF must not still read a stale count.
            self.shared.connections.fetch_sub(1, Ordering::Release);
            drop(conn); // closes the fd
            self.free.push(token);
        }
    }
}
