//! Sans-io incremental HTTP/1.1 request parser.
//!
//! The parser owns no socket: callers feed it whatever bytes they have
//! (`feed`), and it answers [`Parse::Partial`] (need more),
//! [`Parse::Request`] (one complete request), or [`Parse::Error`]
//! (terminal — answer with [`HttpError::status`] and close). The same
//! state machine therefore serves both the blocking thread-per-connection
//! path (fed from a `BufReader`) and the epoll event loop (fed from
//! non-blocking reads), so every parsing rule is enforced once.
//!
//! Hardening rules, enforced *during* buffering rather than between
//! reads:
//!
//! * The request head (request line + headers + terminator) must fit in
//!   [`MAX_HEAD_BYTES`]. The parser never retains more than that many
//!   unparsed head bytes, so a header dribbled forever without a
//!   terminating blank line costs a bounded buffer and gets
//!   [`HttpError::HeadTooLarge`] (→ 431) the moment the bound is hit —
//!   not after a `read_line` that never returns.
//! * The head is parsed as *bytes*. Only the request line itself must be
//!   UTF-8 (it becomes `method`/`path`); a junk byte anywhere in the
//!   head is a clean [`HttpError::Malformed`] (→ 400), never an I/O
//!   error that silently drops the connection.
//! * `Content-Length` must be pure ASCII digits (no `+`-signed values,
//!   no lists) and duplicate headers must agree — conflicting duplicates
//!   are the classic request-smuggling shape and get a 400.
//! * `Transfer-Encoding` is not supported and is rejected outright
//!   rather than ignored (ignoring it is the other half of the
//!   smuggling shape).
//! * `Connection` values are comma-tokenized, so `keep-alive, upgrade`
//!   keeps the connection alive just like a bare `keep-alive`.
//!
//! After an error the parser is *sticky*: every subsequent call returns
//! the same error, so callers cannot accidentally resynchronize into the
//! middle of a rejected byte stream.

/// Maximum request-head (request line + headers + blank line) bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open
    /// (HTTP/1.1 default, `Connection` header honored, comma lists
    /// tokenized).
    pub keep_alive: bool,
    /// Per-request deadline budget from the `x-sqlan-deadline-ms`
    /// header, in milliseconds from request arrival. Lenient: a missing
    /// or non-numeric value is `None` (no deadline), never a parse
    /// error — deadlines are an optimization hint, not a correctness
    /// input.
    pub deadline_ms: Option<u64>,
}

/// Why a byte stream could not be parsed into a request. Terminal: the
/// connection should be answered with [`HttpError::status`] and closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The request head exceeded [`MAX_HEAD_BYTES`] → 431.
    HeadTooLarge,
    /// `Content-Length` exceeded the configured body bound → 413.
    BodyTooLarge,
    /// Anything structurally wrong with the head → 400.
    Malformed(&'static str),
}

impl HttpError {
    /// The HTTP status code this error answers with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::HeadTooLarge => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::Malformed(_) => 400,
        }
    }

    /// Short human-readable description for the error body.
    pub fn describe(&self) -> String {
        match self {
            HttpError::HeadTooLarge => "request head too large".to_string(),
            HttpError::BodyTooLarge => "request body too large".to_string(),
            HttpError::Malformed(what) => format!("malformed request: {what}"),
        }
    }
}

/// The outcome of feeding bytes to the parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parse {
    /// Need more bytes.
    Partial,
    /// One complete request. Bytes beyond it (pipelined) stay buffered;
    /// call [`HttpParser::poll`] after responding.
    Request(Request),
    /// Terminal parse failure; sticky.
    Error(HttpError),
}

/// Fields extracted from a parsed head.
#[derive(Debug)]
struct Head {
    method: String,
    path: String,
    keep_alive: bool,
    content_length: usize,
    deadline_ms: Option<u64>,
}

#[derive(Debug)]
enum State {
    /// Accumulating head bytes in `buf` (bounded by [`MAX_HEAD_BYTES`]).
    Head,
    /// Head parsed; accumulating `need` body bytes into `body`.
    Body { head: Head, body: Vec<u8> },
    /// Sticky terminal error.
    Failed(HttpError),
}

/// Incremental request parser for one connection. Reusable across
/// keep-alive requests: after [`Parse::Request`], the parser returns to
/// the head state with any pipelined leftover bytes retained.
#[derive(Debug)]
pub struct HttpParser {
    max_body: usize,
    state: State,
    /// Unparsed head-stream bytes. In the head state its length never
    /// exceeds [`MAX_HEAD_BYTES`].
    buf: Vec<u8>,
    /// Scan cursor into `buf`: bytes before it are known not to contain
    /// the head terminator, so repeated 1-byte feeds stay O(n) total.
    scanned: usize,
}

impl HttpParser {
    /// A fresh parser; `max_body` bounds the accepted `Content-Length`.
    pub fn new(max_body: usize) -> HttpParser {
        HttpParser {
            max_body,
            state: State::Head,
            buf: Vec::new(),
            scanned: 0,
        }
    }

    /// True when the parser sits at a clean request boundary with nothing
    /// buffered — an EOF here is a normal connection close, an EOF
    /// anywhere else is mid-request.
    pub fn is_idle(&self) -> bool {
        matches!(self.state, State::Head) && self.buf.is_empty()
    }

    /// Bytes currently buffered (head remainder + partial body). The
    /// head-state component is bounded by [`MAX_HEAD_BYTES`]; the body
    /// component by `max_body` (already rejected if over).
    pub fn buffered(&self) -> usize {
        let body = match &self.state {
            State::Body { body, .. } => body.len(),
            _ => 0,
        };
        self.buf.len() + body
    }

    /// Try to advance using only already-buffered bytes (call after a
    /// response is written, to pick up a pipelined next request).
    pub fn poll(&mut self) -> Parse {
        self.feed(&[])
    }

    /// Feed bytes and advance the state machine. Returns after at most
    /// one completed request; excess bytes stay buffered for [`poll`].
    ///
    /// [`poll`]: HttpParser::poll
    pub fn feed(&mut self, mut input: &[u8]) -> Parse {
        loop {
            match &mut self.state {
                State::Failed(e) => return Parse::Error(e.clone()),
                State::Head => {
                    // Absorb input under the hard head bound: never let
                    // `buf` grow past MAX_HEAD_BYTES. If the bound fills
                    // without a terminator the request head is too large
                    // no matter what arrives later.
                    let room = MAX_HEAD_BYTES - self.buf.len();
                    let take = input.len().min(room);
                    self.buf.extend_from_slice(&input[..take]);
                    input = &input[take..];
                    // Tolerate blank line(s) before the request line
                    // (RFC 7230 §3.5).
                    self.trim_leading_crlf();
                    match find_head_end(&self.buf, &mut self.scanned) {
                        Some(end) => {
                            let head = match parse_head(&self.buf[..end], self.max_body) {
                                Ok(head) => head,
                                Err(e) => return self.fail(e),
                            };
                            // Bytes past the head belong to the body (or
                            // a pipelined next request).
                            self.buf.drain(..end);
                            self.scanned = 0;
                            let body = Vec::with_capacity(head.content_length.min(64 * 1024));
                            self.state = State::Body { head, body };
                        }
                        None => {
                            if self.buf.len() == MAX_HEAD_BYTES {
                                return self.fail(HttpError::HeadTooLarge);
                            }
                            debug_assert!(input.is_empty(), "room covered all input");
                            return Parse::Partial;
                        }
                    }
                }
                State::Body { head, body } => {
                    let need = head.content_length - body.len();
                    // Body bytes arrive first from the head-stream
                    // leftover, then straight from input.
                    let from_buf = need.min(self.buf.len());
                    body.extend_from_slice(&self.buf[..from_buf]);
                    self.buf.drain(..from_buf);
                    let need = need - from_buf;
                    let from_input = need.min(input.len());
                    body.extend_from_slice(&input[..from_input]);
                    input = &input[from_input..];
                    if body.len() < head.content_length {
                        debug_assert!(input.is_empty());
                        return Parse::Partial;
                    }
                    let State::Body { head, body } =
                        std::mem::replace(&mut self.state, State::Head)
                    else {
                        unreachable!("matched Body above")
                    };
                    // Pipelined bytes after the body re-enter the head
                    // stream; `input` is empty or small (callers feed
                    // chunks ≤ MAX_HEAD_BYTES and stop after a request),
                    // but absorb defensively under the same bound.
                    if !input.is_empty() {
                        if input.len() > MAX_HEAD_BYTES - self.buf.len() {
                            self.buf = Vec::new();
                            self.state = State::Failed(HttpError::HeadTooLarge);
                        } else {
                            self.buf.extend_from_slice(input);
                        }
                    }
                    return Parse::Request(Request {
                        method: head.method,
                        path: head.path,
                        body,
                        keep_alive: head.keep_alive,
                        deadline_ms: head.deadline_ms,
                    });
                }
            }
        }
    }

    fn trim_leading_crlf(&mut self) {
        let mut skip = 0;
        while skip < self.buf.len() {
            match self.buf[skip] {
                b'\r' if self.buf.get(skip + 1) == Some(&b'\n') => skip += 2,
                b'\n' => skip += 1,
                _ => break,
            }
        }
        if skip > 0 {
            self.buf.drain(..skip);
            self.scanned = self.scanned.saturating_sub(skip);
        }
    }

    fn fail(&mut self, e: HttpError) -> Parse {
        // Drop buffered bytes — the connection is dead, keep no memory.
        self.buf = Vec::new();
        self.state = State::Failed(e.clone());
        Parse::Error(e)
    }
}

/// Find the end of the head: the index one past the blank line
/// (`\r\n\r\n` or `\n\n`, with the lone-`\n` tolerance the previous
/// `read_line`-based parser had). `scanned` persists progress across
/// calls so repeated small feeds never rescan.
fn find_head_end(buf: &[u8], scanned: &mut usize) -> Option<usize> {
    // Back up enough to re-see a terminator straddling the last feed.
    let mut i = scanned.saturating_sub(3);
    while i < buf.len() {
        if buf[i] == b'\n' {
            match (buf.get(i + 1), buf.get(i + 2)) {
                (Some(b'\n'), _) => return Some(i + 2),
                (Some(b'\r'), Some(b'\n')) => return Some(i + 3),
                _ => {}
            }
        }
        i += 1;
    }
    *scanned = buf.len();
    None
}

/// Parse a complete head (everything before the terminating blank line,
/// terminator included) into its fields. Pure bytes in; the request line
/// alone must be UTF-8.
fn parse_head(head: &[u8], max_body: usize) -> Result<Head, HttpError> {
    let mut lines = head
        .split(|&b| b == b'\n')
        .map(|line| line.strip_suffix(b"\r").unwrap_or(line));

    let request_line = lines
        .next()
        .filter(|l| !l.is_empty())
        .ok_or(HttpError::Malformed("empty request line"))?;
    let request_line = std::str::from_utf8(request_line)
        .map_err(|_| HttpError::Malformed("request line is not valid UTF-8"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::Malformed("missing method"))?
        .to_string();
    let path = parts
        .next()
        .ok_or(HttpError::Malformed("missing path"))?
        .to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close.
    let mut keep_alive = !version.ends_with("1.0");

    let mut content_length: Option<usize> = None;
    let mut deadline_ms: Option<u64> = None;
    for line in lines {
        if line.is_empty() {
            break; // the head terminator's blank line
        }
        let colon = line
            .iter()
            .position(|&b| b == b':')
            .ok_or(HttpError::Malformed("header without colon"))?;
        let name = trim_ascii(&line[..colon]);
        let value = trim_ascii(&line[colon + 1..]);
        if eq_ignore_case(name, b"content-length") {
            let n = parse_content_length(value)?;
            match content_length {
                Some(prev) if prev != n => {
                    return Err(HttpError::Malformed("conflicting content-length headers"))
                }
                _ => content_length = Some(n),
            }
        } else if eq_ignore_case(name, b"connection") {
            // A list value: `Connection: keep-alive, upgrade` must honor
            // the keep-alive token, not fall through unmatched.
            for token in value.split(|&b| b == b',') {
                let token = trim_ascii(token);
                if eq_ignore_case(token, b"close") {
                    keep_alive = false;
                } else if eq_ignore_case(token, b"keep-alive") {
                    keep_alive = true;
                }
            }
        } else if eq_ignore_case(name, b"x-sqlan-deadline-ms") {
            // Deadline propagation hint. Digits-only like
            // content-length, but lenient: junk means "no deadline",
            // not a 400 — a broken client clock must not break the
            // request.
            if !value.is_empty() && value.iter().all(|b| b.is_ascii_digit()) {
                let mut n: u64 = 0;
                let mut ok = true;
                for &b in value {
                    match n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add((b - b'0') as u64))
                    {
                        Some(next) => n = next,
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    deadline_ms = Some(n);
                }
            }
        } else if eq_ignore_case(name, b"transfer-encoding") {
            // Not implemented; silently ignoring it while honoring
            // content-length is the request-smuggling shape, so reject.
            return Err(HttpError::Malformed("transfer-encoding not supported"));
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge);
    }
    Ok(Head {
        method,
        path,
        keep_alive,
        content_length,
        deadline_ms,
    })
}

/// `Content-Length` hygiene: pure ASCII digits only. `+5`, `5, 5`,
/// hex, or empty values are malformed, and overflow is rejected rather
/// than wrapped.
fn parse_content_length(value: &[u8]) -> Result<usize, HttpError> {
    if value.is_empty() || !value.iter().all(|b| b.is_ascii_digit()) {
        return Err(HttpError::Malformed("bad content-length"));
    }
    let mut n: usize = 0;
    for &b in value {
        n = n
            .checked_mul(10)
            .and_then(|n| n.checked_add((b - b'0') as usize))
            .ok_or(HttpError::Malformed("bad content-length"))?;
    }
    Ok(n)
}

fn trim_ascii(mut bytes: &[u8]) -> &[u8] {
    while let [first, rest @ ..] = bytes {
        if first.is_ascii_whitespace() {
            bytes = rest;
        } else {
            break;
        }
    }
    while let [rest @ .., last] = bytes {
        if last.is_ascii_whitespace() {
            bytes = rest;
        } else {
            break;
        }
    }
    bytes
}

fn eq_ignore_case(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.eq_ignore_ascii_case(y))
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// One application-layer answer: status, content type, and body. Both
/// front ends render it with [`Answer::render`], which is what keeps
/// their wire bytes identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Answer {
    pub status: u16,
    /// `content-type` header value; static because routes pick from a
    /// fixed set (JSON, Prometheus text).
    pub content_type: &'static str,
    pub body: String,
}

impl Answer {
    /// The JSON answer every pre-existing route returns.
    pub fn json(status: u16, body: String) -> Answer {
        Answer {
            status,
            content_type: "application/json",
            body,
        }
    }

    /// A plain-text answer under an explicit content type.
    pub fn text(status: u16, content_type: &'static str, body: String) -> Answer {
        Answer {
            status,
            content_type,
            body,
        }
    }

    /// Render to wire bytes.
    pub fn render(&self, keep_alive: bool) -> Vec<u8> {
        render_response(self.status, self.content_type, &self.body, keep_alive)
    }
}

/// Render a response to bytes — head and body in one buffer so a single
/// write can never straddle a Nagle + delayed-ACK stall. Both the
/// threaded and the epoll front ends emit exactly these bytes, which is
/// what makes the cross-mode byte-identity pin possible.
pub fn render_response(status: u16, content_type: &str, body: &str, keep_alive: bool) -> Vec<u8> {
    let mut response = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        status_text(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    response.push_str(body);
    response.into_bytes()
}

/// [`render_response`] with the `application/json` content type every
/// JSON route shares.
pub fn render_json_response(status: u16, body: &str, keep_alive: bool) -> Vec<u8> {
    render_response(status, "application/json", body, keep_alive)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(raw: &[u8], max_body: usize) -> Parse {
        HttpParser::new(max_body).feed(raw)
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /predict HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd";
        let Parse::Request(r) = parse_all(raw, 1 << 20) else {
            panic!("expected request");
        };
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/predict");
        assert_eq!(r.body, b"abcd");
        assert!(r.keep_alive);
    }

    #[test]
    fn one_byte_feeds_reach_the_same_request() {
        let raw = b"POST /p HTTP/1.1\r\nx-junk: stuff\r\ncontent-length: 3\r\n\r\nxyz";
        let mut p = HttpParser::new(1 << 20);
        let mut got = None;
        for &b in raw.iter() {
            match p.feed(&[b]) {
                Parse::Partial => {}
                Parse::Request(r) => got = Some(r),
                Parse::Error(e) => panic!("unexpected error {e:?}"),
            }
        }
        let r = got.expect("completed");
        assert_eq!(r.path, "/p");
        assert_eq!(r.body, b"xyz");
        assert!(p.is_idle());
    }

    #[test]
    fn keep_alive_defaults_and_connection_header() {
        let cases: &[(&[u8], bool)] = &[
            (b"GET / HTTP/1.1\r\n\r\n", true),
            (b"GET / HTTP/1.0\r\n\r\n", false),
            (b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false),
            (b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true),
            // The list forms the old parser ignored entirely.
            (
                b"GET / HTTP/1.0\r\nConnection: keep-alive, upgrade\r\n\r\n",
                true,
            ),
            (b"GET / HTTP/1.1\r\nConnection: x-opt, Close\r\n\r\n", false),
        ];
        for (raw, expect) in cases {
            let Parse::Request(r) = parse_all(raw, 0) else {
                panic!("expected request for {raw:?}");
            };
            assert_eq!(r.keep_alive, *expect, "{:?}", String::from_utf8_lossy(raw));
        }
    }

    #[test]
    fn content_length_hygiene() {
        // Signed, non-digit, list, and empty values are all 400s.
        for bad in [
            "content-length: +5",
            "content-length: -5",
            "content-length: 5 5",
            "content-length: 5,5",
            "content-length: 0x5",
            "content-length:",
            "content-length: 99999999999999999999999999",
        ] {
            let raw = format!("POST / HTTP/1.1\r\n{bad}\r\n\r\n");
            assert_eq!(
                parse_all(raw.as_bytes(), 1 << 20),
                Parse::Error(HttpError::Malformed("bad content-length")),
                "{bad}"
            );
        }
        // Conflicting duplicates are rejected; agreeing ones are fine.
        let raw = b"POST / HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 3\r\n\r\n";
        assert_eq!(
            parse_all(raw, 1 << 20),
            Parse::Error(HttpError::Malformed("conflicting content-length headers"))
        );
        let raw = b"POST / HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 2\r\n\r\nok";
        assert!(matches!(parse_all(raw, 1 << 20), Parse::Request(_)));
    }

    #[test]
    fn transfer_encoding_rejected() {
        let raw = b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n";
        assert_eq!(
            parse_all(raw, 1 << 20),
            Parse::Error(HttpError::Malformed("transfer-encoding not supported"))
        );
    }

    #[test]
    fn non_utf8_request_line_is_malformed_not_io() {
        let raw = b"GET /\xff\xfe HTTP/1.1\r\n\r\n";
        assert_eq!(
            parse_all(raw, 0),
            Parse::Error(HttpError::Malformed("request line is not valid UTF-8"))
        );
        // Junk bytes in an unrelated header value are tolerated — only
        // the request line must be UTF-8.
        let raw = b"GET / HTTP/1.1\r\nx-junk: \xff\xfe\xfd\r\n\r\n";
        assert!(matches!(parse_all(raw, 0), Parse::Request(_)));
    }

    #[test]
    fn head_bound_enforced_during_buffering() {
        // One endless header line without a newline: the old parser
        // buffered this unboundedly inside `read_line`. Now the bound
        // trips the moment MAX_HEAD_BYTES are buffered, and the buffer
        // never exceeds the bound.
        let mut p = HttpParser::new(1 << 20);
        assert_eq!(p.feed(b"GET / HTTP/1.1\r\nx-a: "), Parse::Partial);
        let chunk = [b'a'; 1024];
        let mut fed = 21;
        let mut tripped = false;
        for _ in 0..64 {
            match p.feed(&chunk) {
                Parse::Partial => {
                    fed += chunk.len();
                    assert!(p.buffered() <= MAX_HEAD_BYTES);
                }
                Parse::Error(HttpError::HeadTooLarge) => {
                    tripped = true;
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(tripped, "bound never tripped after {fed} bytes");
        assert!(fed < MAX_HEAD_BYTES + chunk.len());
        assert_eq!(p.buffered(), 0, "failed parser keeps no memory");
        // Sticky: more bytes keep answering the same error.
        assert_eq!(p.feed(b"more"), Parse::Error(HttpError::HeadTooLarge));
    }

    #[test]
    fn oversized_body_rejected_from_the_header() {
        let raw = b"POST / HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n";
        assert_eq!(parse_all(raw, 1024), Parse::Error(HttpError::BodyTooLarge));
    }

    #[test]
    fn pipelined_requests_come_out_one_at_a_time() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi";
        let mut p = HttpParser::new(1 << 20);
        let Parse::Request(a) = p.feed(raw) else {
            panic!("first request");
        };
        assert_eq!(a.path, "/a");
        let Parse::Request(b) = p.poll() else {
            panic!("second request");
        };
        assert_eq!(b.path, "/b");
        assert_eq!(b.body, b"hi");
        assert!(p.is_idle());
    }

    #[test]
    fn deadline_header_parsed_leniently() {
        let cases: &[(&str, Option<u64>)] = &[
            ("x-sqlan-deadline-ms: 250", Some(250)),
            ("X-Sqlan-Deadline-Ms: 0", Some(0)),
            ("x-sqlan-deadline-ms: -5", None),
            ("x-sqlan-deadline-ms: abc", None),
            ("x-sqlan-deadline-ms:", None),
            ("x-sqlan-deadline-ms: 99999999999999999999999", None),
        ];
        for (header, expect) in cases {
            let raw = format!("GET / HTTP/1.1\r\n{header}\r\n\r\n");
            let Parse::Request(r) = parse_all(raw.as_bytes(), 0) else {
                panic!("expected request for {header}");
            };
            assert_eq!(r.deadline_ms, *expect, "{header}");
        }
        let Parse::Request(r) = parse_all(b"GET / HTTP/1.1\r\n\r\n", 0) else {
            panic!("expected request");
        };
        assert_eq!(r.deadline_ms, None);
    }

    #[test]
    fn leading_blank_lines_tolerated() {
        let raw = b"\r\n\r\nGET / HTTP/1.1\r\n\r\n";
        assert!(matches!(parse_all(raw, 0), Parse::Request(_)));
    }

    #[test]
    fn bare_lf_line_endings_tolerated() {
        let raw = b"POST /p HTTP/1.1\ncontent-length: 2\n\nok";
        let Parse::Request(r) = parse_all(raw, 16) else {
            panic!("expected request");
        };
        assert_eq!(r.body, b"ok");
    }

    #[test]
    fn render_matches_expected_shape() {
        let bytes = render_json_response(200, "{}", true);
        let text = String::from_utf8(bytes).expect("utf8");
        assert_eq!(
            text,
            "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: 2\r\nconnection: keep-alive\r\n\r\n{}"
        );
    }
}
