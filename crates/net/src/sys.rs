//! Raw Linux syscalls for the event loop: `epoll` and `rlimit`, declared
//! directly against the C library that `std` already links — no external
//! crates, per the workspace's offline compat policy. This module is the
//! crate's entire unsafe surface; everything above it is safe Rust over
//! owned file descriptors.

#![allow(clippy::upper_case_acronyms)]

use std::io;
use std::os::raw::c_int;
use std::os::unix::io::RawFd;

/// `struct epoll_event`. On x86-64 the kernel ABI packs it (no padding
/// between `events` and `data`), hence `repr(packed)`.
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    /// User token: the connection slot (or a reserved sentinel).
    pub data: u64,
}

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;

#[repr(C)]
struct RLimit {
    rlim_cur: u64,
    rlim_max: u64,
}

const RLIMIT_NOFILE: c_int = 7;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
}

/// An owned epoll instance; closed on drop.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: plain syscall, no pointers.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` with the given readiness interest.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Change the readiness interest of a registered `fd` (0 = none).
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregister `fd`. Closing the fd does this implicitly; explicit
    /// removal keeps the interest list tight when fds are kept open.
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait up to `timeout_ms` (-1 = forever) and fill `events`.
    /// Returns the number of ready entries; `EINTR` reads as zero.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `events` is a valid, writable slice for the whole call.
        let rc = unsafe {
            epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len() as c_int,
                timeout_ms as c_int,
            )
        };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(rc as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `fd` is owned by this instance and closed exactly once.
        unsafe { close(self.fd) };
    }
}

/// Raise the soft `RLIMIT_NOFILE` to the hard limit and return
/// `(soft, hard)` after the raise. High-connection-count callers (the
/// c10k bench) need more fds than the default soft limit allows; for
/// everything else this is a harmless no-op.
pub fn raise_nofile_limit() -> io::Result<(u64, u64)> {
    let mut lim = RLimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: `lim` is a valid out-pointer for the whole call.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } < 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.rlim_cur < lim.rlim_max {
        let raised = RLimit {
            rlim_cur: lim.rlim_max,
            rlim_max: lim.rlim_max,
        };
        // SAFETY: `raised` is a valid in-pointer for the whole call.
        if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } < 0 {
            return Err(io::Error::last_os_error());
        }
        lim = raised;
    }
    Ok((lim.rlim_cur, lim.rlim_max))
}

impl std::fmt::Debug for EpollEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Copy out of the packed struct before taking references.
        let (events, data) = (self.events, self.data);
        f.debug_struct("EpollEvent")
            .field("events", &events)
            .field("data", &data)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::os::unix::io::AsRawFd;

    #[test]
    fn epoll_reports_listener_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let ep = Epoll::new().expect("epoll");
        ep.add(listener.as_raw_fd(), EPOLLIN, 7).expect("add");
        let mut events = [EpollEvent { events: 0, data: 0 }; 8];
        // Nothing pending: times out empty.
        assert_eq!(ep.wait(&mut events, 0).expect("wait"), 0);
        // A pending connection flips the listener readable.
        let _client = std::net::TcpStream::connect(listener.local_addr().expect("addr"));
        let n = ep.wait(&mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        let data = events[0].data;
        assert_eq!(data, 7);
        ep.del(listener.as_raw_fd()).expect("del");
    }

    #[test]
    fn nofile_limit_raises_to_hard() {
        let (soft, hard) = raise_nofile_limit().expect("raise");
        assert_eq!(soft, hard);
    }
}
