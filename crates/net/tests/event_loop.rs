//! Event-loop integration: boot the epoll server with a tiny echo-ish
//! service and drive it with plain blocking sockets — keep-alive reuse,
//! parse-error responses, idle-timeout sweep, and many concurrent idle
//! connections.

#![cfg(target_os = "linux")]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sqlan_net::{serve, Answer, HttpError, NetConfig, Request, Service};

#[derive(Debug, Default)]
struct Echo {
    calls: AtomicU64,
    parse_errors: AtomicU64,
}

impl Service for Echo {
    fn call(&self, req: &Request) -> Answer {
        self.calls.fetch_add(1, Ordering::Relaxed);
        Answer::json(
            200,
            format!(
                "{{\"path\":\"{}\",\"body_len\":{}}}",
                req.path,
                req.body.len()
            ),
        )
    }

    fn on_parse_error(&self, _err: &HttpError) {
        self.parse_errors.fetch_add(1, Ordering::Relaxed);
    }
}

fn boot(cfg: NetConfig) -> (sqlan_net::EventLoopHandle, Arc<Echo>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let service = Arc::new(Echo::default());
    let handle = serve(listener, Arc::clone(&service), cfg).expect("serve");
    (handle, service)
}

/// Send raw bytes, read one full response (status line + headers +
/// content-length body). Returns (status, body).
fn roundtrip(reader: &mut BufReader<TcpStream>, raw: &[u8]) -> (u16, String) {
    reader.get_ref().write_all(raw).expect("write");
    read_response(reader)
}

fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, String) {
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {line:?}"));
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line).expect("header");
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf8 body"))
}

#[test]
fn keep_alive_requests_on_one_connection() {
    let (handle, service) = boot(NetConfig::default());
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    for i in 0..5 {
        let (status, body) = roundtrip(
            &mut reader,
            format!("POST /r{i} HTTP/1.1\r\ncontent-length: 2\r\n\r\nok").as_bytes(),
        );
        assert_eq!(status, 200);
        assert!(body.contains(&format!("/r{i}")), "{body}");
    }
    assert_eq!(service.calls.load(Ordering::Relaxed), 5);
    handle.shutdown();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let (handle, service) = boot(NetConfig::default());
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    // Both requests in a single write; responses must come back in order.
    let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
    reader.get_ref().write_all(raw).expect("write");
    let (s1, b1) = read_response(&mut reader);
    let (s2, b2) = read_response(&mut reader);
    assert_eq!((s1, s2), (200, 200));
    assert!(b1.contains("/a"), "{b1}");
    assert!(b2.contains("/b"), "{b2}");
    assert_eq!(service.calls.load(Ordering::Relaxed), 2);
    handle.shutdown();
}

#[test]
fn malformed_head_gets_400_and_close() {
    let (handle, service) = boot(NetConfig::default());
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let (status, body) = roundtrip(&mut reader, b"GET / HTTP/1.1\r\nbroken header\r\n\r\n");
    assert_eq!(status, 400, "{body}");
    assert_eq!(service.parse_errors.load(Ordering::Relaxed), 1);
    // Server closes after an error response.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("eof");
    assert!(rest.is_empty());
    handle.shutdown();
}

#[test]
fn oversized_head_gets_431_mid_stream() {
    let (handle, service) = boot(NetConfig::default());
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut w = reader.get_ref();
    w.write_all(b"GET / HTTP/1.1\r\nx-a: ").expect("start");
    // Dribble an endless header; the server must answer 431 without
    // waiting for a line terminator that never comes.
    let chunk = [b'a'; 1024];
    for _ in 0..20 {
        if w.write_all(&chunk).is_err() {
            break; // server already closed on us — fine
        }
    }
    let (status, _) = read_response(&mut reader);
    assert_eq!(status, 431);
    assert_eq!(service.parse_errors.load(Ordering::Relaxed), 1);
    handle.shutdown();
}

#[test]
fn idle_connections_are_swept() {
    let (handle, _service) = boot(NetConfig {
        idle_timeout: Duration::from_millis(200),
        ..NetConfig::default()
    });
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let (status, _) = roundtrip(&mut reader, b"GET /x HTTP/1.1\r\n\r\n");
    assert_eq!(status, 200);
    // Sit idle past the timeout: the sweep closes us (EOF on read).
    let start = Instant::now();
    let mut buf = [0u8; 16];
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let n = reader.read(&mut buf).expect("swept close reads as EOF");
    assert_eq!(n, 0, "expected EOF from idle sweep");
    assert!(start.elapsed() < Duration::from_secs(5));
    assert_eq!(handle.connections(), 0);
    handle.shutdown();
}

#[test]
fn hundreds_of_idle_keep_alive_connections_coexist() {
    let (handle, service) = boot(NetConfig {
        idle_timeout: Duration::from_secs(60),
        ..NetConfig::default()
    });
    let mut conns: Vec<BufReader<TcpStream>> = Vec::new();
    for _ in 0..300 {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        conns.push(BufReader::new(stream));
    }
    // Every connection works, in reverse order, while the rest idle.
    for reader in conns.iter_mut().rev() {
        reader
            .get_ref()
            .write_all(b"GET /ping HTTP/1.1\r\n\r\n")
            .expect("write");
        let (status, _) = read_response(reader);
        assert_eq!(status, 200);
    }
    assert_eq!(service.calls.load(Ordering::Relaxed), 300);
    assert_eq!(handle.connections(), 300);
    drop(conns);
    handle.shutdown();
}
